"""Ablations on the accelerator design choices (beyond the paper's figures).

Three design decisions called out in DESIGN.md are ablated on the CIFAR-10
quantized workload trace:

* **Heterogeneity** — 1 DPE + 1 SPE (SQ-DM) vs 2 DPEs (dense baseline) vs
  2 SPEs (all-sparse), at equal multiplier count.
* **Sparse-datapath quality** — sweep the SIGMA-like datapath's utilization
  derating to show how sensitive the speed-up is to the sparse engine design.
* **Precision assignment** — FP16 vs uniform INT8 vs uniform INT4 vs the
  mixed-precision trace produced by the SQ-DM policy.
"""

from __future__ import annotations

from conftest import run_once

from repro.accelerator import (
    AcceleratorConfig,
    AcceleratorSimulator,
    PEConfig,
    dense_baseline_config,
    retime_trace_precision,
    sqdm_config,
)
from repro.analysis.tables import format_speedup, format_table
from repro.core.policy import mixed_precision_policy
from repro.core.sparsity import trace_to_workloads


def test_ablation_accelerator_design_choices(benchmark, ctx):
    pipeline = ctx.pipeline("cifar10")

    def experiment():
        trace = ctx.trace("cifar10")
        policy = mixed_precision_policy(pipeline.workload.unet, relu=True)
        quant_trace = trace_to_workloads(trace, policy)
        fp16_trace = retime_trace_precision(quant_trace, 16, 16)
        int8_trace = retime_trace_precision(quant_trace, 8, 8)
        int4_trace = retime_trace_precision(quant_trace, 4, 4)

        baseline = AcceleratorSimulator(dense_baseline_config()).run_trace(quant_trace)

        organizations = {
            "2x DPE (dense baseline)": baseline,
            "1x DPE + 1x SPE (SQ-DM)": AcceleratorSimulator(sqdm_config()).run_trace(quant_trace),
            "2x SPE (all-sparse)": AcceleratorSimulator(
                AcceleratorConfig(name="all_sparse", num_dpe=0, num_spe=2)
            ).run_trace(quant_trace),
        }

        utilization = {}
        for derate in (0.6, 0.85, 1.0):
            config = AcceleratorConfig(
                name=f"spe_util_{derate}",
                num_dpe=1,
                num_spe=1,
                pe=PEConfig(sparse_utilization=derate),
            )
            utilization[derate] = AcceleratorSimulator(config).run_trace(quant_trace)

        precision = {
            "FP16": AcceleratorSimulator(dense_baseline_config()).run_trace(fp16_trace),
            "INT8": AcceleratorSimulator(dense_baseline_config()).run_trace(int8_trace),
            "INT4": AcceleratorSimulator(dense_baseline_config()).run_trace(int4_trace),
            "SQ-DM mixed precision": baseline,
        }
        return baseline, organizations, utilization, precision

    baseline, organizations, utilization, precision = run_once(benchmark, experiment)

    print()
    print(
        format_table(
            ["PE organization", "Speed-up vs dense baseline"],
            [
                [name, format_speedup(baseline.total_cycles / rep.total_cycles)]
                for name, rep in organizations.items()
            ],
            title="Ablation: PE organization (equal multiplier count)",
        )
    )
    print()
    print(
        format_table(
            ["Sparse datapath utilization", "Speed-up vs dense baseline"],
            [
                [derate, format_speedup(baseline.total_cycles / rep.total_cycles)]
                for derate, rep in utilization.items()
            ],
            title="Ablation: SIGMA-like datapath utilization derating",
        )
    )
    print()
    fp16_cycles = precision["FP16"].total_cycles
    print(
        format_table(
            ["Precision", "Speed-up vs FP16 dense"],
            [
                [name, format_speedup(fp16_cycles / rep.total_cycles)]
                for name, rep in precision.items()
            ],
            title="Ablation: uniform precisions vs the SQ-DM mixed-precision assignment",
        )
    )

    # Heterogeneous DPE+SPE clearly beats the dense organization.  (An
    # all-sparse array can look competitive in this analytical model when the
    # trace is very sparse, because the only dense-channel penalty modelled is
    # the utilization derate; the printed table reports it for comparison.)
    sqdm_cycles = organizations["1x DPE + 1x SPE (SQ-DM)"].total_cycles
    assert sqdm_cycles < organizations["2x DPE (dense baseline)"].total_cycles
    # Better sparse-datapath utilization monotonically improves the speed-up.
    assert utilization[1.0].total_cycles <= utilization[0.85].total_cycles
    assert utilization[0.85].total_cycles <= utilization[0.6].total_cycles
    # Precision ladder: INT8 ~2x, INT4 ~4x over FP16; mixed precision lands between the two.
    assert precision["INT8"].total_cycles > precision["INT4"].total_cycles
    assert precision["INT4"].total_cycles <= baseline.total_cycles <= precision["INT8"].total_cycles
