"""Table I: FID of existing quantization formats across the four workloads.

Paper rows: FP32, FP16, INT8, MXINT8, INT4, INT4-VSQ for EDM1/CIFAR-10,
EDM1/AFHQv2, EDM1/FFHQ and EDM2/ImageNet.  Expected shape: FP32 ≈ FP16 ≈
MXINT8 ≪ INT8 < INT4-VSQ ≪ INT4.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import format_table
from repro.diffusion.datasets import DATASET_LABELS

FORMATS = ["FP32", "FP16", "INT8", "MXINT8", "INT4", "INT4-VSQ"]


def test_table1_fid_by_format(benchmark, ctx):
    def experiment():
        results: dict[str, dict[str, float]] = {}
        for workload in ctx.workloads():
            for fmt in FORMATS:
                results.setdefault(fmt, {})[workload] = ctx.format_evaluation(workload, fmt).fid
        return results

    results = run_once(benchmark, experiment)

    headers = ["Format"] + [DATASET_LABELS[w] for w in ctx.workloads()]
    rows = [[fmt] + [results[fmt][w] for w in ctx.workloads()] for fmt in FORMATS]
    print()
    print(
        format_table(
            headers, rows, title="Table I: FID of existing formats (proxy FID, reduced scale)"
        )
    )

    for workload in ctx.workloads():
        fp32 = results["FP32"][workload]
        # FP16 and MXINT8 are quality-neutral, coarse INT8 degrades, 4-bit
        # formats degrade severely with plain INT4 the worst.
        assert abs(results["FP16"][workload] - fp32) / max(fp32, 1e-9) < 0.05
        assert results["MXINT8"][workload] < results["INT8"][workload]
        assert results["INT4-VSQ"][workload] < results["INT4"][workload]
        assert results["INT4"][workload] > 3 * fp32
