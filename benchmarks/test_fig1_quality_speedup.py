"""Fig. 1: generation quality versus achieved speed-up for different formats.

The paper's teaser figure shows FP16 (1.0x), INT4 and INT4-VSQ (quantization
speed-up only, with broken image quality) and Ours (MP+ReLU, 6.91x total with
near-baseline quality).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.speedup import figure1_summary
from repro.analysis.tables import format_speedup, format_table


def test_fig1_quality_vs_speedup(benchmark, ctx):
    workload = "afhqv2"  # the paper's example images target AFHQv2 / FFHQ

    def experiment():
        pipeline = ctx.pipeline(workload)
        fids = {
            "FP16": ctx.format_evaluation(workload, "FP16").fid,
            "INT4": ctx.format_evaluation(workload, "INT4").fid,
            "INT4-VSQ": ctx.format_evaluation(workload, "INT4-VSQ").fid,
            "Ours (MP+ReLU)": pipeline.evaluate_mixed_precision(relu=True).fid,
        }
        hardware = ctx.hardware(workload)
        return figure1_summary(fids, hardware.quantization_speedup, hardware.total_speedup)

    rows = run_once(benchmark, experiment)

    print()
    print(
        format_table(
            ["Format", "Proxy FID", "Speed-up vs FP16"],
            [[r.format_name, r.fid, format_speedup(r.speedup_vs_fp16)] for r in rows],
            title="Fig. 1: quality vs speed-up (AFHQv2 workload)",
        )
    )

    by_name = {r.format_name: r for r in rows}
    assert by_name["FP16"].speedup_vs_fp16 == 1.0
    assert by_name["Ours (MP+ReLU)"].speedup_vs_fp16 > by_name["INT4-VSQ"].speedup_vs_fp16
    # Ours keeps quality close to FP16 while INT4/INT4-VSQ break it.
    assert by_name["Ours (MP+ReLU)"].fid < by_name["INT4-VSQ"].fid
    assert by_name["Ours (MP+ReLU)"].fid < by_name["INT4"].fid
    assert by_name["Ours (MP+ReLU)"].speedup_vs_fp16 > 4.0
