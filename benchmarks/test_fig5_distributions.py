"""Fig. 5: activation data distribution at the output of Conv+SiLU vs Conv+ReLU.

The SiLU output spans [-0.278, inf) (forcing signed formats); the ReLU output
spans [0, inf) and contains a large spike of exact zeros (the sparsity SQ-DM
exploits).
"""

from __future__ import annotations

import copy

from conftest import run_once

from repro.analysis.distributions import compare_activation_distributions, silu_minimum
from repro.analysis.tables import format_table


def test_fig5_activation_distributions(benchmark, ctx):
    workload = ctx.pipeline("cifar10").workload

    def experiment():
        relu_model = copy.deepcopy(workload.unet)
        relu_model.set_activation("relu")
        return compare_activation_distributions(workload.unet, relu_model)

    silu_summary, relu_summary = run_once(benchmark, experiment)

    print()
    print(
        format_table(
            ["Activation", "min", "max", "mean", "negative frac", "zero frac"],
            [
                [s.activation, s.minimum, s.maximum, s.mean, s.negative_fraction, s.zero_fraction]
                for s in (silu_summary, relu_summary)
            ],
            title="Fig. 5: Conv+SiLU vs Conv+ReLU output distributions",
        )
    )
    print(f"analytic SiLU minimum: {silu_minimum():.4f} (paper: -0.278)")

    assert silu_summary.minimum < 0  # SiLU has a negative tail ...
    assert silu_summary.minimum >= -0.279  # ... bounded by the SiLU minimum
    assert relu_summary.minimum >= 0  # ReLU output is non-negative
    assert relu_summary.negative_fraction == 0.0
    assert relu_summary.zero_fraction > 0.2  # and substantially sparse
    assert silu_summary.zero_fraction < 0.05
