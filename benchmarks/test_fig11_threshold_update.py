"""Fig. 11: sparsity threshold analysis (left) and update-frequency analysis (right).

Left: sweeping the dense/sparse threshold trades off how many channels the
sparse PE receives against how sparse they are; a moderate threshold (the
paper picks 30%) balances the two PEs and maximizes speed-up, with the sparse
group around 70% sparse.

Right: updating the per-channel classification less frequently degrades the
speed-up because the sparsity pattern drifts across time steps; updating every
step is effectively free, so the paper updates every step.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import format_percentage, format_speedup, format_table
from repro.core.policy import mixed_precision_policy
from repro.core.scheduler import (
    analyze_threshold,
    analyze_update_period,
    best_threshold,
    detection_overhead_fraction,
)
from repro.core.sparsity import trace_to_workloads

THRESHOLDS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9]
PERIODS = [1, 2, 5]


def test_fig11_threshold_and_update_frequency(benchmark, ctx):
    pipeline = ctx.pipeline("cifar10")

    def experiment():
        trace = ctx.trace("cifar10")
        policy = mixed_precision_policy(pipeline.workload.unet, relu=True)
        hw_trace = trace_to_workloads(trace, policy)
        threshold_points = analyze_threshold(hw_trace, thresholds=THRESHOLDS)
        period_points = analyze_update_period(hw_trace, periods=PERIODS)
        overhead = detection_overhead_fraction(hw_trace)
        return threshold_points, period_points, overhead

    threshold_points, period_points, overhead = run_once(benchmark, experiment)

    print()
    print(
        format_table(
            [
                "Threshold",
                "Sparse-group share",
                "Sparse-group sparsity",
                "Load imbalance",
                "Speed-up",
            ],
            [
                [
                    p.threshold,
                    format_percentage(p.sparse_fraction),
                    format_percentage(p.sparse_group_sparsity),
                    format_percentage(p.load_imbalance),
                    format_speedup(p.speedup),
                ]
                for p in threshold_points
            ],
            title="Fig. 11 (left): sparsity threshold analysis",
        )
    )
    print()
    print(
        format_table(
            ["Update period (time steps)", "Speed-up", "Detector updates"],
            [
                [p.update_period, format_speedup(p.speedup), p.updates_performed]
                for p in period_points
            ],
            title="Fig. 11 (right): sparsity update frequency analysis",
        )
    )
    print(
        f"detector energy overhead: {format_percentage(overhead)} of total"
        " (negligible, paper Sec. IV-C)"
    )

    # A moderate threshold wins (the paper selects 30%).
    best = best_threshold(threshold_points)
    assert 0.1 <= best.threshold <= 0.7
    by_threshold = {p.threshold: p for p in threshold_points}
    assert by_threshold[0.3].speedup >= by_threshold[0.9].speedup
    # At the chosen threshold the sparse group is substantially sparse (paper: ~70%).
    assert by_threshold[0.3].sparse_group_sparsity > 0.5
    # More frequent updates track the drifting pattern at least as well.  On
    # the reduced-scale trace the penalty of stale classifications is small
    # (the paper's Fig. 11 shows a modest loss as well), so allow noise.
    assert period_points[0].speedup >= period_points[-1].speedup - 0.05
    assert period_points[0].updates_performed > period_points[-1].updates_performed
    # Detection overhead is negligible.
    assert overhead < 0.02
