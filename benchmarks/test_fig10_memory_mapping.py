"""Fig. 10: channel-last data-address mapping.

Activations map W -> H -> C (channel last) and weights S -> R -> K -> C so
that an arbitrary (non-contiguous) channel order requested by the
sparsity-aware address generator still fetches each channel as one contiguous
burst, and sparse channels store only nonzero values plus a 1-bit indicator.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.accelerator import (
    ActivationMapping,
    SparsityAwareAddressGenerator,
    WeightMapping,
    classify_channels,
    compress_channel,
    random_workload,
)
from repro.analysis.tables import format_table


def test_fig10_channel_last_mapping(benchmark):
    rng = np.random.default_rng(1)

    def experiment():
        workload = random_workload(
            in_channels=16, out_channels=8, spatial=8, mean_sparsity=0.7, seed=2
        )
        act_map = ActivationMapping(16, 8, 8)
        weight_map = WeightMapping(8, 16, 3, 3)
        generator = SparsityAwareAddressGenerator(act_map, weight_map)
        classification = classify_channels(workload.channel_sparsity, 0.3)
        dense_plan = generator.dense_plan(classification)
        sparse_plan = generator.sparse_plan(classification)

        # Compressed storage for one sparse channel.
        channel_data = rng.normal(size=(8, 8))
        channel_data[np.abs(channel_data) < 0.8] = 0.0
        record = compress_channel(channel_data, channel_index=3)
        return act_map, weight_map, dense_plan, sparse_plan, record

    act_map, weight_map, dense_plan, sparse_plan, record = run_once(benchmark, experiment)

    dense_bits = act_map.height * act_map.width * 4
    print()
    print(
        format_table(
            ["Quantity", "Value"],
            [
                ["activation address of (c=2, y=1, x=3)", act_map.address(2, 1, 3)],
                ["weight address of (k=1, c=2, r=0, s=1)", weight_map.address(1, 2, 0, 1)],
                ["dense-group channels", dense_plan.num_channels],
                ["sparse-group channels", sparse_plan.num_channels],
                ["sparse channel storage (bits, UINT4 values + bitmap)", record.storage_bits(4)],
                ["dense channel storage (bits, UINT4)", dense_bits],
            ],
            title="Fig. 10: channel-last address mapping and compressed sparse channels",
        )
    )

    # Channel-last: each channel occupies one contiguous address range.
    for channel in range(act_map.channels):
        start, end = act_map.channel_slice(channel)
        assert end - start == act_map.height * act_map.width
    # Both fetch plans issue one contiguous burst per channel.
    assert dense_plan.is_contiguous_per_channel()
    assert sparse_plan.is_contiguous_per_channel()
    # W is the fastest-varying address component, C the slowest.
    assert act_map.address(0, 0, 1) - act_map.address(0, 0, 0) == 1
    assert act_map.address(1, 0, 0) - act_map.address(0, 0, 0) == act_map.height * act_map.width
    # All weights for one input channel are contiguous.
    start, end = weight_map.channel_slice(2)
    assert end - start == weight_map.out_channels * 9
    # The compressed sparse channel is smaller than dense storage.
    assert record.storage_bits(4) < dense_bits
