"""Fleet-service acceptance: cross-trace batching beats the per-trace loop,
and a second process re-running a sweep is served from the artifact store.

Two scenarios back the evaluation-service subsystem:

* ``run_traces`` on a fleet of traces sharing one accelerator configuration
  must beat PR 1's per-trace ``run_trace`` loop on wall-clock (the batched
  pass amortizes per-call NumPy setup across the whole fleet);
* re-running the same sweep with a cold in-memory cache over a warm artifact
  store must perform zero simulations and still produce identical reports.
"""

from __future__ import annotations

import time

import pytest

from conftest import run_once

from repro.accelerator import (
    AcceleratorSimulator,
    dense_baseline_config,
    random_workload,
    sqdm_config,
)
from repro.analysis.tables import format_table
from repro.core.artifacts import ArtifactStore
from repro.core.report_cache import ReportCache
from repro.serve.scheduler import SimulationRequest, run_batched

#: A healthy margin below the ~1.8-2x measured on CI-class CPUs, but enough
#: to fail if batching regresses to a hidden per-trace loop.
MIN_BATCH_SPEEDUP = 1.2


def fleet_traces(num_traces: int = 16, steps: int = 5, layers: int = 6):
    return [
        [
            [
                random_workload(
                    in_channels=48,
                    spatial=8,
                    seed=seed * 1000 + 10 * step + layer,
                    name=f"layer{layer}",
                )
                for layer in range(layers)
            ]
            for step in range(steps)
        ]
        for seed in range(num_traces)
    ]


def _min_runtime(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_sweep_beats_per_trace_loop(benchmark):
    traces = fleet_traces()
    simulator = AcceleratorSimulator(sqdm_config())

    batched_reports = run_once(benchmark, lambda: simulator.run_traces(traces))
    loop_reports = [AcceleratorSimulator(sqdm_config()).run_trace(trace) for trace in traces]

    # --- equivalence: batching changes performance, not results ------------
    for batched, single in zip(batched_reports, loop_reports):
        assert batched.total_cycles == pytest.approx(single.total_cycles, rel=1e-9)
        assert batched.total_energy.total_pj == pytest.approx(
            single.total_energy.total_pj, rel=1e-9
        )

    # --- speed: one batched pass vs the PR 1 per-trace loop ----------------
    loop_time = _min_runtime(lambda: [simulator.run_trace(t) for t in traces], repeats=5)
    batched_time = _min_runtime(lambda: simulator.run_traces(traces), repeats=5)
    speedup = loop_time / batched_time

    print()
    print(
        format_table(
            ["Strategy", f"{len(traces)}-trace sweep (ms)", "Speed-up"],
            [
                ["per-trace loop (PR 1)", f"{loop_time * 1e3:.2f}", "1.0x"],
                ["run_traces batch", f"{batched_time * 1e3:.2f}", f"{speedup:.2f}x"],
            ],
            title="Cross-trace batched simulation on a shared config",
        )
    )
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batched sweep only {speedup:.2f}x faster than the per-trace loop"
    )


def test_artifact_store_serves_rerun_without_simulation(tmp_path, benchmark):
    traces = fleet_traces(num_traces=8)
    store = ArtifactStore(tmp_path / "artifacts")
    requests = [SimulationRequest(sqdm_config(), trace) for trace in traces] + [
        SimulationRequest(dense_baseline_config(), trace) for trace in traces
    ]

    cold_cache = ReportCache(store=store)
    cold_start = time.perf_counter()
    cold_reports = run_batched(requests, cache=cold_cache)
    cold_time = time.perf_counter() - cold_start
    assert cold_cache.stats.misses == len(requests)

    # Second "process": fresh memory tier over the same store directory.
    warm_cache = ReportCache(store=ArtifactStore(store.root))
    warm_start = time.perf_counter()
    warm_reports = run_once(benchmark, lambda: run_batched(requests, cache=warm_cache))
    warm_time = time.perf_counter() - warm_start

    assert warm_cache.stats.misses == 0
    assert warm_cache.stats.hit_rate >= 0.9
    for cold, warm in zip(cold_reports, warm_reports):
        assert warm.total_cycles == cold.total_cycles
        assert warm.total_energy.total_pj == cold.total_energy.total_pj

    print()
    print(
        format_table(
            ["Run", "Wall-clock (ms)", "Simulated", "Store hits"],
            [
                ["cold (first process)", f"{cold_time * 1e3:.1f}",
                 str(cold_cache.stats.misses), str(cold_cache.stats.disk_hits)],
                ["warm (second process)", f"{warm_time * 1e3:.1f}",
                 str(warm_cache.stats.misses), str(warm_cache.stats.disk_hits)],
            ],
            title=f"Artifact-store reuse across processes ({len(requests)} requests)",
        )
    )
