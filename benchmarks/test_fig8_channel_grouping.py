"""Fig. 8: the dense/sparse channel-group computation scheme.

Splitting the input channels into dense and sparse groups, computing partial
sums on separate engines and adding them must (a) be numerically exact and
(b) reduce the makespan versus processing all channels densely on one engine.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.accelerator import (
    ProcessingElement,
    classify_channels,
    random_workload,
    sqdm_config,
)
from repro.accelerator.energy import DEFAULT_ENERGY_TABLE
from repro.analysis.tables import format_table
from repro.nn import functional as F


def test_fig8_channel_group_computation_scheme(benchmark):
    rng = np.random.default_rng(0)

    def experiment():
        # Functional correctness: conv over dense channels + conv over sparse
        # channels equals the full convolution.
        x = np.maximum(rng.normal(size=(1, 32, 8, 8)), 0.0)
        x[:, rng.choice(32, size=20, replace=False)] *= rng.random((20, 1, 1)) < 0.3
        weight = rng.normal(size=(16, 32, 3, 3))
        channel_sparsity = 1.0 - np.count_nonzero(x[0].reshape(32, -1), axis=1) / 64.0
        classification = classify_channels(channel_sparsity, threshold=0.3)

        full = F.conv2d(x, weight, padding=1)
        dense_part = F.conv2d(
            x[:, classification.dense_channels], weight[:, classification.dense_channels], padding=1
        )
        sparse_part = F.conv2d(
            x[:, classification.sparse_channels],
            weight[:, classification.sparse_channels],
            padding=1,
        )
        recombined = dense_part + sparse_part

        # Hardware benefit: one DPE + one SPE on the split groups versus one
        # DPE doing everything densely.
        workload = random_workload(
            in_channels=32, out_channels=16, spatial=8, mean_sparsity=0.65, seed=1
        )
        cfg = sqdm_config()
        dpe = ProcessingElement("dpe0", "dense", cfg.pe, DEFAULT_ENERGY_TABLE)
        spe = ProcessingElement("spe0", "sparse", cfg.pe, DEFAULT_ENERGY_TABLE)
        cls = classify_channels(workload.channel_sparsity, cfg.sparsity_threshold)
        dense_result = dpe.process_channel_group(workload, cls.dense_channels)
        sparse_result = spe.process_channel_group(workload, cls.sparse_channels)
        all_dense = dpe.process_channel_group(workload, np.arange(workload.in_channels))
        return full, recombined, dense_result, sparse_result, all_dense

    full, recombined, dense_result, sparse_result, all_dense = run_once(benchmark, experiment)

    print()
    print(
        format_table(
            ["Engine", "Channels", "Cycles"],
            [
                ["DPE (dense group)", dense_result.num_channels, dense_result.cycles],
                ["SPE (sparse group)", sparse_result.num_channels, sparse_result.cycles],
                ["single dense engine (all channels)", all_dense.num_channels, all_dense.cycles],
            ],
            title="Fig. 8: dense/sparse channel grouping",
        )
    )

    assert np.allclose(full, recombined), "channel-group partial sums must recombine exactly"
    makespan = max(dense_result.cycles, sparse_result.cycles)
    assert makespan < all_dense.cycles
