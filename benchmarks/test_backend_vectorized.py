"""Vectorized-backend acceptance: equivalence and speed on the Fig. 12 trace.

The vectorized engine must reproduce the reference backend's report on the
real evaluation trace (the quantized CIFAR-10 trace behind Fig. 12) within
1e-9 relative tolerance, while executing ``run_trace`` at least an order of
magnitude faster.  Timings use the minimum over several runs, which is
robust against scheduler noise on shared machines.
"""

from __future__ import annotations

import time

import pytest

from conftest import run_once

from repro.accelerator import AcceleratorSimulator, random_workload, sqdm_config
from repro.analysis.tables import format_table
from repro.core.bench import BenchWorkload, bench_grid
from repro.core.policy import mixed_precision_policy
from repro.core.report_cache import ReportCache
from repro.core.sparsity import trace_to_workloads
from repro.serve import BatchStats, SimulationRequest, run_batched

RTOL = 1e-9


def _min_runtime(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_backend_matches_and_outruns_reference(benchmark, ctx):
    pipeline = ctx.pipeline("cifar10")
    policy = mixed_precision_policy(pipeline.relu_unet(), relu=True)
    quant_trace = trace_to_workloads(ctx.trace("cifar10"), policy)

    reference = AcceleratorSimulator(sqdm_config(), backend="reference")
    vectorized = AcceleratorSimulator(sqdm_config(), backend="vectorized")

    ref_report = reference.run_trace(quant_trace)
    vec_report = run_once(benchmark, lambda: vectorized.run_trace(quant_trace))

    # --- equivalence: 1e-9 relative on every reported quantity -------------
    assert vec_report.total_cycles == pytest.approx(ref_report.total_cycles, rel=RTOL)
    assert vec_report.total_macs == pytest.approx(ref_report.total_macs, rel=RTOL)
    assert vec_report.executed_macs == pytest.approx(ref_report.executed_macs, rel=RTOL)
    assert vec_report.average_load_imbalance() == pytest.approx(
        ref_report.average_load_imbalance(), rel=1e-8
    )
    for component, expected in ref_report.total_energy.as_dict().items():
        assert vec_report.total_energy.as_dict()[component] == pytest.approx(
            expected, rel=RTOL, abs=1e-9
        ), component

    # --- speed: >= 10x faster on the same trace ----------------------------
    ref_time = _min_runtime(lambda: reference.run_trace(quant_trace), repeats=5)
    vec_time = _min_runtime(lambda: vectorized.run_trace(quant_trace), repeats=25)
    speedup = ref_time / vec_time

    print()
    print(
        format_table(
            ["Backend", "run_trace (ms)", "Speed-up"],
            [
                ["reference", f"{ref_time * 1e3:.2f}", "1.0x"],
                ["vectorized", f"{vec_time * 1e3:.2f}", f"{speedup:.1f}x"],
            ],
            title="Vectorized engine on the Fig. 12 (CIFAR-10, quantized) trace",
        )
    )

    assert speedup >= 10.0, f"vectorized backend only {speedup:.1f}x faster than reference"


def test_cross_config_sweep_fuses_kernel_calls_and_outruns_per_config(benchmark):
    """Acceptance for the cross-config kernel: a 16-config x 8-trace sweep
    dispatches through at most two batched kernel calls, runs >= 3x faster
    than the per-config ``run_traces`` loop, and every one of the 128 reports
    stays within 1e-9 relative of the reference backend."""
    configs = bench_grid(BenchWorkload(num_configs=16))
    assert len(configs) == 16
    traces = [
        [
            [
                random_workload(
                    in_channels=8, out_channels=8, spatial=4, seed=seed, name="layer0"
                )
            ]
        ]
        for seed in range(8)
    ]

    # --- dispatch: the whole grid fuses into (at most) two kernel calls ----
    requests = [
        SimulationRequest(config, trace) for config in configs for trace in traces
    ]
    stats = BatchStats()
    reports = run_once(
        benchmark, lambda: run_batched(requests, cache=ReportCache(max_entries=256), stats=stats)
    )
    assert len(reports) == 128
    assert stats.kernel_calls <= 2, f"sweep fragmented into {stats.kernel_calls} kernel calls"
    assert stats.cross_config_calls >= 1
    assert stats.configs_simulated == 16 and stats.traces_simulated == 128

    # --- equivalence: every (config, trace) report matches the reference ---
    for request, report in zip(requests, reports):
        ref = AcceleratorSimulator(request.config, backend="reference").run_trace(request.trace)
        assert report.total_cycles == pytest.approx(ref.total_cycles, rel=RTOL)
        assert report.executed_macs == pytest.approx(ref.executed_macs, rel=RTOL)
        for component, expected in ref.total_energy.as_dict().items():
            assert report.total_energy.as_dict()[component] == pytest.approx(
                expected, rel=RTOL, abs=1e-9
            ), (request.config.name, component)

    # --- speed: >= 3x over the per-config PR-2 path on the same sweep ------
    entries = [(config, traces) for config in configs]
    fused = AcceleratorSimulator(configs[0])

    def per_config() -> None:
        for config in configs:
            AcceleratorSimulator(config).run_traces(traces)

    fused_time = _min_runtime(lambda: fused.run_config_traces(entries), repeats=9)
    loop_time = _min_runtime(per_config, repeats=5)
    speedup = loop_time / fused_time

    print()
    print(
        format_table(
            ["Sweep path", "wall-clock (ms)", "Speed-up"],
            [
                ["per-config run_traces loop", f"{loop_time * 1e3:.2f}", "1.0x"],
                ["cross-config kernel", f"{fused_time * 1e3:.2f}", f"{speedup:.1f}x"],
            ],
            title="16-config x 8-trace design-space sweep",
        )
    )
    assert speedup >= 3.0, f"cross-config kernel only {speedup:.1f}x faster"
