"""Vectorized-backend acceptance: equivalence and speed on the Fig. 12 trace.

The vectorized engine must reproduce the reference backend's report on the
real evaluation trace (the quantized CIFAR-10 trace behind Fig. 12) within
1e-9 relative tolerance, while executing ``run_trace`` at least an order of
magnitude faster.  Timings use the minimum over several runs, which is
robust against scheduler noise on shared machines.
"""

from __future__ import annotations

import time

import pytest

from conftest import run_once

from repro.accelerator import AcceleratorSimulator, sqdm_config
from repro.analysis.tables import format_table
from repro.core.policy import mixed_precision_policy
from repro.core.sparsity import trace_to_workloads

RTOL = 1e-9


def _min_runtime(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_backend_matches_and_outruns_reference(benchmark, ctx):
    pipeline = ctx.pipeline("cifar10")
    policy = mixed_precision_policy(pipeline.relu_unet(), relu=True)
    quant_trace = trace_to_workloads(ctx.trace("cifar10"), policy)

    reference = AcceleratorSimulator(sqdm_config(), backend="reference")
    vectorized = AcceleratorSimulator(sqdm_config(), backend="vectorized")

    ref_report = reference.run_trace(quant_trace)
    vec_report = run_once(benchmark, lambda: vectorized.run_trace(quant_trace))

    # --- equivalence: 1e-9 relative on every reported quantity -------------
    assert vec_report.total_cycles == pytest.approx(ref_report.total_cycles, rel=RTOL)
    assert vec_report.total_macs == pytest.approx(ref_report.total_macs, rel=RTOL)
    assert vec_report.executed_macs == pytest.approx(ref_report.executed_macs, rel=RTOL)
    assert vec_report.average_load_imbalance() == pytest.approx(
        ref_report.average_load_imbalance(), rel=1e-8
    )
    for component, expected in ref_report.total_energy.as_dict().items():
        assert vec_report.total_energy.as_dict()[component] == pytest.approx(
            expected, rel=RTOL, abs=1e-9
        ), component

    # --- speed: >= 10x faster on the same trace ----------------------------
    ref_time = _min_runtime(lambda: reference.run_trace(quant_trace), repeats=5)
    vec_time = _min_runtime(lambda: vectorized.run_trace(quant_trace), repeats=25)
    speedup = ref_time / vec_time

    print()
    print(
        format_table(
            ["Backend", "run_trace (ms)", "Speed-up"],
            [
                ["reference", f"{ref_time * 1e3:.2f}", "1.0x"],
                ["vectorized", f"{vec_time * 1e3:.2f}", f"{speedup:.1f}x"],
            ],
            title="Vectorized engine on the Fig. 12 (CIFAR-10, quantized) trace",
        )
    )

    assert speedup >= 10.0, f"vectorized backend only {speedup:.1f}x faster than reference"
