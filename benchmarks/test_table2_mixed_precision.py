"""Table II: FID and average compute/memory saving of the quantized models.

Paper rows: INT4-VSQ, Ours (MP-only), Ours (MP+ReLU).  Expected shape: both
"Ours" schemes dramatically improve FID over uniform INT4-VSQ while giving up
only a little of the ~75% compute/memory saving; the ReLU variant is the best.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.tables import format_percentage, format_table
from repro.diffusion.datasets import DATASET_LABELS


def test_table2_quantized_model_comparison(benchmark, ctx):
    def experiment():
        rows = {}
        for workload in ctx.workloads():
            pipeline = ctx.pipeline(workload)
            rows.setdefault("INT4-VSQ", []).append(ctx.format_evaluation(workload, "INT4-VSQ"))
            rows.setdefault("Ours (MP-only)", []).append(
                pipeline.evaluate_mixed_precision(relu=False)
            )
            rows.setdefault("Ours (MP+ReLU)", []).append(
                pipeline.evaluate_mixed_precision(relu=True)
            )
        return rows

    rows = run_once(benchmark, experiment)

    headers = ["Quant Method", "Avg Comp Saving", "Avg Mem Saving"] + [
        DATASET_LABELS[w] for w in ctx.workloads()
    ]
    table_rows = []
    for scheme, evals in rows.items():
        comp = sum(e.compute_saving for e in evals) / len(evals)
        mem = sum(e.memory_saving for e in evals) / len(evals)
        table_rows.append(
            [scheme, format_percentage(comp), format_percentage(mem)] + [e.fid for e in evals]
        )
    print()
    print(
        format_table(
            headers,
            table_rows,
            title="Table II: FID of quantized models (proxy FID, reduced scale)",
        )
    )

    for i, workload in enumerate(ctx.workloads()):
        vsq = rows["INT4-VSQ"][i].fid
        mp_only = rows["Ours (MP-only)"][i].fid
        mp_relu = rows["Ours (MP+ReLU)"][i].fid
        assert mp_only < vsq, f"MP-only should beat INT4-VSQ on {workload}"
        assert mp_relu < vsq, f"MP+ReLU should beat INT4-VSQ on {workload}"
    # Savings stay in the aggressive-quantization regime (paper: 73%/72%).
    mp_relu_evals = rows["Ours (MP+ReLU)"]
    assert all(0.5 < e.compute_saving <= 0.75 for e in mp_relu_evals)
    assert all(0.5 < e.memory_saving <= 0.75 for e in mp_relu_evals)
