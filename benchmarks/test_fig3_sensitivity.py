"""Fig. 3: block-wise quantization sensitivity of the EDM model.

One block at a time is dropped to 4-bit while the rest stay at MXINT8; the
paper finds that only the first and last few blocks are materially sensitive.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.sensitivity import block_sensitivity_sweep
from repro.analysis.tables import format_table


def test_fig3_block_sensitivity(benchmark, ctx):
    pipeline = ctx.pipeline("cifar10")

    report = run_once(benchmark, lambda: block_sensitivity_sweep(pipeline))

    print()
    print(
        format_table(
            ["Block (execution order)", "Proxy FID", "Delta vs all-MXINT8"],
            [
                [b.block_name, b.fid, b.fid_delta]
                for b in sorted(report.blocks, key=lambda b: b.order)
            ],
            title=(
                f"Fig. 3: block-wise sensitivity"
                f" (reference all-MXINT8 FID = {report.reference_fid:.2f})"
            ),
        )
    )

    assert len(report.blocks) == len(pipeline.workload.unet.block_infos())
    # The paper's conclusion: boundary blocks dominate the sensitivity ranking.
    assert report.boundary_blocks_are_most_sensitive(top_k=3)
    # Quantizing a middle block costs much less than the worst boundary block.
    ordered = sorted(report.blocks, key=lambda b: b.order)
    middle = ordered[len(ordered) // 2]
    worst = max(report.blocks, key=lambda b: b.fid_delta)
    assert middle.fid_delta <= worst.fid_delta
