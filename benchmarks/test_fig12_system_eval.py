"""Fig. 12: system evaluation.

Top: per-dataset speed-up and system energy saving of the heterogeneous
DPE+SPE accelerator versus the dense two-DPE baseline (paper average: 1.83x
speed-up, 51.5% energy saving).

Bottom: total speed-up over an FP16 SiLU-based model on a dense accelerator —
quantization contributes ~3.78x and temporal sparsity multiplies it to ~6.91x.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.speedup import summarize_hardware
from repro.analysis.tables import format_percentage, format_speedup, format_table
from repro.diffusion.datasets import DATASET_LABELS


def test_fig12_system_evaluation(benchmark, ctx):
    def experiment():
        return summarize_hardware(ctx.hardware_evaluations())

    system = run_once(benchmark, experiment)

    print()
    print(
        format_table(
            [
                "Workload",
                "Avg sparsity",
                "Sparsity speed-up",
                "Energy saving",
                "Quant speed-up",
                "Total speed-up",
            ],
            [
                [DATASET_LABELS[row.workload], format_percentage(row.average_sparsity),
                 format_speedup(row.sparsity_speedup), format_percentage(row.energy_saving),
                 format_speedup(row.quantization_speedup), format_speedup(row.total_speedup)]
                for row in system.per_workload
            ],
            title="Fig. 12 (top): speed-up and energy saving vs dense 2-DPE baseline",
        )
    )
    print()
    print(
        format_table(
            ["Configuration", "Speed-up vs FP16 dense"],
            [[name, format_speedup(value)] for name, value in system.speedup_stack().items()],
            title="Fig. 12 (bottom): total speed-up stack (paper: 3.78x quant, 6.91x total)",
        )
    )

    # Temporal-sparsity speed-up and energy saving in the paper's regime.
    assert 1.4 < system.average_sparsity_speedup < 2.6
    assert 0.30 < system.average_energy_saving < 0.80
    # Quantization alone gives close to the 4x precision ratio (paper: 3.78x).
    assert 2.5 < system.average_quantization_speedup <= 4.0
    # The combination compounds (paper: 6.91x).
    assert system.average_total_speedup > system.average_quantization_speedup
    assert 4.5 < system.average_total_speedup < 10.0
    # Every workload individually beats the dense baseline.
    assert all(row.sparsity_speedup > 1.0 for row in system.per_workload)
    assert all(row.energy_saving > 0.0 for row in system.per_workload)
