"""Fig. 4: computation and memory cost breakdown by block type.

The paper attributes >90% of compute and >85% of memory to the Conv+SiLU
blocks; the scaled-down models reproduce the dominance of the Conv blocks
(the exact shares shift because the models are much smaller).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.breakdown import cost_breakdown
from repro.analysis.tables import format_percentage, format_table
from repro.nn.unet import BLOCK_CONV


def test_fig4_compute_memory_breakdown(benchmark, ctx):
    def experiment():
        return {
            workload: cost_breakdown(ctx.pipeline(workload).workload.unet, workload)
            for workload in ctx.workloads()
        }

    reports = run_once(benchmark, experiment)

    headers = ["Workload"] + [f"{t} (comp)" for t in reports["cifar10"].compute_share] + [
        f"{t} (mem)" for t in reports["cifar10"].memory_share
    ]
    rows = []
    for workload, report in reports.items():
        rows.append(
            [workload]
            + [format_percentage(v) for v in report.compute_share.values()]
            + [format_percentage(v) for v in report.memory_share.values()]
        )
    print()
    print(format_table(headers, rows, title="Fig. 4: compute / memory breakdown by block type"))

    for report in reports.values():
        assert report.dominant_type() == BLOCK_CONV
        assert report.conv_compute_share() > 0.5
        assert report.conv_memory_share() > 0.4
        assert abs(sum(report.compute_share.values()) - 1.0) < 1e-9
