"""Fig. 6: quantization level utilization of SiLU/INT4 versus ReLU/UINT4.

For inputs in [-1, 1], SiLU's output occupies only ~10 of the 16 signed INT4
levels, while ReLU's output uses all 16 UINT4 levels.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.distributions import silu_vs_relu_level_utilization
from repro.analysis.tables import format_percentage, format_table


def test_fig6_quantization_level_utilization(benchmark):
    silu_util, relu_util = run_once(benchmark, silu_vs_relu_level_utilization)

    print()
    print(
        format_table(
            ["Activation", "Format", "Levels used", "Levels available", "Utilization"],
            [
                [
                    u.activation,
                    u.format_name,
                    u.levels_used,
                    u.levels_available,
                    format_percentage(u.utilization),
                ]
                for u in (silu_util, relu_util)
            ],
            title="Fig. 6: SiLU(x)/INT4 vs ReLU(x)/UINT4 level utilization (x in [-1, 1])",
        )
    )

    # Paper: 10 of 16 signed INT4 levels vs all 16 UINT4 levels.
    assert relu_util.levels_used == relu_util.levels_available == 16
    assert silu_util.levels_used <= 11
    assert silu_util.utilization < relu_util.utilization
