"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper at a
reduced evaluation scale (fewer generated samples, fewer sampling steps,
smaller synthetic models) so the whole suite runs on a laptop CPU in minutes.
Pipelines, FID reference statistics and sparsity traces are cached per
workload and shared across benchmark modules.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import SweepSpec, run_sweep
from repro.core.pipeline import PipelineConfig, SQDMPipeline
from repro.core.sparsity import TemporalSparsityTrace
from repro.workloads.models import workload_names

#: Evaluation scale used by every benchmark (documented in EXPERIMENTS.md).
BENCH_CONFIG = PipelineConfig(
    num_fid_samples=8,
    num_reference_samples=256,
    num_sampling_steps=5,
    num_trace_samples=1,
    seed=0,
)


class BenchmarkContext:
    """Lazily-constructed, cached pipelines / traces / evaluations per workload."""

    def __init__(self) -> None:
        self._pipelines: dict[str, SQDMPipeline] = {}
        self._traces: dict[str, TemporalSparsityTrace] = {}
        self._format_evals: dict[tuple[str, str], object] = {}
        self._hardware: dict[str, object] = {}

    def pipeline(self, workload: str) -> SQDMPipeline:
        if workload not in self._pipelines:
            self._pipelines[workload] = SQDMPipeline(workload, BENCH_CONFIG)
        return self._pipelines[workload]

    def trace(self, workload: str) -> TemporalSparsityTrace:
        if workload not in self._traces:
            self._traces[workload] = self.pipeline(workload).collect_trace(relu=True)
        return self._traces[workload]

    def format_evaluation(self, workload: str, format_name: str):
        key = (workload, format_name)
        if key not in self._format_evals:
            self._format_evals[key] = self.pipeline(workload).evaluate_format(format_name)
        return self._format_evals[key]

    def hardware(self, workload: str):
        if workload not in self._hardware:
            self._hardware[workload] = self.pipeline(workload).evaluate_hardware(
                trace=self.trace(workload)
            )
        return self._hardware[workload]

    def hardware_evaluations(self) -> list[object]:
        """Hardware evaluations for every workload, fanned out in parallel.

        Distinct workloads use disjoint pipelines/traces, so the per-workload
        evaluations run concurrently through the declarative sweep runner and
        land in the same per-workload cache :meth:`hardware` uses.
        """
        missing = [w for w in self.workloads() if w not in self._hardware]
        if missing:
            run_sweep(
                lambda workload: self.hardware(workload),
                SweepSpec(name="fig12-hardware", grid={"workload": missing}),
            )
        return [self.hardware(w) for w in self.workloads()]

    def workloads(self) -> list[str]:
        return workload_names()


@pytest.fixture(scope="session")
def ctx() -> BenchmarkContext:
    return BenchmarkContext()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
