"""Fig. 7: temporal per-channel sparsity pattern of a ReLU-based EDM layer.

Rows are channels, columns are diffusion time steps; a cell is "black" when
the channel is mostly zero at that step.  The pattern must show (a) channels
with very different sparsity levels and (b) channels whose classification
changes over time.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis.tables import render_ascii_map
from repro.core.sparsity import sparsity_map


def test_fig7_temporal_per_channel_sparsity(benchmark, ctx):
    trace = run_once(benchmark, lambda: ctx.trace("cifar10"))

    # Pick the layer with the most channel-switching activity for display.
    layer_name = max(trace.layer_names(), key=lambda n: trace.channel_switch_rate(n, 0.3))
    matrix = trace.sparsity_matrix(layer_name)
    binary = sparsity_map(trace, layer_name, threshold=0.5)

    print()
    print(f"Fig. 7: temporal per-channel sparsity map of {layer_name}")
    print("('#' = mostly-zero channel at that time step, '.' = dense channel)")
    print(render_ascii_map(binary))
    print(
        f"average sparsity across all traced layers: {trace.average_sparsity():.2f} (paper: ~0.65)"
    )

    # Channels differ: some sparse, some dense.
    per_channel = matrix.mean(axis=1)
    assert per_channel.max() > 0.6
    assert per_channel.min() < 0.5
    # Temporal variation: the per-channel sparsity is not constant in time.
    assert float(np.mean(matrix.std(axis=1))) > 0.005
    # Overall sparsity is in the paper's regime for ReLU models.
    assert 0.45 < trace.average_sparsity() < 0.9
