"""Tests for the mixed-precision policy and the compute/memory cost model."""

from __future__ import annotations

import pytest

from repro.core.costs import cost_summary, high_precision_cost_fraction, layer_cost_table
from repro.core.policy import (
    mixed_precision_policy,
    sensitive_block_names,
    single_block_4bit_policy,
    table1_policy,
    uniform_policy,
)
from repro.nn.layers import Conv2d, Linear
from repro.nn.unet import BLOCK_CONV, EDMUNet, UNetConfig
from repro.quant import int4_spec


@pytest.fixture()
def model():
    return EDMUNet(
        UNetConfig(
            img_resolution=8, model_channels=8, channel_mult=(1, 2), num_blocks_per_res=2, seed=9
        )
    )


class TestPolicies:
    def test_uniform_policy_covers_all_quantizable_layers(self, model):
        policy = uniform_policy(model, int4_spec())
        quantizable = [
            name for name, m in model.named_modules() if isinstance(m, (Conv2d, Linear))
        ]
        assert set(policy.assignments) == set(quantizable)

    def test_apply_sets_specs(self, model):
        policy = uniform_policy(model, int4_spec())
        policy.apply(model)
        assert all(
            m.weight_spec is not None
            for _, m in model.named_modules()
            if isinstance(m, (Conv2d, Linear))
        )

    def test_clear_removes_specs(self, model):
        policy = uniform_policy(model, int4_spec())
        policy.apply(model)
        policy.clear(model)
        assert all(
            m.weight_spec is None and m.act_spec is None
            for _, m in model.named_modules()
            if isinstance(m, (Conv2d, Linear))
        )

    def test_fp_policy_applies_no_specs(self, model):
        policy = table1_policy(model, "FP16")
        policy.apply(model)
        assert all(
            m.weight_spec is None
            for _, m in model.named_modules()
            if isinstance(m, (Conv2d, Linear))
        )

    def test_table1_unknown_format(self, model):
        with pytest.raises(KeyError):
            table1_policy(model, "INT2")

    def test_sensitive_blocks_are_first_and_last(self, model):
        names = sensitive_block_names(model, num_boundary_blocks=1)
        infos = sorted(model.block_infos(), key=lambda i: i.order)
        assert infos[0].name in names and infos[-1].name in names
        assert len(names) == 2

    def test_mixed_precision_conv_blocks_are_4bit(self, model):
        policy = mixed_precision_policy(model, relu=False)
        sensitive = sensitive_block_names(model, 1)
        for assignment in policy.assignments.values():
            if assignment.block_type == BLOCK_CONV and assignment.block_name not in sensitive:
                assert assignment.weight_bits == 4
            else:
                assert assignment.weight_bits == 8

    def test_mixed_precision_relu_uses_unsigned_activations(self, model):
        policy = mixed_precision_policy(model, relu=True)
        four_bit_acts = [
            a.act_spec for a in policy.assignments.values() if a.act_bits == 4
        ]
        assert four_bit_acts
        assert all(spec.element is not None and not spec.element.signed for spec in four_bit_acts)
        assert policy.requires_relu

    def test_mp_only_uses_signed_activations(self, model):
        policy = mixed_precision_policy(model, relu=False)
        four_bit_acts = [a.act_spec for a in policy.assignments.values() if a.act_bits == 4]
        assert all(spec.element is not None and spec.element.signed for spec in four_bit_acts)

    def test_single_block_policy(self, model):
        target = model.block_names()[2]
        policy = single_block_4bit_policy(model, target)
        for assignment in policy.assignments.values():
            if assignment.block_name == target and assignment.block_type == BLOCK_CONV:
                assert assignment.weight_bits == 4
            else:
                assert assignment.weight_bits == 8

    def test_single_block_policy_unknown_block(self, model):
        with pytest.raises(KeyError):
            single_block_4bit_policy(model, "enc.128x128_block7")

    def test_bits_for_unassigned_layer_defaults_to_16(self, model):
        policy = mixed_precision_policy(model)
        assert policy.bits_for_layer("nonexistent") == (16, 16)

    def test_average_bits_between_4_and_8(self, model):
        policy = mixed_precision_policy(model)
        weight_bits, act_bits = policy.average_bits()
        assert 4.0 <= weight_bits <= 8.0
        assert 4.0 <= act_bits <= 8.0

    def test_policy_apply_to_unknown_layer_raises(self, model):
        policy = uniform_policy(model, int4_spec())
        policy.assignments["bogus.layer"] = next(iter(policy.assignments.values()))
        with pytest.raises(KeyError):
            policy.apply(
                EDMUNet(UNetConfig(img_resolution=8, model_channels=8, channel_mult=(1,), seed=1))
            )


class TestCosts:
    def test_layer_cost_table_covers_blocks(self, model):
        table = layer_cost_table(model)
        names = {c.layer_name for c in table}
        assert any("conv0" in n for n in names)
        assert "unet.conv_in" in names and "unet.emb_linear0" in names
        assert all(c.macs >= 0 for c in table)

    def test_fp16_policy_has_zero_saving(self, model):
        summary = cost_summary(model, table1_policy(model, "FP16"))
        assert summary.compute_saving == pytest.approx(0.0)
        assert summary.memory_saving == pytest.approx(0.0)

    def test_uniform_int4_saving_is_75_percent_compute(self, model):
        summary = cost_summary(model, table1_policy(model, "INT4"))
        assert summary.compute_saving == pytest.approx(0.75)
        assert summary.memory_saving == pytest.approx(0.75)

    def test_int4_vsq_saving_close_to_75_percent(self, model):
        summary = cost_summary(model, table1_policy(model, "INT4-VSQ"))
        assert summary.compute_saving == pytest.approx(0.75)
        assert 0.68 <= summary.memory_saving <= 0.75

    def test_mixed_precision_saving_between_half_and_75(self, model):
        summary = cost_summary(model, mixed_precision_policy(model, relu=True))
        assert 0.5 < summary.compute_saving < 0.75
        assert 0.5 < summary.memory_saving < 0.75

    def test_mxint8_saving_close_to_half(self, model):
        summary = cost_summary(model, table1_policy(model, "MXINT8"))
        assert summary.compute_saving == pytest.approx(0.5)
        assert 0.45 <= summary.memory_saving <= 0.5

    def test_none_policy_is_baseline(self, model):
        summary = cost_summary(model, None)
        assert summary.compute_saving == 0.0

    def test_high_precision_fraction_small_for_mp(self, model):
        policy = mixed_precision_policy(model)
        fraction = high_precision_cost_fraction(model, policy)
        # The paper quotes ~5% for the full-size EDM.  The scaled-down test
        # model has only 8 blocks, so its two boundary blocks (plus all
        # Skip/Embedding/Attention layers) represent a much larger share; the
        # 4-bit blocks must still carry a substantial part of the compute.
        assert 0.0 < fraction < 0.7

    def test_high_precision_fraction_one_for_uniform_8bit(self, model):
        policy = table1_policy(model, "MXINT8")
        assert high_precision_cost_fraction(model, policy) == pytest.approx(1.0)
