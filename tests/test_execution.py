"""Tests for the unified execution API: Executor protocol + JobHandle futures.

Covers the acceptance contract of the redesign: `JobHandle.cancel()` /
`result(timeout=)` semantics on every backend, the executor registry (and
the deprecated `run_sweep(executor="...")` string shim resolving through
it), and one sweep driven through `InlineExecutor`, `ServiceExecutor` and
`RemoteExecutor` yielding bit-identical `SimulationReport`s.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.accelerator import dense_baseline_config, random_workload, sqdm_config
from repro.core import codec
from repro.core.execution import (
    LOCAL_SPEC_KINDS,
    CompletedHandle,
    Executor,
    InlineExecutor,
    JobFailedError,
    JobStatus,
    LocalCallSpec,
    PoolExecutor,
    RemoteExecutor,
    ServiceExecutor,
    executor_names,
    register_executor,
    resolve_executor,
    spec_kind,
)
from repro.core.experiments import SweepSpec, run_sweep
from repro.core.report_cache import ReportCache
from repro.serve import (
    EvaluationService,
    RemoteEvaluationClient,
    SimulateJobSpec,
    SweepJobSpec,
    register_wire_function,
    start_http_server,
)


def make_trace(seed: int = 0, steps: int = 2, layers: int = 2):
    return [
        [
            random_workload(
                in_channels=16, spatial=5, seed=seed * 100 + 10 * s + n, name=f"l{n}"
            )
            for n in range(layers)
        ]
        for s in range(steps)
    ]


def _square(x):
    return x * x


def _boom():
    raise RuntimeError("kaboom")


#: Event-rendezvous wire functions: the HTTP test server runs in-process, so
#: these module-level events synchronize remote jobs deterministically.
_BLOCK_STARTED = threading.Event()
_BLOCK_RELEASE = threading.Event()


def _blocking_job():
    _BLOCK_STARTED.set()
    assert _BLOCK_RELEASE.wait(30)
    return "released"


register_wire_function("exec_square", _square)
register_wire_function("exec_boom", _boom)
register_wire_function("exec_block", _blocking_job)


@pytest.fixture()
def remote(tmp_path):
    """A live HTTP server with its own cache, plus a RemoteExecutor on it."""
    service = EvaluationService(cache=ReportCache(), max_workers=1)
    server = start_http_server(service, port=0)
    executor = RemoteExecutor(endpoint=server.endpoint)
    try:
        yield executor, service, server
    finally:
        executor.close()
        server.close()
        service.close(cancel_queued=True)


@pytest.fixture(autouse=True)
def _reset_block_events():
    _BLOCK_STARTED.clear()
    _BLOCK_RELEASE.clear()
    yield
    _BLOCK_RELEASE.set()  # never leave a worker parked


# -- InlineExecutor ----------------------------------------------------------------


class TestInlineExecutor:
    def test_submit_returns_completed_handle(self):
        with InlineExecutor() as executor:
            handle = executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 7}))
        assert handle.done() and handle.ok
        assert handle.status is JobStatus.DONE
        assert handle.result() == 49
        assert handle.result(timeout=0.001) == 49  # timeout is moot when done

    def test_work_failure_captured_on_handle(self):
        with InlineExecutor() as executor:
            handle = executor.submit(LocalCallSpec(fn=_boom))
        assert handle.status is JobStatus.FAILED and not handle.ok
        assert isinstance(handle.error, RuntimeError)
        with pytest.raises(JobFailedError, match="kaboom") as excinfo:
            handle.result()
        assert excinfo.value.__cause__ is handle.error

    def test_cancel_is_always_false(self):
        """Inline work runs at submission; there is never anything to prevent."""
        with InlineExecutor() as executor:
            handle = executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 2}))
        assert handle.cancel() is False
        assert handle.status is JobStatus.DONE  # cancel() never corrupts a result

    def test_add_done_callback_fires_immediately(self):
        seen = []
        with InlineExecutor() as executor:
            handle = executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 3}))
            handle.add_done_callback(lambda h: seen.append(h.result()))
        assert seen == [9]

    def test_add_done_callback_swallows_observer_errors_like_other_backends(self):
        with InlineExecutor() as executor:
            handle = executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 3}))
            handle.add_done_callback(lambda h: (_ for _ in ()).throw(RuntimeError("observer")))
        assert handle.result() == 9  # the raising callback never escaped

    def test_map_batches_simulations_and_coalesces_duplicates(self):
        """One map() call = one batched pass; duplicate keys cost one simulation."""
        cache = ReportCache()
        trace = make_trace(1)
        with InlineExecutor(cache=cache) as executor:
            handles = executor.map(
                [
                    SimulateJobSpec(config=sqdm_config(), trace=trace),
                    SimulateJobSpec(config=sqdm_config(), trace=trace),  # duplicate
                    SimulateJobSpec(config=dense_baseline_config(), trace=trace),
                ]
            )
        reports = [handle.result() for handle in handles]
        assert cache.stats.misses == 2  # two unique keys, three requests
        assert reports[0] is reports[1]
        assert reports[0].total_cycles != reports[2].total_cycles

    def test_wire_function_name_resolves_locally(self):
        with InlineExecutor() as executor:
            assert executor.submit(LocalCallSpec(fn="exec_square", kwargs={"x": 6})).result() == 36

    def test_unknown_wire_name_raises_at_submission(self):
        """Parity with the queueing backends: a bad name is a submit error,
        not a deferred handle failure."""
        with InlineExecutor() as executor:
            with pytest.raises(ValueError, match="unknown wire function"):
                executor.submit(LocalCallSpec(fn="no_such_wire_fn"))

    def test_sweep_spec_executes_inline(self):
        trace = make_trace(2)
        spec = SweepJobSpec(
            base=sqdm_config(),
            grid={"sparsity_threshold": [0.2, 0.4]},
            trace=trace,
            baseline=dense_baseline_config(),
            name="inline-grid",
        )
        with InlineExecutor() as executor:
            outcome = executor.submit(spec).result()
        assert [case["sparsity_threshold"] for case in outcome.params] == [0.2, 0.4]
        assert len(outcome.reports) == 2 and outcome.baseline is not None

    def test_invalid_sweep_grid_raises_at_submission(self):
        with InlineExecutor() as executor:
            with pytest.raises(ValueError, match="sweepable"):
                executor.submit(
                    SweepJobSpec(
                        base=sqdm_config(), grid={"warp_factor": [1]}, trace=make_trace()
                    )
                )

    def test_capabilities_include_local_call(self):
        assert InlineExecutor().capabilities() == LOCAL_SPEC_KINDS

    def test_stats_count_submissions_and_failures(self):
        with InlineExecutor() as executor:
            executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 1}))
            executor.submit(LocalCallSpec(fn=_boom))
            stats = executor.stats()
        assert stats["submitted"] == 2 and stats["failed"] == 1

    def test_rejects_non_specs(self):
        with pytest.raises(TypeError, match="not a job spec"):
            InlineExecutor().submit(object())


# -- PoolExecutor ------------------------------------------------------------------


class TestPoolExecutor:
    def test_thread_pool_runs_specs(self):
        with PoolExecutor("thread", max_workers=2) as executor:
            handles = executor.map(
                [LocalCallSpec(fn=_square, kwargs={"x": x}) for x in (2, 3, 4)]
            )
            assert [h.result(timeout=30) for h in handles] == [4, 9, 16]

    def test_result_timeout_raises_while_queued(self):
        release = threading.Event()
        try:
            with PoolExecutor("thread", max_workers=1) as executor:
                blocker = executor.submit(LocalCallSpec(fn=release.wait, args=(30,)))
                with pytest.raises(TimeoutError, match="still running"):
                    blocker.result(timeout=0.05)
                release.set()
                assert blocker.result(timeout=30) is True
        finally:
            release.set()

    def test_cancel_queued_job_wins_and_result_reports_it(self):
        release = threading.Event()
        try:
            with PoolExecutor("thread", max_workers=1) as executor:
                executor.submit(LocalCallSpec(fn=release.wait, args=(30,)))
                queued = executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 5}))
                assert queued.cancel() is True
                assert queued.status is JobStatus.CANCELLED and queued.done()
                with pytest.raises(JobFailedError, match="cancelled"):
                    queued.result()
                release.set()
        finally:
            release.set()

    def test_cancel_running_job_is_false(self):
        release = threading.Event()
        try:
            with PoolExecutor("thread", max_workers=1) as executor:
                running = executor.submit(LocalCallSpec(fn=release.wait, args=(30,)))
                deadline = time.monotonic() + 10
                while running.status is not JobStatus.RUNNING:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                assert running.cancel() is False
                release.set()
                assert running.result(timeout=30) is True
        finally:
            release.set()

    def test_add_done_callback_fires_on_completion(self):
        done = threading.Event()
        seen = []
        with PoolExecutor("thread", max_workers=1) as executor:
            handle = executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 8}))
            handle.add_done_callback(lambda h: (seen.append(h.result()), done.set()))
            assert done.wait(10)
        assert seen == [64]

    def test_process_pool_requires_picklable_specs(self):
        captured = []
        with PoolExecutor("process", max_workers=1) as executor:
            with pytest.raises(ValueError, match="picklable"):
                executor.submit(LocalCallSpec(fn=lambda: captured.append(1)))

    def test_process_pool_runs_module_level_functions(self):
        with PoolExecutor("process", max_workers=1) as executor:
            assert executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 9})).result(60) == 81


# -- ServiceExecutor ---------------------------------------------------------------


class TestServiceExecutor:
    def test_owned_service_lifecycle_and_results(self):
        with ServiceExecutor(max_workers=2) as executor:
            handle = executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 12}))
            assert handle.result(timeout=30) == 144
            assert executor.stats()["submitted"] == {"callable": 1}
        assert executor.service._closed  # owned service shut down with the executor

    def test_borrowed_service_stays_open(self):
        with EvaluationService(max_workers=1) as service:
            executor = service.as_executor()
            assert executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 2})).result(30) == 4
            executor.close()
            assert not service._closed
            # still usable after the borrowing executor went away
            assert service.submit(_square, 3).result(30) == 9

    def test_result_timeout_and_failure_semantics(self):
        release = threading.Event()
        try:
            with ServiceExecutor(max_workers=1) as executor:
                blocker = executor.submit(LocalCallSpec(fn=release.wait, args=(30,)))
                with pytest.raises(TimeoutError, match="still running"):
                    blocker.result(timeout=0.05)
                failing = executor.submit(LocalCallSpec(fn=_boom))
                release.set()
                assert blocker.result(timeout=30) is True
                with pytest.raises(JobFailedError, match="kaboom"):
                    failing.result(timeout=30)
        finally:
            release.set()

    def test_cancel_queued_job_wins(self):
        release = threading.Event()
        try:
            with ServiceExecutor(max_workers=1) as executor:
                executor.submit(LocalCallSpec(fn=release.wait, args=(30,)))
                queued = executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 5}))
                assert queued.cancel() is True
                assert queued.status is JobStatus.CANCELLED
                with pytest.raises(JobFailedError, match="cancelled"):
                    queued.result(timeout=30)
                assert queued.cancel() is False  # second attempt cannot win again
                release.set()
        finally:
            release.set()

    def test_add_done_callback_through_job(self):
        done = threading.Event()
        seen = []
        with ServiceExecutor(max_workers=1) as executor:
            handle = executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 4}))
            handle.add_done_callback(lambda h: (seen.append(h.result()), done.set()))
            assert done.wait(10)
            assert seen == [16]
            # registering after completion fires immediately
            late = []
            handle.add_done_callback(lambda h: late.append(h.status))
            assert late == [JobStatus.DONE]

    def test_simulation_specs_share_the_service_scheduler(self):
        cache = ReportCache()
        trace = make_trace(3)
        with ServiceExecutor(cache=cache, max_workers=2) as executor:
            handles = executor.map(
                [
                    SimulateJobSpec(config=sqdm_config(), trace=trace),
                    SimulateJobSpec(config=sqdm_config(), trace=trace),
                ]
            )
            reports = [h.result(timeout=60) for h in handles]
        assert cache.stats.misses == 1  # coalesced/single-flight on the service
        assert reports[0].total_cycles == reports[1].total_cycles


# -- RemoteExecutor ----------------------------------------------------------------


class TestRemoteExecutor:
    def test_needs_endpoint_or_client(self):
        with pytest.raises(ValueError, match="endpoint"):
            RemoteExecutor()

    def test_submit_and_result(self, remote):
        executor, _, _ = remote
        handle = executor.submit(LocalCallSpec(fn="exec_square", kwargs={"x": 11}))
        assert handle.result(timeout=60) == 121
        assert handle.status is JobStatus.DONE and handle.ok

    def test_live_callables_must_be_wire_registered(self, remote):
        executor, _, _ = remote
        with pytest.raises(ValueError, match="register_wire_function"):
            executor.submit(LocalCallSpec(fn=lambda: 1))
        assert executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 5})).result(60) == 25

    def test_result_timeout_raises(self, remote):
        executor, _, _ = remote
        blocker = executor.submit(LocalCallSpec(fn="exec_block"))
        assert _BLOCK_STARTED.wait(10)
        with pytest.raises(TimeoutError, match="still running"):
            blocker.result(timeout=0.05)
        _BLOCK_RELEASE.set()
        assert blocker.result(timeout=60) == "released"

    def test_cancel_queued_job_wins(self, remote):
        executor, _, _ = remote
        blocker = executor.submit(LocalCallSpec(fn="exec_block"))
        assert _BLOCK_STARTED.wait(10)  # the single worker is now parked
        queued = executor.submit(LocalCallSpec(fn="exec_square", kwargs={"x": 3}))
        assert queued.cancel() is True
        assert queued.status is JobStatus.CANCELLED
        with pytest.raises(JobFailedError, match="cancelled"):
            queued.result(timeout=60)
        _BLOCK_RELEASE.set()
        assert blocker.result(timeout=60) == "released"
        assert blocker.cancel() is False  # already finished

    def test_failure_carries_server_message(self, remote):
        executor, _, _ = remote
        handle = executor.submit(LocalCallSpec(fn="exec_boom"))
        with pytest.raises(JobFailedError, match="kaboom"):
            handle.result(timeout=60)
        assert handle.status is JobStatus.FAILED

    def test_add_done_callback_via_watcher(self, remote):
        executor, _, _ = remote
        done = threading.Event()
        seen = []
        handle = executor.submit(LocalCallSpec(fn="exec_square", kwargs={"x": 7}))
        handle.add_done_callback(lambda h: (seen.append(h.result()), done.set()))
        assert done.wait(30)
        assert seen == [49]
        late = []
        handle.add_done_callback(lambda h: late.append(h.ok))
        assert late == [True]

    def test_capabilities_discovered_from_schemas_endpoint(self, remote):
        executor, _, _ = remote
        assert executor.capabilities() == frozenset(
            {"simulate_spec", "sweep_spec", "quality_spec", "callable_spec"}
        )

    def test_client_as_executor_shares_transport(self, remote):
        _, _, server = remote
        client = RemoteEvaluationClient(server.endpoint)
        executor = client.as_executor()
        assert executor.client is client
        assert executor.submit(LocalCallSpec(fn="exec_square", kwargs={"x": 2})).result(60) == 4

    def test_borrowed_client_not_closed_with_executor(self, remote, monkeypatch):
        """Parity with ServiceExecutor: a passed-in client is borrowed, so
        executor.close() must not tear it down."""
        _, _, server = remote
        client = RemoteEvaluationClient(server.endpoint)
        closed = []
        monkeypatch.setattr(client, "close", lambda: closed.append(True))
        with client.as_executor() as executor:
            assert executor._owned is False
        assert closed == []  # borrowed: untouched
        owned = RemoteExecutor(endpoint=server.endpoint)
        monkeypatch.setattr(owned.client, "close", lambda: closed.append(True))
        owned.close()
        assert closed == [True]  # owned: closed with the executor


# -- registry ----------------------------------------------------------------------


class TestExecutorRegistry:
    def test_builtins_registered(self):
        assert {"inline", "serial", "thread", "process", "service", "remote"} <= set(
            executor_names()
        )

    def test_unknown_name_rejected_with_alternatives(self):
        with pytest.raises(ValueError, match="registered executors"):
            resolve_executor("warp_drive")

    def test_third_party_backend_registers_and_resolves(self):
        class RecordingExecutor(InlineExecutor):
            created_with: dict = {}

        def factory(**options):
            RecordingExecutor.created_with = options
            return RecordingExecutor(cache=options.get("cache"))

        register_executor("recording", factory)
        try:
            with resolve_executor("recording", max_workers=3) as executor:
                assert isinstance(executor, RecordingExecutor)
                assert RecordingExecutor.created_with["max_workers"] == 3
                assert executor.submit(LocalCallSpec(fn=_square, kwargs={"x": 2})).result() == 4
            # the deprecated run_sweep string shim reaches it too
            with pytest.warns(DeprecationWarning):
                result = run_sweep(_square, {"x": [2, 3]}, executor="recording")
            assert result.values() == [4, 9]
        finally:
            from repro.core.execution import _EXECUTOR_FACTORIES

            _EXECUTOR_FACTORIES.pop("recording", None)

    def test_spec_kind_names(self):
        assert spec_kind(LocalCallSpec(fn=_square)) == "local_call"
        assert spec_kind(SimulateJobSpec(config=sqdm_config(), trace=[])) == "simulate_spec"


# -- run_sweep over the new surface ------------------------------------------------


class TestRunSweepExecutors:
    def test_executor_instance_is_borrowed_not_closed(self):
        with PoolExecutor("thread", max_workers=2) as executor:
            first = run_sweep(_square, {"x": [1, 2]}, executor=executor)
            second = run_sweep(_square, {"x": [3]}, executor=executor)
        assert first.values() == [1, 4] and second.values() == [9]

    def test_inline_instance_runs_sweep(self):
        result = run_sweep(
            lambda a, b: a * 10 + b,
            SweepSpec(name="s", grid={"a": [1, 2], "b": [3, 4]}),
            executor=InlineExecutor(),
        )
        assert result.values() == [13, 14, 23, 24]

    def test_deprecated_string_warns_and_matches_instance_results(self):
        """Satellite: the string shim resolves through the registry, warns, and
        produces results identical to the explicit-instance form."""
        grid = {"a": [1, 2, 3], "b": [10, 20]}
        modern = run_sweep(lambda a, b: a * b, grid, executor=InlineExecutor())
        with pytest.warns(DeprecationWarning, match="InlineExecutor"):
            legacy = run_sweep(lambda a, b: a * b, grid, executor="serial")
        assert legacy.values() == modern.values()
        assert [case.params for case in legacy.cases] == [case.params for case in modern.cases]

    @pytest.mark.parametrize(
        "name, replacement",
        [
            ("thread", "PoolExecutor"),
            ("service", "ServiceExecutor"),
        ],
    )
    def test_every_string_name_warns_with_replacement(self, name, replacement):
        with pytest.warns(DeprecationWarning, match=replacement):
            result = run_sweep(_square, {"x": [2]}, executor=name)
        assert result.values() == [4]

    def test_inline_raise_mode_stops_at_first_failure(self):
        """The historical serial contract: on_error='raise' must not run the
        rest of the grid once a case fails."""
        ran = []

        def flaky(i):
            ran.append(i)
            if i == 1:
                raise RuntimeError("stop here")
            return i

        with pytest.raises(RuntimeError, match="stop here"):
            run_sweep(flaky, {"i": [0, 1, 2, 3]}, executor=InlineExecutor())
        assert ran == [0, 1]  # cases 2 and 3 never executed

    def test_non_executor_object_rejected_with_guidance(self):
        """Passing the old service= style object as executor= must not surface
        as a bare AttributeError deep inside map()."""
        with EvaluationService(max_workers=1) as service:
            with pytest.raises(TypeError, match="as_executor"):
                run_sweep(_square, {"x": [1]}, executor=service)

    def test_capture_mode_records_handle_errors(self):
        def flaky(i):
            if i == 1:
                raise RuntimeError("nope")
            return i

        with ServiceExecutor(max_workers=2) as executor:
            result = run_sweep(
                flaky, {"i": [0, 1, 2]}, executor=executor, on_error="capture"
            )
        assert [case.ok for case in result.cases] == [True, False, True]
        assert "nope" in str(result.cases[1].error)


# -- cross-backend bit-identity ----------------------------------------------------


class TestCrossBackendBitIdentity:
    def test_sweep_bit_identical_across_inline_service_remote(self, remote):
        """Acceptance: the same sweep spec through InlineExecutor,
        ServiceExecutor and RemoteExecutor yields bit-identical reports.

        Each backend gets an *independent* cache, so all three actually
        simulate; equality is asserted on the encoded wire bytes of every
        report, the strongest identity the schema layer can express.
        """
        remote_executor, _, _ = remote
        trace = make_trace(9, steps=3)
        spec = SweepJobSpec(
            base=sqdm_config(),
            grid={"sparsity_threshold": [0.15, 0.45]},
            trace=trace,
            baseline=dense_baseline_config(),
            name="tri-backend",
        )

        outcomes = {}
        with InlineExecutor(cache=ReportCache()) as inline:
            outcomes["inline"] = inline.submit(spec).result()
        with ServiceExecutor(cache=ReportCache(), max_workers=2) as service:
            outcomes["service"] = service.submit(spec).result(timeout=120)
        outcomes["remote"] = remote_executor.submit(spec).result(timeout=120)

        def wire(outcome):
            return [codec.dumps(report) for report in outcome.reports] + [
                codec.dumps(outcome.baseline)
            ]

        reference = wire(outcomes["inline"])
        assert all(case_json for case_json in reference)
        assert wire(outcomes["service"]) == reference
        assert wire(outcomes["remote"]) == reference
        assert [c["sparsity_threshold"] for c in outcomes["remote"].params] == [0.15, 0.45]

    def test_evaluate_hardware_identical_through_service_executor(self, cifar_workload):
        from repro.core.pipeline import PipelineConfig, SQDMPipeline

        pipeline = SQDMPipeline(
            workload=cifar_workload,
            config=PipelineConfig(
                num_sampling_steps=2, num_trace_samples=1, num_reference_samples=8
            ),
            artifacts=None,
            report_cache=ReportCache(),
        )
        trace = pipeline.collect_trace(relu=True)
        default = pipeline.evaluate_hardware(trace=trace)
        with ServiceExecutor(cache=ReportCache(), max_workers=2) as executor:
            routed = pipeline.evaluate_hardware(trace=trace, executor=executor)
        assert routed.sqdm_report.total_cycles == default.sqdm_report.total_cycles
        assert routed.total_speedup == default.total_speedup


# -- handle odds and ends ----------------------------------------------------------


class TestHandleBasics:
    def test_completed_handle_repr_and_done(self):
        handle = CompletedHandle("inline-0001", "lbl", "local_call", value=1)
        assert handle.done() and handle.wait(0) and handle.error is None

    def test_executor_protocol_is_abstract(self):
        with pytest.raises(TypeError):
            Executor()  # submit() is abstract
