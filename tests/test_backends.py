"""Simulation-backend tests: vectorized-vs-reference equivalence and the facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    AcceleratorSimulator,
    ComparisonResult,
    ConvLayerWorkload,
    ReferenceBackend,
    SimulationBackend,
    VectorizedBackend,
    available_backends,
    dense_baseline_config,
    get_backend,
    random_workload,
    relative_saving,
    safe_speedup,
    sqdm_config,
)

RTOL = 1e-9


def random_trace(
    rng: np.random.Generator, steps: int, layers: int
) -> list[list[ConvLayerWorkload]]:
    """A randomized trace: per-layer geometry fixed across steps (as in real
    traces — stale detector classifications index the layer's channels),
    per-step sparsity and per-layer precision randomized."""
    templates = [
        random_workload(
            in_channels=int(rng.integers(1, 96)),
            out_channels=int(rng.integers(1, 64)),
            spatial=int(rng.integers(1, 24)),
            kernel_size=int(rng.choice([1, 3, 5])),
            weight_bits=int(rng.choice([4, 8, 16])),
            act_bits=int(rng.choice([4, 8, 16])),
            seed=int(rng.integers(0, 2**31)),
            name=f"layer{layer}",
        )
        for layer in range(layers)
    ]
    return [
        [
            template.replace(
                channel_sparsity=rng.beta(
                    a=rng.uniform(0.5, 5.0), b=rng.uniform(0.5, 5.0), size=template.in_channels
                )
            )
            for template in templates
        ]
        for _ in range(steps)
    ]


def assert_reports_equivalent(ref, vec, rtol=RTOL):
    """Reference and vectorized reports agree on every reported quantity."""
    assert ref.config_name == vec.config_name
    assert ref.clock_ghz == vec.clock_ghz
    assert vec.total_cycles == pytest.approx(ref.total_cycles, rel=rtol)
    assert vec.total_macs == pytest.approx(ref.total_macs, rel=rtol)
    assert vec.executed_macs == pytest.approx(ref.executed_macs, rel=rtol)
    assert vec.average_load_imbalance() == pytest.approx(
        ref.average_load_imbalance(), rel=1e-8, abs=1e-12
    )
    for component, expected in ref.total_energy.as_dict().items():
        assert vec.total_energy.as_dict()[component] == pytest.approx(
            expected, rel=rtol, abs=1e-9
        ), component
    assert len(ref.step_results) == len(vec.step_results)
    for ref_step, vec_step in zip(ref.step_results, vec.step_results):
        assert vec_step.cycles == pytest.approx(ref_step.cycles, rel=rtol)
        assert len(ref_step.layer_results) == len(vec_step.layer_results)
        for ref_layer, vec_layer in zip(ref_step.layer_results, vec_step.layer_results):
            assert ref_layer.layer_name == vec_layer.layer_name
            assert vec_layer.cycles == pytest.approx(ref_layer.cycles, rel=rtol)
            assert vec_layer.dense_channels == ref_layer.dense_channels
            assert vec_layer.sparse_channels == ref_layer.sparse_channels
            assert vec_layer.executed_macs == pytest.approx(ref_layer.executed_macs, rel=rtol)
            assert vec_layer.dense_cycles == pytest.approx(ref_layer.dense_cycles, rel=rtol)
            assert vec_layer.sparse_cycles == pytest.approx(ref_layer.sparse_cycles, rel=rtol)


class TestBackendRegistry:
    def test_both_backends_registered(self):
        assert available_backends() == ["reference", "vectorized"]

    def test_get_backend_instances(self):
        config = sqdm_config()
        assert isinstance(get_backend("reference", config), ReferenceBackend)
        assert isinstance(get_backend("vectorized", config), VectorizedBackend)

    def test_backends_satisfy_protocol(self):
        config = sqdm_config()
        assert isinstance(ReferenceBackend(config), SimulationBackend)
        assert isinstance(VectorizedBackend(config), SimulationBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            get_backend("cycle_accurate", sqdm_config())
        with pytest.raises(ValueError, match="unknown simulation backend"):
            AcceleratorSimulator(sqdm_config(), backend="cycle_accurate")

    def test_facade_exposes_backend_name(self):
        assert AcceleratorSimulator(sqdm_config(), backend="reference").backend_name == "reference"
        simulator = AcceleratorSimulator(sqdm_config(), backend="vectorized")
        assert simulator.backend_name == "vectorized"


class TestVectorizedEquivalence:
    """Property-style check: the vectorized engine reproduces the reference."""

    @pytest.mark.parametrize(
        "config",
        [
            sqdm_config(),
            dense_baseline_config(),
            AcceleratorConfig(name="all_sparse", num_dpe=0, num_spe=2),
            AcceleratorConfig(name="wide", num_dpe=3, num_spe=2),
            sqdm_config(sparsity_update_period=3),
            sqdm_config(sparsity_threshold=0.7),
            sqdm_config(global_buffer_kib=1),  # forces DRAM spills
        ],
        ids=lambda c: (
            f"{c.name}-p{c.sparsity_update_period}-t{c.sparsity_threshold}-g{c.global_buffer_kib}"
        ),
    )
    @pytest.mark.parametrize("trial", range(3))
    def test_randomized_traces_match(self, config, trial):
        rng = np.random.default_rng(1000 * trial + hash(config.name) % 997)
        trace = random_trace(rng, steps=int(rng.integers(1, 6)), layers=int(rng.integers(1, 5)))
        ref = AcceleratorSimulator(config, backend="reference").run_trace(trace)
        vec = AcceleratorSimulator(config, backend="vectorized").run_trace(trace)
        assert_reports_equivalent(ref, vec)

    def test_detector_update_schedule_matches(self, synthetic_trace):
        config = sqdm_config(sparsity_update_period=2)
        ref_sim = AcceleratorSimulator(config, backend="reference")
        vec_sim = AcceleratorSimulator(config, backend="vectorized")
        ref_sim.run_trace(synthetic_trace)
        vec_sim.run_trace(synthetic_trace)
        assert (
            vec_sim.detector_stats.updates_performed
            == ref_sim.detector_stats.updates_performed
        )
        assert (
            vec_sim.detector_stats.channels_evaluated
            == ref_sim.detector_stats.channels_evaluated
        )

    def test_empty_trace(self):
        for config in (sqdm_config(), dense_baseline_config()):
            ref = AcceleratorSimulator(config, backend="reference").run_trace([])
            vec = AcceleratorSimulator(config, backend="vectorized").run_trace([])
            assert_reports_equivalent(ref, vec)
            assert vec.total_cycles == 0.0

    def test_empty_steps(self):
        ref = AcceleratorSimulator(sqdm_config(), backend="reference").run_trace([[], []])
        vec = AcceleratorSimulator(sqdm_config(), backend="vectorized").run_trace([[], []])
        assert_reports_equivalent(ref, vec)
        assert len(vec.step_results) == 2

    def test_single_channel_layers(self):
        trace = [
            [
                ConvLayerWorkload(
                    "tiny", 1, 1, 1, 1, 1, weight_bits=4, act_bits=4,
                    channel_sparsity=np.array([sparsity]),
                )
            ]
            for sparsity in (0.0, 0.5, 1.0)
        ]
        ref = AcceleratorSimulator(sqdm_config(), backend="reference").run_trace(trace)
        vec = AcceleratorSimulator(sqdm_config(), backend="vectorized").run_trace(trace)
        assert_reports_equivalent(ref, vec)

    def test_vectorized_runs_equivalent_back_to_back(self, synthetic_trace):
        """Backend state (detector schedule) resets between run_trace calls."""
        sim = AcceleratorSimulator(sqdm_config(sparsity_update_period=2), backend="vectorized")
        first = sim.run_trace(synthetic_trace)
        second = sim.run_trace(synthetic_trace)
        assert second.total_cycles == first.total_cycles
        assert second.total_energy.total_pj == first.total_energy.total_pj


class TestCrossConfigBatching:
    """The cross-config kernel: one NumPy pass over a (config x trace) grid."""

    GRID = [
        sqdm_config(),
        dense_baseline_config(),  # num_spe == 0: detector bypassed, all dense
        AcceleratorConfig(name="all_sparse", num_dpe=0, num_spe=2),
        AcceleratorConfig(name="wide", num_dpe=3, num_spe=2),
        sqdm_config(sparsity_update_period=3),
        sqdm_config(sparsity_threshold=0.7),
    ]

    @pytest.mark.parametrize("trial", range(3))
    def test_randomized_grid_matches_reference(self, trial):
        """Property-style: a batched (config x trace) grid stays within 1e-9
        of per-pair reference runs, including both degenerate datapaths."""
        rng = np.random.default_rng(4242 + trial)
        traces = [
            random_trace(rng, steps=int(rng.integers(1, 4)), layers=int(rng.integers(1, 4)))
            for _ in range(3)
        ]
        entries = [(config, traces) for config in self.GRID]
        batched = AcceleratorSimulator(self.GRID[0]).run_config_traces(entries)
        assert [len(reports) for reports in batched] == [3] * len(self.GRID)
        for config, reports in zip(self.GRID, batched):
            for trace, report in zip(traces, reports):
                ref = AcceleratorSimulator(config, backend="reference").run_trace(trace)
                assert_reports_equivalent(ref, report)

    def test_batched_bit_identical_to_solo_vectorized(self):
        """Batching across configs must not change a single bit of any report:
        the per-config scalar gather, padded PE axes, and the vectorized
        sparsity fill all reproduce the solo pass exactly (not just to rtol)."""
        rng = np.random.default_rng(7)
        traces = [random_trace(rng, steps=2, layers=2) for _ in range(2)]
        entries = [(config, traces) for config in self.GRID]
        batched = AcceleratorSimulator(self.GRID[0]).run_config_traces(entries)
        for config, reports in zip(self.GRID, batched):
            for trace, report in zip(traces, reports):
                solo = AcceleratorSimulator(config).run_trace(trace)
                assert report.total_cycles == solo.total_cycles
                assert report.total_energy.as_dict() == solo.total_energy.as_dict()
                for batched_step, solo_step in zip(report.step_results, solo.step_results):
                    assert batched_step.cycles == solo_step.cycles
                    assert batched_step.energy.as_dict() == solo_step.energy.as_dict()
                    for batched_layer, solo_layer in zip(
                        batched_step.layer_results, solo_step.layer_results
                    ):
                        assert batched_layer.cycles == solo_layer.cycles
                        assert batched_layer.executed_macs == solo_layer.executed_macs

    def test_empty_and_uneven_trace_lists_in_batch(self):
        """Entries with zero traces, empty traces, and different trace counts
        coexist in one batch without perturbing their neighbours."""
        rng = np.random.default_rng(11)
        trace = random_trace(rng, steps=2, layers=1)
        entries = [
            (sqdm_config(), []),
            (dense_baseline_config(), [[], trace]),
            (sqdm_config(sparsity_threshold=0.7), [trace, [[]], []]),
        ]
        batched = AcceleratorSimulator(sqdm_config()).run_config_traces(entries)
        assert [len(reports) for reports in batched] == [0, 2, 3]
        assert batched[1][0].total_cycles == 0.0 and batched[1][0].step_results == []
        assert len(batched[2][1].step_results) == 1  # one empty step survives
        cases = ((dense_baseline_config(), 1), (sqdm_config(sparsity_threshold=0.7), 0))
        for config, index in cases:
            solo = AcceleratorSimulator(config).run_trace(trace)
            report = batched[1][1] if index == 1 else batched[2][0]
            assert report.total_cycles == solo.total_cycles

    def test_single_entry_batch_matches_run_traces(self):
        rng = np.random.default_rng(13)
        traces = [random_trace(rng, steps=1, layers=2) for _ in range(2)]
        via_batch = AcceleratorSimulator(sqdm_config()).run_config_traces(
            [(sqdm_config(), traces)]
        )
        via_traces = AcceleratorSimulator(sqdm_config()).run_traces(traces)
        for batched, direct in zip(via_batch[0], via_traces):
            assert batched.total_cycles == direct.total_cycles
            assert batched.total_energy.total_pj == direct.total_energy.total_pj

    def test_reference_backend_supports_cross_config_entry_point(self):
        rng = np.random.default_rng(17)
        trace = random_trace(rng, steps=1, layers=1)
        entries = [(sqdm_config(), [trace]), (dense_baseline_config(), [trace])]
        reports = AcceleratorSimulator(sqdm_config(), backend="reference").run_config_traces(
            entries
        )
        for (config, _), config_reports in zip(entries, reports):
            solo = AcceleratorSimulator(config, backend="reference").run_trace(trace)
            assert config_reports[0].total_cycles == pytest.approx(solo.total_cycles, rel=1e-12)

    def test_sparsity_fill_bit_identical_to_row_loop(self):
        """The concatenate + fancy-index sparsity fill reproduces the PR-2
        per-row Python loop bit for bit on ragged channel counts."""
        rng = np.random.default_rng(23)
        sparsities = [rng.random(int(rng.integers(1, 40))) for _ in range(25)]
        in_channels = np.array([s.size for s in sparsities])
        looped = np.zeros((len(sparsities), int(in_channels.max())))
        for row, values in enumerate(sparsities):
            looped[row, : values.size] = values
        flat = np.concatenate(sparsities)
        rows = np.repeat(np.arange(len(sparsities)), in_channels)
        starts = np.concatenate(([0], np.cumsum(in_channels)[:-1]))
        cols = np.arange(flat.size) - np.repeat(starts, in_channels)
        vectorized = np.zeros_like(looped)
        vectorized[rows, cols] = flat
        assert np.array_equal(looped, vectorized)


class TestPerReportDetectorStats:
    """Satellite: detector activity is reported per (config, trace) pair on
    the immutable report, not only as mutable batch totals on the backend."""

    def test_solo_report_carries_detector_stats(self, synthetic_trace):
        config = sqdm_config(sparsity_update_period=2)
        sim = AcceleratorSimulator(config)
        report = sim.run_trace(synthetic_trace)
        assert report.detector_stats is not None
        assert report.detector_stats.updates_performed == sim.detector_stats.updates_performed
        assert report.detector_stats.channels_evaluated == sim.detector_stats.channels_evaluated
        assert report.detector_stats.updates_performed > 0

    def test_batched_reports_carry_per_trace_stats(self, synthetic_trace):
        """Batch totals on the backend equal the sum of per-report stats, and
        each per-report value matches the solo run."""
        config = sqdm_config(sparsity_update_period=2)
        sim = AcceleratorSimulator(config)
        solo = sim.run_trace(synthetic_trace)
        batched = sim.run_traces([synthetic_trace, synthetic_trace, synthetic_trace])
        for report in batched:
            assert report.detector_stats.updates_performed == solo.detector_stats.updates_performed
            assert (
                report.detector_stats.channels_evaluated == solo.detector_stats.channels_evaluated
            )
        assert sim.detector_stats.updates_performed == 3 * solo.detector_stats.updates_performed

    def test_cross_config_stats_match_reference(self):
        rng = np.random.default_rng(29)
        trace = random_trace(rng, steps=3, layers=2)
        configs = [sqdm_config(sparsity_update_period=2), sqdm_config(sparsity_threshold=0.7)]
        batched = AcceleratorSimulator(configs[0]).run_config_traces(
            [(config, [trace]) for config in configs]
        )
        for config, reports in zip(configs, batched):
            ref = AcceleratorSimulator(config, backend="reference").run_trace(trace)
            assert reports[0].detector_stats.updates_performed == (
                ref.detector_stats.updates_performed
            )
            assert reports[0].detector_stats.channels_evaluated == (
                ref.detector_stats.channels_evaluated
            )

    def test_degenerate_configs_report_zero_detector_activity(self):
        rng = np.random.default_rng(31)
        trace = random_trace(rng, steps=2, layers=1)
        for config in (dense_baseline_config(), AcceleratorConfig(name="sp", num_dpe=0, num_spe=2)):
            report = AcceleratorSimulator(config).run_trace(trace)
            assert report.detector_stats.updates_performed == 0
            assert report.detector_stats.channels_evaluated == 0


class TestDivisionEdgeCases:
    def test_safe_speedup_zero_over_zero_is_one(self):
        assert safe_speedup(0.0, 0.0) == 1.0

    def test_safe_speedup_zero_candidate_is_inf(self):
        assert safe_speedup(10.0, 0.0) == float("inf")

    def test_relative_saving_zero_over_zero_is_zero(self):
        assert relative_saving(0.0, 0.0) == 0.0

    def test_relative_saving_zero_baseline_is_neg_inf(self):
        assert relative_saving(0.0, 5.0) == float("-inf")

    def test_comparison_of_empty_traces(self):
        empty_report = AcceleratorSimulator(sqdm_config()).run_trace([])
        baseline_report = AcceleratorSimulator(dense_baseline_config()).run_trace([])
        comparison = ComparisonResult(baseline=baseline_report, candidate=empty_report)
        assert comparison.speedup == 1.0
        assert comparison.energy_saving == 0.0

    def test_hardware_evaluation_of_zero_work(self):
        from repro.core.pipeline import HardwareEvaluation

        empty = AcceleratorSimulator(sqdm_config()).run_trace([])
        evaluation = HardwareEvaluation(
            workload="none",
            sqdm_report=empty,
            dense_baseline_report=empty,
            fp16_dense_report=empty,
            average_sparsity=0.0,
        )
        assert evaluation.sparsity_speedup == 1.0
        assert evaluation.quantization_speedup == 1.0
        assert evaluation.total_speedup == 1.0
        assert evaluation.sparsity_energy_saving == 0.0


class TestWorkloadReplace:
    def test_replace_overrides_fields(self):
        workload = random_workload(seed=1)
        copy = workload.replace(weight_bits=16, act_bits=8)
        assert copy.weight_bits == 16 and copy.act_bits == 8
        assert copy.name == workload.name
        assert np.array_equal(copy.channel_sparsity, workload.channel_sparsity)

    def test_replace_copies_sparsity(self):
        workload = random_workload(seed=2)
        copy = workload.replace()
        copy.channel_sparsity[0] = 0.123456
        assert workload.channel_sparsity[0] != 0.123456

    def test_replace_revalidates(self):
        workload = random_workload(in_channels=8, seed=3)
        with pytest.raises(ValueError):
            workload.replace(channel_sparsity=np.zeros(4))
