"""Shared fixtures: tiny models, datasets and traces sized for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.workload import random_workload
from repro.diffusion.datasets import load_dataset
from repro.diffusion.edm import EDMDenoiser
from repro.nn.unet import EDMUNet, UNetConfig
from repro.workloads.models import load_workload


@pytest.fixture()
def tiny_unet_config() -> UNetConfig:
    return UNetConfig(
        img_resolution=8,
        model_channels=8,
        channel_mult=(1, 2),
        num_blocks_per_res=1,
        attn_resolutions=(4,),
        seed=3,
    )


@pytest.fixture()
def tiny_unet(tiny_unet_config) -> EDMUNet:
    return EDMUNet(tiny_unet_config)


@pytest.fixture(scope="session")
def tiny_dataset():
    return load_dataset("cifar10", resolution=8)


@pytest.fixture()
def tiny_denoiser(tiny_unet, tiny_dataset) -> EDMDenoiser:
    return EDMDenoiser(tiny_unet, prior=tiny_dataset.prior)


@pytest.fixture(scope="session")
def cifar_workload():
    """The calibrated CIFAR-10 workload at reduced (8x8) resolution."""
    return load_workload("cifar10", resolution=8)


@pytest.fixture()
def synthetic_trace():
    """A small synthetic accelerator workload trace: 3 steps x 2 layers."""
    return [
        [
            random_workload(
                in_channels=32,
                out_channels=32,
                spatial=8,
                mean_sparsity=0.65,
                weight_bits=4,
                act_bits=4,
                seed=10 * step + layer,
                name=f"layer{layer}",
            )
            for layer in range(2)
        ]
        for step in range(3)
    ]


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
