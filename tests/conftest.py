"""Shared fixtures: tiny models, datasets and traces sized for fast unit tests.

With ``REPRO_LOCKWATCH=1`` the runtime lock-order detector is installed
*before* any repro module is imported (so every lock the code under test
creates is tracked) and the session fails if a lock-ordering cycle or a
blocking-call-under-lock was recorded anywhere in the run.
"""

from __future__ import annotations

import numpy as np
import pytest

# Must run before the repro imports below create any locks.
from repro.devtools import lockwatch as _lockwatch

_WATCH = _lockwatch.install_from_env()

from repro.accelerator.workload import random_workload  # noqa: E402
from repro.diffusion.datasets import load_dataset  # noqa: E402
from repro.diffusion.edm import EDMDenoiser  # noqa: E402
from repro.nn.unet import EDMUNet, UNetConfig  # noqa: E402
from repro.workloads.models import load_workload  # noqa: E402


@pytest.fixture()
def tiny_unet_config() -> UNetConfig:
    return UNetConfig(
        img_resolution=8,
        model_channels=8,
        channel_mult=(1, 2),
        num_blocks_per_res=1,
        attn_resolutions=(4,),
        seed=3,
    )


@pytest.fixture()
def tiny_unet(tiny_unet_config) -> EDMUNet:
    return EDMUNet(tiny_unet_config)


@pytest.fixture(scope="session")
def tiny_dataset():
    return load_dataset("cifar10", resolution=8)


@pytest.fixture()
def tiny_denoiser(tiny_unet, tiny_dataset) -> EDMDenoiser:
    return EDMDenoiser(tiny_unet, prior=tiny_dataset.prior)


@pytest.fixture(scope="session")
def cifar_workload():
    """The calibrated CIFAR-10 workload at reduced (8x8) resolution."""
    return load_workload("cifar10", resolution=8)


@pytest.fixture()
def synthetic_trace():
    """A small synthetic accelerator workload trace: 3 steps x 2 layers."""
    return [
        [
            random_workload(
                in_channels=32,
                out_channels=32,
                spatial=8,
                mean_sparsity=0.65,
                weight_bits=4,
                act_bits=4,
                seed=10 * step + layer,
                name=f"layer{layer}",
            )
            for layer in range(2)
        ]
        for step in range(3)
    ]


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session", autouse=True)
def _lockwatch_gate():
    """Fail the session on lock-discipline violations when lockwatch is on."""
    yield
    if _WATCH is not None:
        _WATCH.check()
