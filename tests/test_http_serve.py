"""Tests for the HTTP front end and the remote evaluation client.

The wire contract under test: everything crossing the HTTP boundary is
plain, versioned, schema-tagged JSON — job submissions are typed specs,
results are self-describing envelopes, and nothing on the wire requires
unpickling (see ``TestRawJSONWire``, which drives a sweep with nothing but
``urllib`` and ``json``).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.accelerator import AcceleratorSimulator, dense_baseline_config, sqdm_config
from repro.core import codec
from repro.core.artifacts import ArtifactStore
from repro.core.experiments import run_sweep
from repro.core.report_cache import ReportCache
from repro.serve import (
    EvaluationService,
    JobFailedError,
    JobStatus,
    RemoteEvaluationClient,
    RemoteServiceError,
    SweepJobSpec,
    register_wire_function,
    start_http_server,
)
from repro.serve.cli import main as cli_main

from test_serve import _module_level_boom, _module_level_square, make_trace

register_wire_function("square", _module_level_square)
register_wire_function("boom", _module_level_boom)


def _module_level_wait_forever(seconds):
    time.sleep(seconds)
    return "done"


register_wire_function("wait_forever", _module_level_wait_forever)


@pytest.fixture()
def served(tmp_path):
    """A live HTTP server over a fresh service + artifact store."""
    store = ArtifactStore(tmp_path / "artifacts")
    cache = ReportCache(store=store)
    service = EvaluationService(cache=cache, max_workers=4)
    server = start_http_server(service, port=0)
    client = RemoteEvaluationClient(server.endpoint, poll_interval=0.01)
    try:
        yield client, service, store, server
    finally:
        server.close()
        service.close(cancel_queued=True)


def _raw_request(endpoint, path, data=None, headers=None, method=None):
    """urllib round-trip returning (status, parsed JSON body)."""
    request = urllib.request.Request(
        f"{endpoint}{path}",
        data=data,
        headers=headers if headers is not None else {"Content-Type": "application/json"},
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestEndpoints:
    def test_healthz(self, served):
        client, _, store, _ = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["wire_version"] == 1
        assert health["store"] == str(store.root)
        assert health["service"]["closed"] is False

    def test_schemas_endpoint_lists_versions(self, served):
        client, _, _, _ = served
        listing = client.schemas()
        assert listing["wire_version"] == 1
        for name in ("simulate_spec", "sweep_spec", "simulation_report"):
            assert listing["schemas"][name] == [1]
        # sweep_result grew a columnar @2; @1 stays decodable for old peers.
        assert listing["schemas"]["sweep_result"] == [1, 2]
        assert listing["schemas"]["columnar_report_batch"] == [1]

    def test_cache_stats_shape(self, served):
        client, _, _, _ = served
        stats = client.cache_stats()
        assert set(stats["cache"]) >= {"memory_hits", "disk_hits", "misses", "hit_rate"}
        assert stats["store"]["total_artifacts"] == 0
        assert stats["service"]["submitted"] == {}

    def test_evict_endpoint(self, served):
        client, _, store, _ = served
        for i in range(4):
            store.put("report", ArtifactStore.key_for(f"r{i}"), os.urandom(2048))
        result = client.evict(max_bytes=1)
        assert result["removed"] == 4
        assert store.count() == 0


class TestHTTPErrorPaths:
    def test_unknown_endpoint_is_404(self, served):
        _, _, _, server = served
        status, body = _raw_request(server.endpoint, "/nope")
        assert status == 404 and "unknown path" in body["error"]
        status, _ = _raw_request(server.endpoint, "/jobs/x/y/z")
        assert status == 404

    def test_malformed_json_body_is_400(self, served):
        _, _, _, server = served
        status, body = _raw_request(server.endpoint, "/jobs", data=b"{not json")
        assert status == 400 and "not valid JSON" in body["error"]
        status, body = _raw_request(server.endpoint, "/jobs", data=b'["an", "array"]')
        assert status == 400 and "JSON object" in body["error"]

    def test_missing_spec_is_400(self, served):
        _, _, _, server = served
        status, body = _raw_request(server.endpoint, "/jobs", data=b'{"label": "x"}')
        assert status == 400 and "'spec'" in body["error"]

    def test_unknown_schema_name_is_400_with_known_names(self, served):
        _, _, _, server = served
        payload = json.dumps({"spec": {"$schema": "warp_drive@1"}}).encode()
        status, body = _raw_request(server.endpoint, "/jobs", data=payload)
        assert status == 400
        assert "unknown schema" in body["error"] and "sweep_spec" in body["error"]

    def test_unknown_schema_version_is_400_with_known_versions(self, served):
        _, _, _, server = served
        payload = json.dumps({"spec": {"$schema": "sweep_spec@99"}}).encode()
        status, body = _raw_request(server.endpoint, "/jobs", data=payload)
        assert status == 400 and "version" in body["error"]

    def test_non_spec_envelope_is_400(self, served):
        _, _, _, server = served
        payload = json.dumps(
            {"spec": {"$schema": "value@1", "value": {"just": "data"}}}
        ).encode()
        status, body = _raw_request(server.endpoint, "/jobs", data=payload)
        assert status == 400 and "not a job spec" in body["error"]

    def test_unregistered_wire_function_is_400(self, served):
        _, _, _, server = served
        payload = json.dumps(
            {"spec": {"$schema": "callable_spec@1", "function": "rm_rf_slash"}}
        ).encode()
        status, body = _raw_request(server.endpoint, "/jobs", data=payload)
        assert status == 400 and "unknown wire function" in body["error"]

    def test_wrong_content_type_is_415(self, served):
        _, _, _, server = served
        status, body = _raw_request(
            server.endpoint,
            "/jobs",
            data=b"kind=sweep",
            headers={"Content-Type": "application/x-www-form-urlencoded"},
        )
        assert status == 415 and "application/json" in body["error"]

    def test_unacceptable_accept_header_is_406(self, served):
        _, _, _, server = served
        status, body = _raw_request(
            server.endpoint, "/healthz", headers={"Accept": "application/x-pickle"}
        )
        assert status == 406 and "application/json" in body["error"]
        # JSON-compatible Accept values pass
        for accept in ("application/json", "*/*", "text/html, application/*;q=0.9"):
            status, _ = _raw_request(server.endpoint, "/healthz", headers={"Accept": accept})
            assert status == 200, accept

    def test_wire_version_mismatch_is_406(self, served):
        _, _, _, server = served
        status, body = _raw_request(
            server.endpoint, "/healthz", headers={"X-Repro-Wire-Version": "99"}
        )
        assert status == 406 and "wire version" in body["error"]

    def test_oversized_body_is_413(self, tmp_path):
        service = EvaluationService(cache=ReportCache(), max_workers=1)
        server = start_http_server(service, port=0, max_request_bytes=1024)
        try:
            blob = json.dumps({"spec": {"$schema": "value@1", "value": "x" * 4096}}).encode()
            status, body = _raw_request(server.endpoint, "/jobs", data=blob)
            assert status == 413 and "exceeds" in body["error"]
        finally:
            server.close()
            service.close(cancel_queued=True)

    def test_body_skipping_refusals_close_the_connection(self):
        """A 413 is sent before the body is read, so the server must close
        the keep-alive connection instead of parsing the unread body as the
        next request."""
        import http.client

        service = EvaluationService(cache=ReportCache(), max_workers=1)
        server = start_http_server(service, port=0, max_request_bytes=1024)
        try:
            host, port = server.server_address[:2]
            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.putrequest("POST", "/jobs")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", "999999")
            connection.endheaders()  # body intentionally never sent
            response = connection.getresponse()
            assert response.status == 413
            assert response.getheader("Connection") == "close"
            response.read()
            connection.close()
        finally:
            server.close()
            service.close(cancel_queued=True)

    def test_quality_spec_artifact_dir_is_pinned_to_server_store(self, served, monkeypatch):
        """Remote clients cannot aim server-side writes at arbitrary paths:
        the server rewrites quality specs onto its own artifact store."""
        _, service, store, server = served
        captured = {}

        def capture(spec, label=""):
            captured["spec"] = spec
            raise ValueError("captured before submission")

        monkeypatch.setattr(service, "submit_spec", capture)
        payload = json.dumps(
            {
                "spec": {
                    "$schema": "quality_spec@1",
                    "workload": "cifar10",
                    "scheme": "INT8",
                    "artifact_dir": "/definitely/not/allowed",
                }
            }
        ).encode()
        status, _ = _raw_request(server.endpoint, "/jobs", data=payload)
        assert status == 400  # from the capture stub
        assert captured["spec"].artifact_dir == str(store.root)

    def test_cancelled_job_result_fetch(self, served):
        """``?result=1`` on a cancelled job returns its summary, no result."""
        client, service, _, server = served
        blockers = [client.submit("wait_forever", 0.4) for _ in range(4)]
        victim = client.submit("square", 5)
        cancelled = victim.cancel()
        client.wait_all([*blockers, victim], timeout=30)
        status, body = _raw_request(server.endpoint, f"/jobs/{victim.id}?result=1")
        assert status == 200
        if cancelled:
            assert body["status"] == "cancelled"
            assert "result" not in body
            assert "cancel" in body["error"]
        else:  # lost the race benignly: it ran before the cancel arrived
            assert body["status"] == "done" and "result" in body


class TestJobListing:
    def test_status_filter_and_limit(self, served):
        client, _, _, _ = served
        jobs = [client.submit("square", i) for i in range(4)]
        assert client.wait_all(jobs, timeout=30)
        done = client.list_jobs(status="done")
        assert {job.id for job in jobs} <= {job.id for job in done}
        assert client.list_jobs(status=JobStatus.FAILED) == []
        limited = client.list_jobs(status="done", limit=2)
        assert len(limited) == 2
        # limit keeps the most recently submitted matches
        assert [job.id for job in limited] == [job.id for job in done[-2:]]
        assert len(client.list_jobs(limit=0)) == 0

    def test_invalid_filters_rejected(self, served):
        _, _, _, server = served
        status, body = _raw_request(server.endpoint, "/jobs?status=exploded")
        assert status == 400 and "queued" in body["error"]
        status, body = _raw_request(server.endpoint, "/jobs?limit=banana")
        assert status == 400 and "integer" in body["error"]
        status, body = _raw_request(server.endpoint, "/jobs?limit=-1")
        assert status == 400


class TestRemoteJobs:
    def test_named_callable_roundtrip(self, served):
        client, _, _, _ = served
        job = client.submit("square", 9)
        assert job.result(timeout=30) == 81
        assert job.ok and job.done
        assert client.status(job.id) is JobStatus.DONE
        assert client.result(job.id, timeout=30) == 81

    def test_registered_function_object_resolves_to_name(self, served):
        client, _, _, _ = served
        job = client.submit_callable(_module_level_square, args=(7,))
        assert job.result(timeout=30) == 49

    def test_unregistered_callable_rejected_client_side(self, served):
        client, _, _, _ = served
        with pytest.raises(ValueError, match="register_wire_function"):
            client.submit(lambda: 1)  # nothing hits the wire

    def test_failed_job_surfaces_server_error(self, served):
        client, _, _, _ = served
        job = client.submit("boom")
        assert job.wait(30)
        assert job.status is JobStatus.FAILED
        with pytest.raises(JobFailedError, match="boom"):
            job.result()

    def test_unknown_job_raises_keyerror(self, served):
        client, _, _, _ = served
        with pytest.raises(KeyError):
            client.job("job-9999")
        with pytest.raises(KeyError):
            client.cancel("job-9999")

    def test_cancel_pending_job(self, served):
        client, service, _, _ = served
        blockers = [client.submit("wait_forever", 0.5) for _ in range(4)]
        victim = client.submit("square", 5)
        cancelled = victim.cancel()
        assert client.wait_all([*blockers, victim], timeout=30)
        if cancelled:  # won the race: the job must report cancelled, not run
            assert victim.status is JobStatus.CANCELLED
            with pytest.raises(JobFailedError, match="cancel"):
                victim.result()
        else:  # lost the race benignly: it ran before the cancel arrived
            assert victim.result(timeout=30) == 25

    def test_simulation_job_matches_local_run(self, served):
        client, _, _, _ = served
        trace = make_trace(21)
        job = client.submit_simulation(sqdm_config(), trace)
        report = job.result(timeout=120)
        expected = AcceleratorSimulator(sqdm_config()).run_trace(trace)
        assert report.total_cycles == expected.total_cycles
        assert report.total_energy.total_pj == expected.total_energy.total_pj


class TestServerSideSweeps:
    def test_sweep_spec_planned_and_batched_on_server(self, served):
        """One grid submission -> per-case reports + baseline, all planned
        server-side and bit-identical to local simulation."""
        client, service, _, _ = served
        trace = make_trace(41)
        spec = SweepJobSpec(
            base=sqdm_config(),
            grid={"sparsity_threshold": [0.2, 0.4]},
            trace=trace,
            baseline=dense_baseline_config(),
            name="remote-grid",
        )
        outcome = client.submit_sweep(spec).result(timeout=120)
        assert outcome.name == "remote-grid"
        assert outcome.params == [
            {"sparsity_threshold": 0.2},
            {"sparsity_threshold": 0.4},
        ]
        for params, report in zip(outcome.params, outcome.reports):
            expected = AcceleratorSimulator(sqdm_config(**params)).run_trace(trace)
            assert report.total_cycles == expected.total_cycles
        expected_baseline = AcceleratorSimulator(dense_baseline_config()).run_trace(trace)
        assert outcome.baseline.total_cycles == expected_baseline.total_cycles
        # one job submitted, three unique keys simulated
        stats = service.service_stats()
        assert stats["submitted"] == {"sweep": 1}
        assert service.cache.stats.misses == 3

    def test_concurrent_sweeps_from_two_clients_coalesce(self, served):
        """Acceptance: N clients submitting one grid each cost one simulation
        per unique design point, via single-flight + the shared cache."""
        client_a, service, _, server = served
        client_b = RemoteEvaluationClient(server.endpoint, poll_interval=0.01)
        trace = make_trace(42)
        spec = SweepJobSpec(
            base=sqdm_config(),
            grid={"sparsity_threshold": [0.2, 0.4]},
            trace=trace,
            baseline=dense_baseline_config(),
        )
        results: dict[str, object] = {}

        def sweep(name: str, client: RemoteEvaluationClient) -> None:
            results[name] = client.submit_sweep(spec).result(timeout=120)

        threads = [
            threading.Thread(target=sweep, args=("a", client_a)),
            threading.Thread(target=sweep, args=("b", client_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for report_a, report_b in zip(results["a"].reports, results["b"].reports):
            assert report_a.total_cycles == report_b.total_cycles
        # 2 sweeps x 3 requests over 3 unique keys: exactly 3 simulations.
        assert service.cache.stats.misses == 3
        assert service.service_stats()["submitted"] == {"sweep": 2}

    def test_invalid_grid_rejected_before_queueing(self, served):
        client, service, _, _ = served
        with pytest.raises(ValueError, match="sweepable"):
            SweepJobSpec(base=sqdm_config(), grid={"warp_factor": [9]}, trace=make_trace(1))
        # a hand-crafted bad spec is refused by the server with 400
        spec = SweepJobSpec(
            base=sqdm_config(), grid={"sparsity_threshold": [0.2]}, trace=make_trace(1)
        )
        import repro.core.codec as codec

        doc = codec.encode(spec)
        doc["grid"] = {"warp_factor": [9]}
        with pytest.raises(RemoteServiceError, match="sweepable"):
            client._request("POST", "/jobs", {"spec": doc, "label": ""})
        assert service.jobs() == []  # nothing was queued

    def test_unknown_backend_rejected_at_submit(self, served):
        client, service, _, _ = served
        spec = SweepJobSpec(
            base=sqdm_config(),
            grid={"sparsity_threshold": [0.2]},
            trace=make_trace(2),
            backend="warp_drive",
        )
        with pytest.raises(RemoteServiceError, match="backend"):
            client.submit_sweep(spec)
        assert service.jobs() == []


class TestMultiClientCoalescing:
    def test_two_clients_one_server_simulate_each_key_once(self, served):
        """Concurrent remote clients submitting the same individual jobs
        coalesce through the scheduler — one simulation per unique key."""
        client_a, service, _, server = served
        client_b = RemoteEvaluationClient(server.endpoint, poll_interval=0.01)
        traces = [make_trace(seed) for seed in range(2)]
        configs = [sqdm_config(), dense_baseline_config()]
        results: dict[str, list] = {}

        def sweep(name: str, client: RemoteEvaluationClient) -> None:
            jobs = [
                client.submit_simulation(config, trace)
                for config in configs
                for trace in traces
            ]
            results[name] = [job.result(timeout=120) for job in jobs]

        threads = [
            threading.Thread(target=sweep, args=("a", client_a)),
            threading.Thread(target=sweep, args=("b", client_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(results["a"]) == len(results["b"]) == 4
        for report_a, report_b in zip(results["a"], results["b"]):
            assert report_a.total_cycles == report_b.total_cycles
        # 8 submissions, 4 unique (config, trace) keys: single-flight +
        # cache guarantee exactly one simulation per key.
        assert service.cache.stats.misses == 4
        stats = service.service_stats()
        assert stats["submitted"]["simulation"] == 8

    def test_warm_restarted_server_serves_from_store(self, tmp_path):
        """A new server over the same artifact dir re-simulates nothing."""
        root = tmp_path / "shared-store"
        trace = make_trace(31)

        def run_once() -> tuple:
            store = ArtifactStore(root)
            service = EvaluationService(cache=ReportCache(store=store), max_workers=2)
            server = start_http_server(service, port=0)
            client = RemoteEvaluationClient(server.endpoint, poll_interval=0.01)
            try:
                report = client.submit_simulation(sqdm_config(), trace).result(timeout=120)
                return report, service.cache.stats
            finally:
                server.close()
                service.close()

        cold_report, cold_stats = run_once()
        warm_report, warm_stats = run_once()
        assert cold_stats.misses == 1
        assert warm_stats.misses == 0 and warm_stats.disk_hits == 1
        assert warm_report.total_cycles == cold_report.total_cycles


class TestRawJSONWire:
    """Acceptance: nothing on the wire requires unpickling — a sweep can be
    driven end to end with urllib + json alone (the curl contract)."""

    def test_handwritten_sweep_spec_runs_and_returns_plain_json(self, served):
        _, _, _, server = served
        raw_trace = [
            [
                {
                    "$schema": "conv_layer_workload@1",
                    "name": "l0",
                    "in_channels": 4,
                    "out_channels": 4,
                    "kernel_size": 3,
                    "out_height": 4,
                    "out_width": 4,
                    "weight_bits": 4,
                    "act_bits": 4,
                    "channel_sparsity": [0.5, 0.0, 0.9, 0.2],
                }
            ]
        ]
        body = json.dumps(
            {
                "spec": {
                    "$schema": "sweep_spec@1",
                    "base": {"$schema": "accelerator_config@1", "name": "sqdm"},
                    "grid": {"sparsity_threshold": [0.1, 0.3]},
                    "trace": raw_trace,
                    "baseline": {
                        "$schema": "accelerator_config@1",
                        "name": "dense_baseline",
                        "num_dpe": 2,
                        "num_spe": 0,
                    },
                },
                "label": "curl-style",
            }
        ).encode()
        status, summary = _raw_request(server.endpoint, "/jobs", data=body)
        assert status == 201 and summary["kind"] == "sweep"

        deadline = time.monotonic() + 60
        while True:
            status, doc = _raw_request(server.endpoint, f"/jobs/{summary['id']}?result=1")
            if doc["status"] in ("done", "failed", "cancelled"):
                break
            assert time.monotonic() < deadline, "sweep job never finished"
            time.sleep(0.02)
        assert doc["status"] == "done", doc
        result = doc["result"]
        assert result["$schema"] == "sweep_result@2"
        # Cases ride the wire columnar, one single-trace batch per case.
        assert [case["$schema"] for case in result["results"]] == [
            "columnar_report_batch@1"
        ] * 2
        assert result["baseline"]["$schema"] == "columnar_report_batch@1"
        for case_doc in [*result["results"], result["baseline"]]:
            case = codec.decode(case_doc)
            assert case.num_traces == 1
            assert float(case.total_cycles[0]) > 0

    def test_http_and_client_modules_are_pickle_free(self):
        """The serve wire modules must not import pickle or base64 at all."""
        import repro.serve.client as client_module
        import repro.serve.http as http_module

        for module in (http_module, client_module):
            source = open(module.__file__, encoding="utf-8").read()
            assert "import pickle" not in source, module.__name__
            assert "import base64" not in source, module.__name__


class TestRemoteSweeps:
    def test_run_sweep_remote_executor_with_wire_function(self, served):
        client, _, _, server = served
        result = run_sweep(
            _module_level_square, {"x": [2, 3, 4]}, executor="remote", endpoint=server.endpoint
        )
        assert result.values() == [4, 9, 16]

    def test_run_sweep_remote_with_shared_client_and_name(self, served):
        client, _, _, _ = served
        result = run_sweep("square", {"x": [5, 6]}, executor="remote", service=client)
        assert result.values() == [25, 36]

    def test_run_sweep_remote_captures_failures(self, served):
        client, _, _, _ = served
        result = run_sweep(
            _remote_flaky,
            {"i": [0, 1, 2]},
            executor="remote",
            service=client,
            on_error="capture",
        )
        assert [case.ok for case in result.cases] == [True, False, True]
        assert "nope" in str(result.cases[1].error)

    def test_run_sweep_remote_requires_endpoint(self):
        with pytest.raises(ValueError, match="endpoint"):
            run_sweep(_module_level_square, {"x": [1]}, executor="remote")

    def test_run_sweep_remote_rejects_unregistered_fn(self, served):
        client, _, _, _ = served
        captured = []
        with pytest.raises(ValueError, match="register_wire_function"):
            run_sweep(
                lambda i: captured.append(i), {"i": [0]}, executor="remote", service=client
            )


def _remote_flaky(i):
    if i == 1:
        raise RuntimeError("nope")
    return i


register_wire_function("flaky", _remote_flaky)


class TestCLIRemote:
    def test_cli_sweep_against_endpoint_matches_in_process(self, tmp_path, served):
        client, service, _, server = served
        scale = [
            "--workload", "cifar10",
            "--resolution", "8",
            "--sampling-steps", "2",
            "--trace-samples", "1",
            "--reference-samples", "16",
            "--fid-samples", "4",
            "--param", "sparsity_threshold=0.2,0.4",
        ]
        remote_json = tmp_path / "remote.json"
        local_json = tmp_path / "local.json"
        assert cli_main(
            [
                "sweep", *scale,
                "--endpoint", server.endpoint,
                "--json", str(remote_json),
            ]
        ) == 0
        assert cli_main(
            [
                "sweep", *scale,
                "--artifact-dir", str(tmp_path / "local-artifacts"),
                "--json", str(local_json),
            ]
        ) == 0
        remote = json.loads(remote_json.read_text())
        local = json.loads(local_json.read_text())
        assert remote["cases"] == local["cases"], "remote diverged from in-process service"
        assert remote["baseline_cycles"] == local["baseline_cycles"]
        assert remote["endpoint"] == server.endpoint
        assert remote["cache"]["misses"] == 3  # baseline + two cases, cold
        # the whole grid crossed the wire as ONE planned sweep job
        assert remote["cache"]["server"]["service"]["submitted"]["sweep"] == 1

    def test_serve_cli_starts_and_shuts_down(self, tmp_path):
        import repro

        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve.cli",
                "serve",
                "--port", "0",
                "--artifact-dir", str(tmp_path / "artifacts"),
                "--max-bytes", "1000000",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening on http://" in line
            endpoint = line.strip().split("listening on ")[-1]
            health = RemoteEvaluationClient(endpoint, retries=8).health()
            assert health["status"] == "ok"
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


# -- retry backoff: bounded jitter + Retry-After ---------------------------------


class _FakeResponse:
    """Minimal urlopen context manager answering with a fixed JSON body."""

    def __init__(self, payload: bytes = b'{"status": "ok"}'):
        self._payload = payload

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def read(self):
        return self._payload


class TestRetryBackoff:
    """The client's retry schedule must not march a fleet in lockstep: delays
    carry bounded jitter, and a 503's Retry-After sets the delay floor."""

    def _patch_transport(self, monkeypatch, responses):
        """urlopen pops scripted outcomes; sleeps are recorded, not taken."""
        import io
        import urllib.request as urlreq
        from email.message import Message

        sleeps = []
        calls = {"count": 0}

        def fake_urlopen(request, timeout=None):
            calls["count"] += 1
            outcome = responses[min(calls["count"], len(responses)) - 1]
            if isinstance(outcome, Exception):
                raise outcome
            if outcome == "ok":
                return _FakeResponse()
            # an int (+ optional Retry-After) scripts an HTTPError
            code, retry_after = outcome
            headers = Message()
            if retry_after is not None:
                headers["Retry-After"] = str(retry_after)
            raise urllib.error.HTTPError(
                request.full_url, code, "busy", headers, io.BytesIO(b'{"error": "overloaded"}')
            )

        monkeypatch.setattr(urlreq, "urlopen", fake_urlopen)
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda seconds: sleeps.append(seconds)
        )
        return sleeps, calls

    def test_503_retries_honor_retry_after_floor(self, monkeypatch):
        sleeps, calls = self._patch_transport(
            monkeypatch, [(503, "0.4"), (503, "0.4"), "ok"]
        )
        client = RemoteEvaluationClient("http://fleet", retries=5, backoff=0.01)
        assert client.health() == {"status": "ok"}
        assert calls["count"] == 3
        assert len(sleeps) == 2
        assert all(delay >= 0.4 for delay in sleeps), sleeps

    def test_503_without_retry_after_uses_jittered_backoff(self, monkeypatch):
        sleeps, calls = self._patch_transport(monkeypatch, [(503, None), "ok"])
        client = RemoteEvaluationClient(
            "http://fleet", retries=3, backoff=0.1, jitter=0.5, max_backoff=5.0
        )
        assert client.health() == {"status": "ok"}
        assert len(sleeps) == 1
        # attempt 0: base 0.1, stretched into [0.1, 0.15] by bounded jitter
        assert 0.1 <= sleeps[0] <= 0.15 + 1e-9, sleeps

    def test_503_exhaustion_surfaces_server_error(self, monkeypatch):
        self._patch_transport(monkeypatch, [(503, "0.1")] * 4)
        client = RemoteEvaluationClient("http://fleet", retries=3, backoff=0.01)
        with pytest.raises(RemoteServiceError, match="503"):
            client.health()

    def test_post_retries_on_503_but_not_on_dropped_connection(self, monkeypatch):
        # 503 means the server did no work: POSTs retry.
        sleeps, calls = self._patch_transport(monkeypatch, [(503, "0.2"), "ok"])
        client = RemoteEvaluationClient("http://fleet", retries=4, backoff=0.01)
        assert client._request("POST", "/jobs", {"spec": {}}) == {"status": "ok"}
        assert calls["count"] == 2
        # A dropped connection mid-POST may have enqueued the job: no retry.
        sleeps2, calls2 = self._patch_transport(
            monkeypatch, [urllib.error.URLError(OSError("connection reset"))] * 3
        )
        with pytest.raises(RemoteServiceError, match="1 attempt"):
            client._request("POST", "/jobs", {"spec": {}})
        assert calls2["count"] == 1 and sleeps2 == []

    def test_transport_retry_delays_are_jittered_and_capped(self, monkeypatch):
        import random

        sleeps, _ = self._patch_transport(
            monkeypatch, [urllib.error.URLError(ConnectionRefusedError())] * 8
        )
        client = RemoteEvaluationClient(
            "http://fleet", retries=8, backoff=0.1, jitter=0.5, max_backoff=0.8
        )
        client._rng = random.Random(1234)  # deterministic but non-degenerate jitter
        with pytest.raises(RemoteServiceError, match="8 attempt"):
            client.health()
        assert len(sleeps) == 8
        for attempt, delay in enumerate(sleeps):
            base = min(0.1 * 2**attempt, 0.8)
            assert base - 1e-9 <= delay <= base * 1.5 + 1e-9, (attempt, delay)
        # jitter actually varies the schedule (no lockstep)
        ratios = {round(delay / min(0.1 * 2**i, 0.8), 6) for i, delay in enumerate(sleeps)}
        assert len(ratios) > 1, ratios

    def test_retry_after_parse_rules(self):
        from repro.serve.client import RETRY_AFTER_CAP, _parse_retry_after

        assert _parse_retry_after(None) is None
        assert _parse_retry_after("2.5") == 2.5
        assert _parse_retry_after("  7 ") == 7.0
        assert _parse_retry_after("-3") is None
        assert _parse_retry_after("Wed, 21 Oct 2026 07:28:00 GMT") is None
        assert _parse_retry_after("86400") == RETRY_AFTER_CAP


def _fetch_metrics(endpoint, headers=None):
    """Raw GET /metrics returning (status, content_type, body text)."""
    request = urllib.request.Request(
        f"{endpoint}/metrics", headers=headers or {}, method="GET"
    )
    with urllib.request.urlopen(request) as response:
        return response.status, response.headers.get("Content-Type"), response.read().decode(
            "utf-8"
        )


class TestMetricsAndTop:
    """GET /metrics (Prometheus text) and the repro top dashboard."""

    def _run_sweep(self, client, seed=47):
        spec = SweepJobSpec(
            base=sqdm_config(),
            grid={"sparsity_threshold": [0.2, 0.4]},
            trace=make_trace(seed),
            baseline=dense_baseline_config(),
            name="metrics-sweep",
        )
        return client.submit_sweep(spec).result(timeout=120)

    def test_metrics_is_prometheus_text(self, served):
        client, _, _, server = served
        self._run_sweep(client)
        status, content_type, text = _fetch_metrics(server.endpoint)
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        # every layer of the stack reports at least one family
        for family in (
            "repro_service_jobs_submitted_total",
            "repro_service_jobs_completed_total",
            "repro_service_job_duration_seconds",
            "repro_service_queue_depth",
            "repro_scheduler_kernel_calls_total",
            "repro_scheduler_traces_simulated_total",
            "repro_cache_misses_total",
            "repro_kernel_duration_seconds",
            "repro_http_requests_total",
        ):
            assert f"# TYPE {family} " in text, family
        # histograms expose the full bucket/sum/count series
        assert 'repro_service_job_duration_seconds_bucket{kind="sweep",le="+Inf"}' in text
        assert "repro_service_job_duration_seconds_sum" in text

    def test_metrics_bypasses_json_content_negotiation(self, served):
        """Prometheus scrapers send text Accept headers; /metrics must not 406."""
        _, _, _, server = served
        status, content_type, _ = _fetch_metrics(
            server.endpoint, headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert content_type.startswith("text/plain")

    def test_metrics_reconcile_with_service_stats(self, served):
        """Counter deltas across one sweep match the per-instance stats exactly
        (the registry is process-wide, so reconcile on before/after deltas)."""
        from repro.serve.top import parse_prometheus, sample_total

        client, service, _, server = served

        def scrape():
            return parse_prometheus(_fetch_metrics(server.endpoint)[2])

        before = scrape()
        self._run_sweep(client)
        after = scrape()

        def delta(name, **match):
            return sample_total(after, name, **match) - sample_total(before, name, **match)

        stats = service.service_stats()
        assert stats["submitted"] == {"sweep": 1}
        assert delta("repro_service_jobs_submitted_total", kind="sweep") == 1
        assert delta("repro_service_jobs_completed_total", kind="sweep", status="done") == 1
        # 2 grid points + 1 baseline = 3 unique design points, all cold
        assert delta("repro_cache_misses_total") == service.cache.stats.misses == 3
        assert delta("repro_scheduler_traces_simulated_total") == 3
        assert stats["scheduler"]["traces_simulated"] == 3
        assert delta("repro_scheduler_kernel_calls_total") >= 1
        assert delta("repro_kernel_duration_seconds_count") >= 1
        assert delta("repro_http_requests_total", method="GET", status="200") > 0

    def test_job_payloads_carry_monotonic_timing(self, served):
        client, _, _, server = served
        self._run_sweep(client)
        _, payload = _raw_request(server.endpoint, "/jobs")
        (job,) = payload["jobs"]
        assert job["status"] == "done"
        assert job["queued_seconds"] >= 0.0
        assert job["running_seconds"] > 0.0

    def test_top_once_renders_live_dashboard(self, served):
        import io

        from repro.serve.top import run_top

        client, _, _, server = served
        self._run_sweep(client)
        stream = io.StringIO()
        assert run_top(server.endpoint, once=True, stream=stream) == 0
        frame = stream.getvalue()
        assert "queue depth" in frame
        assert "coalescing ratio" in frame
        assert "cache hit rate" in frame
        assert "job latency p50" in frame and "p95" in frame and "p99" in frame
        assert "p50 -" not in frame  # completed jobs -> real latency estimates
        assert "metrics-sweep" in frame  # recent-jobs table shows the label

    def test_cli_top_once(self, served, capsys):
        client, _, _, server = served
        self._run_sweep(client)
        assert cli_main(["top", "--endpoint", server.endpoint, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "queue depth" in out

    def test_top_unreachable_endpoint_fails_cleanly(self, capsys):
        import io

        from repro.serve.top import run_top

        assert run_top("http://127.0.0.1:9", once=True, stream=io.StringIO()) == 1
        assert "cannot reach" in capsys.readouterr().err
