"""Tests for the HTTP front end and the remote evaluation client."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.accelerator import AcceleratorSimulator, dense_baseline_config, sqdm_config
from repro.core.artifacts import ArtifactStore
from repro.core.experiments import run_sweep
from repro.core.report_cache import ReportCache
from repro.serve import (
    EvaluationService,
    JobFailedError,
    JobStatus,
    RemoteEvaluationClient,
    RemoteServiceError,
    start_http_server,
)
from repro.serve.cli import main as cli_main

from test_serve import _module_level_boom, _module_level_square, make_trace


@pytest.fixture()
def served(tmp_path):
    """A live HTTP server over a fresh service + artifact store."""
    store = ArtifactStore(tmp_path / "artifacts")
    cache = ReportCache(store=store)
    service = EvaluationService(cache=cache, max_workers=4)
    server = start_http_server(service, port=0)
    client = RemoteEvaluationClient(server.endpoint, poll_interval=0.01)
    try:
        yield client, service, store, server
    finally:
        server.close()
        service.close(cancel_queued=True)


def _module_level_wait_forever(seconds):
    time.sleep(seconds)
    return "done"


class TestEndpoints:
    def test_healthz(self, served):
        client, _, store, _ = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["store"] == str(store.root)
        assert health["service"]["closed"] is False

    def test_cache_stats_shape(self, served):
        client, _, _, _ = served
        stats = client.cache_stats()
        assert set(stats["cache"]) >= {"memory_hits", "disk_hits", "misses", "hit_rate"}
        assert stats["store"]["total_artifacts"] == 0
        assert stats["service"]["submitted"] == {}

    def test_unknown_paths_and_kinds(self, served):
        client, _, _, server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.endpoint}/nope")
        assert excinfo.value.code == 404
        with pytest.raises(RemoteServiceError, match="unknown job kind"):
            client._submit("warp", (None, (), {}), "bad")
        with pytest.raises(RemoteServiceError, match="payload"):
            client._request("POST", "/jobs", {"kind": "callable"})
        with pytest.raises(RemoteServiceError, match=r"bad simulation job payload.*HTTP 400"):
            client._submit("simulation", {"trace": []}, "no-config")  # missing 'config'
        with pytest.raises(ValueError, match="picklable"):
            client.submit(lambda: 1)  # rejected client-side, nothing hits the wire

    def test_evict_endpoint(self, served):
        client, _, store, _ = served
        for i in range(4):
            store.put("report", ArtifactStore.key_for(f"r{i}"), os.urandom(2048))
        result = client.evict(max_bytes=1)
        assert result["removed"] == 4
        assert store.count() == 0


class TestRemoteJobs:
    def test_callable_roundtrip(self, served):
        client, _, _, _ = served
        job = client.submit(_module_level_square, 9)
        assert job.result(timeout=30) == 81
        assert job.ok and job.done
        assert client.status(job.id) is JobStatus.DONE
        assert client.result(job.id, timeout=30) == 81

    def test_failed_job_surfaces_server_error(self, served):
        client, _, _, _ = served
        job = client.submit(_module_level_boom)
        assert job.wait(30)
        assert job.status is JobStatus.FAILED
        with pytest.raises(JobFailedError, match="boom"):
            job.result()

    def test_unknown_job_raises_keyerror(self, served):
        client, _, _, _ = served
        with pytest.raises(KeyError):
            client.job("job-9999")
        with pytest.raises(KeyError):
            client.cancel("job-9999")

    def test_jobs_listing(self, served):
        client, _, _, _ = served
        submitted = [client.submit(_module_level_square, i) for i in range(3)]
        assert client.wait_all(submitted, timeout=30)
        listed = {job.id for job in client.jobs()}
        assert {job.id for job in submitted} <= listed

    def test_cancel_pending_job(self, served):
        client, service, _, _ = served
        blockers = [client.submit(_module_level_wait_forever, 0.5) for _ in range(4)]
        victim = client.submit(_module_level_square, 5)
        cancelled = victim.cancel()
        assert client.wait_all([*blockers, victim], timeout=30)
        if cancelled:  # won the race: the job must report cancelled, not run
            assert victim.status is JobStatus.CANCELLED
            with pytest.raises(JobFailedError, match="cancel"):
                victim.result()
        else:  # lost the race benignly: it ran before the cancel arrived
            assert victim.result(timeout=30) == 25

    def test_simulation_job_matches_local_run(self, served):
        client, _, _, _ = served
        trace = make_trace(21)
        job = client.submit_simulation(sqdm_config(), trace)
        report = job.result(timeout=120)
        expected = AcceleratorSimulator(sqdm_config()).run_trace(trace)
        assert report.total_cycles == expected.total_cycles
        assert report.total_energy.total_pj == expected.total_energy.total_pj


class TestMultiClientCoalescing:
    def test_two_clients_one_server_simulate_each_key_once(self, served):
        """Acceptance: concurrent remote clients submitting the same sweep
        coalesce through the scheduler — one simulation per unique key."""
        client_a, service, _, server = served
        client_b = RemoteEvaluationClient(server.endpoint, poll_interval=0.01)
        traces = [make_trace(seed) for seed in range(2)]
        configs = [sqdm_config(), dense_baseline_config()]
        results: dict[str, list] = {}

        def sweep(name: str, client: RemoteEvaluationClient) -> None:
            jobs = [
                client.submit_simulation(config, trace)
                for config in configs
                for trace in traces
            ]
            results[name] = [job.result(timeout=120) for job in jobs]

        threads = [
            threading.Thread(target=sweep, args=("a", client_a)),
            threading.Thread(target=sweep, args=("b", client_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(results["a"]) == len(results["b"]) == 4
        for report_a, report_b in zip(results["a"], results["b"]):
            assert report_a.total_cycles == report_b.total_cycles
        # 8 submissions, 4 unique (config, trace) keys: single-flight +
        # cache guarantee exactly one simulation per key.
        assert service.cache.stats.misses == 4
        stats = service.service_stats()
        assert stats["submitted"]["simulation"] == 8

    def test_warm_restarted_server_serves_from_store(self, tmp_path):
        """A new server over the same artifact dir re-simulates nothing."""
        root = tmp_path / "shared-store"
        trace = make_trace(31)

        def run_once() -> tuple:
            store = ArtifactStore(root)
            service = EvaluationService(cache=ReportCache(store=store), max_workers=2)
            server = start_http_server(service, port=0)
            client = RemoteEvaluationClient(server.endpoint, poll_interval=0.01)
            try:
                report = client.submit_simulation(sqdm_config(), trace).result(timeout=120)
                return report, service.cache.stats
            finally:
                server.close()
                service.close()

        cold_report, cold_stats = run_once()
        warm_report, warm_stats = run_once()
        assert cold_stats.misses == 1
        assert warm_stats.misses == 0 and warm_stats.disk_hits == 1
        assert warm_report.total_cycles == cold_report.total_cycles


class TestRemoteSweeps:
    def test_run_sweep_remote_executor(self, served):
        client, _, _, server = served
        result = run_sweep(
            _module_level_square, {"x": [2, 3, 4]}, executor="remote", endpoint=server.endpoint
        )
        assert result.values() == [4, 9, 16]

    def test_run_sweep_remote_with_shared_client(self, served):
        client, _, _, _ = served
        result = run_sweep(
            _module_level_square, {"x": [5, 6]}, executor="remote", service=client
        )
        assert result.values() == [25, 36]

    def test_run_sweep_remote_captures_failures(self, served):
        client, _, _, _ = served
        result = run_sweep(
            _remote_flaky,
            {"i": [0, 1, 2]},
            executor="remote",
            service=client,
            on_error="capture",
        )
        assert [case.ok for case in result.cases] == [True, False, True]
        assert "nope" in str(result.cases[1].error)

    def test_run_sweep_remote_requires_endpoint(self):
        with pytest.raises(ValueError, match="endpoint"):
            run_sweep(_module_level_square, {"x": [1]}, executor="remote")

    def test_run_sweep_remote_rejects_unpicklable_fn(self, served):
        client, _, _, _ = served
        captured = []
        with pytest.raises(ValueError, match="picklable case function"):
            run_sweep(
                lambda i: captured.append(i), {"i": [0]}, executor="remote", service=client
            )


def _remote_flaky(i):
    if i == 1:
        raise RuntimeError("nope")
    return i


class TestCLIRemote:
    def test_cli_sweep_against_endpoint_matches_in_process(self, tmp_path, served):
        client, service, _, server = served
        scale = [
            "--workload", "cifar10",
            "--resolution", "8",
            "--sampling-steps", "2",
            "--trace-samples", "1",
            "--reference-samples", "16",
            "--fid-samples", "4",
            "--param", "sparsity_threshold=0.2,0.4",
        ]
        remote_json = tmp_path / "remote.json"
        local_json = tmp_path / "local.json"
        assert cli_main(
            [
                "sweep", *scale,
                "--endpoint", server.endpoint,
                "--json", str(remote_json),
            ]
        ) == 0
        assert cli_main(
            [
                "sweep", *scale,
                "--artifact-dir", str(tmp_path / "local-artifacts"),
                "--json", str(local_json),
            ]
        ) == 0
        remote = json.loads(remote_json.read_text())
        local = json.loads(local_json.read_text())
        assert remote["cases"] == local["cases"], "remote diverged from in-process service"
        assert remote["baseline_cycles"] == local["baseline_cycles"]
        assert remote["endpoint"] == server.endpoint
        assert remote["cache"]["misses"] == 3  # baseline + two cases, cold
        assert remote["cache"]["server"]["service"]["submitted"]["simulation"] == 3

    def test_serve_cli_starts_and_shuts_down(self, tmp_path):
        import repro

        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve.cli",
                "serve",
                "--port", "0",
                "--artifact-dir", str(tmp_path / "artifacts"),
                "--max-bytes", "1000000",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening on http://" in line
            endpoint = line.strip().split("listening on ")[-1]
            health = RemoteEvaluationClient(endpoint, retries=8).health()
            assert health["status"] == "ok"
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
