"""Property tests for columnar lazy-materialized reports (PR 9).

The contract under test: a :class:`ColumnarReportBatch` produced by the
vectorized kernel is a *view* of the same results the eager assembly path
produced — materialized reports must be **bitwise** identical to a solo run
of the same (config, trace), at any batch shape, including the all-dense /
all-sparse datapath edges and empty traces.  On top of that, batches must
survive the codec, the artifact store and the report cache unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import AcceleratorSimulator, sqdm_config
from repro.accelerator.backends import vectorized
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.controller import LayerExecutionResult
from repro.accelerator.energy import EnergyBreakdown
from repro.accelerator.pe import ChannelGroupResult
from repro.accelerator.simulator import StepResult
from repro.accelerator.workload import ConvLayerWorkload
from repro.core import codec
from repro.core.artifacts import ArtifactStore
from repro.core.columnar import ColumnarReportBatch, ensure_report
from repro.core.report_cache import ReportCache


def random_trace(rng: np.random.Generator, steps: int, layers: int, channels: int = 12):
    """A random trace with mixed per-channel sparsity."""
    return [
        [
            ConvLayerWorkload(
                name=f"s{s}l{n}",
                in_channels=channels,
                out_channels=int(rng.integers(4, 17)),
                kernel_size=3,
                out_height=int(rng.integers(2, 9)),
                out_width=int(rng.integers(2, 9)),
                weight_bits=int(rng.choice([4, 8, 16])),
                act_bits=int(rng.choice([4, 8, 16])),
                channel_sparsity=rng.uniform(0.0, 1.0, size=channels),
            )
            for n in range(layers)
        ]
        for s in range(steps)
    ]


def uniform_trace(value: float, steps: int = 2, layers: int = 2, channels: int = 8):
    """Every channel at the same sparsity — drives all-dense/all-sparse edges."""
    return [
        [
            ConvLayerWorkload(
                name=f"s{s}l{n}",
                in_channels=channels,
                out_channels=8,
                kernel_size=3,
                out_height=4,
                out_width=4,
                channel_sparsity=np.full(channels, value),
            )
            for n in range(layers)
        ]
        for s in range(steps)
    ]


def random_grid(seed: int):
    """A small random (config x trace) grid with shared and empty traces."""
    rng = np.random.default_rng(seed)
    configs = [
        sqdm_config(),
        sqdm_config(sparsity_threshold=0.9),
        AcceleratorConfig(name="wide", num_dpe=2, num_spe=2, sparsity_update_period=2),
    ]
    shared = random_trace(rng, steps=2, layers=2)
    entries = []
    for i, config in enumerate(configs):
        traces = [shared, random_trace(rng, steps=int(rng.integers(1, 4)), layers=2)]
        if i == 1:
            traces.append([])  # zero-step trace inside a live group
        entries.append((config, traces))
    return entries


def solo_report(config, trace):
    return AcceleratorSimulator(config, backend="vectorized").run_trace(trace)


class TestBitwiseIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lazy_views_match_solo_runs_bitwise(self, seed):
        entries = random_grid(seed)
        batch = vectorized.run_config_traces_columnar(entries)
        flat = 0
        for config, traces in entries:
            for trace in traces:
                lazy = batch.report_at(flat)
                assert codec.dumps(lazy) == codec.dumps(solo_report(config, trace))
                flat += 1

    @pytest.mark.parametrize("seed", [0, 3])
    def test_bulk_materialization_matches_per_trace_path(self, seed):
        entries = random_grid(seed)
        bulk_lists = vectorized.run_config_traces_columnar(entries).report_lists()
        lazy = vectorized.run_config_traces_columnar(entries)
        flat = 0
        for reports in bulk_lists:
            for report in reports:
                assert codec.dumps(report) == codec.dumps(lazy.report_at(flat))
                flat += 1

    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_all_dense_and_all_sparse_traces_bitwise(self, value):
        config = sqdm_config(sparsity_threshold=0.5)
        trace = uniform_trace(value)
        batch = vectorized.run_config_traces_columnar([(config, [trace])])
        assert codec.dumps(batch.report_at(0)) == codec.dumps(solo_report(config, trace))

    def test_empty_trace_materializes(self):
        config = sqdm_config()
        batch = vectorized.run_config_traces_columnar([(config, [[]])])
        report = batch.report(0, 0)
        assert report.step_results == []
        assert report.total_cycles == 0.0
        assert codec.dumps(report) == codec.dumps(solo_report(config, []))

    def test_zero_entry_batch(self):
        batch = vectorized.run_config_traces_columnar([])
        assert batch.num_configs == 0
        assert batch.num_traces == 0
        assert batch.report_lists() == []

    def test_slice_trace_is_bitwise_and_standalone(self):
        entries = random_grid(4)
        batch = vectorized.run_config_traces_columnar(entries)
        for flat in range(batch.num_traces):
            piece = batch.slice_trace(flat)
            assert piece.num_traces == 1
            assert codec.dumps(piece.report_at(0)) == codec.dumps(batch.report_at(flat))
            # Standalone: arrays are copies, not views of the parent batch.
            assert piece.layer_cycles.base is None
            assert piece == codec.decode(codec.encode(piece))

    def test_materialization_is_memoized(self):
        batch = vectorized.run_config_traces_columnar(random_grid(5))
        assert batch.report_at(0) is batch.report_at(0)
        listed = batch.report_lists()
        assert listed[0][0] is batch.report_at(0)


class TestReferenceOracle:
    def test_columnar_matches_reference_backend(self):
        rng = np.random.default_rng(11)
        config = sqdm_config()
        trace = random_trace(rng, steps=2, layers=2)
        lazy = vectorized.run_config_traces_columnar([(config, [trace])]).report_at(0)
        oracle = AcceleratorSimulator(config, backend="reference").run_trace(trace)
        assert lazy.total_cycles == pytest.approx(oracle.total_cycles, rel=1e-9)
        assert lazy.total_energy.total_pj == pytest.approx(oracle.total_energy.total_pj, rel=1e-9)


class TestAggregates:
    def test_array_aggregates_match_materialized_reports(self):
        entries = random_grid(6)
        batch = vectorized.run_config_traces_columnar(entries)
        reports = [r for reports in batch.report_lists() for r in reports]
        assert batch.total_cycles.tolist() == [r.total_cycles for r in reports]
        np.testing.assert_allclose(
            batch.total_energy_pj,
            [r.total_energy.total_pj for r in reports],
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            batch.mac_skip_fraction,
            [r.mac_skip_fraction for r in reports],
            rtol=1e-12,
        )

    def test_batch_equality_and_validation(self):
        batch = vectorized.run_config_traces_columnar(random_grid(7))
        other = vectorized.run_config_traces_columnar(random_grid(7))
        assert batch == other
        assert batch != vectorized.run_config_traces_columnar(random_grid(8))
        with pytest.raises(ValueError):
            ColumnarReportBatch(
                config_names=["a"],
                clock_ghz=np.array([1.0]),
                traces_per_config=np.array([1]),
                trace_steps=np.array([1]),
                step_sizes=np.array([2]),
                layer_names=["x"],  # one name for two entries -> shape error
                layer_cycles=np.zeros(2),
                total_macs=np.zeros(2),
                executed_macs=np.zeros(2),
                dense_channels=np.zeros(2, dtype=np.int64),
                sparse_channels=np.zeros(2, dtype=np.int64),
                dense_cycles=np.zeros(2),
                sparse_cycles=np.zeros(2),
                layer_energy=np.zeros((2, 7)),
                step_totals=np.zeros((1, 8)),
                trace_totals=np.zeros((1, 8)),
                detector_updates=np.zeros(1, dtype=np.int64),
                detector_channels=np.zeros(1, dtype=np.int64),
            )

    def test_ensure_report_contract(self):
        batch = vectorized.run_config_traces_columnar(random_grid(9))
        single = batch.slice_trace(0)
        report = ensure_report(single)
        assert report is single.report_at(0)
        assert ensure_report(report) is report
        with pytest.raises(ValueError):
            ensure_report(batch)  # multi-trace batches are not one report


class TestRoundTrips:
    def test_codec_roundtrip_batch(self):
        batch = vectorized.run_config_traces_columnar(random_grid(10))
        assert codec.roundtrip_equal(batch)
        decoded = codec.loads(codec.dumps(batch))
        assert decoded == batch
        # Decoded batches materialize to the same bits.
        assert codec.dumps(decoded.report_at(0)) == codec.dumps(batch.report_at(0))

    def test_artifact_store_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        batch = vectorized.run_config_traces_columnar(random_grid(12))
        store.put("report", "batch-key", batch)
        assert store.get("report", "batch-key") == batch

    def test_report_cache_stores_columnar_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cache = ReportCache(max_entries=8, store=store)
        config = sqdm_config()
        trace = uniform_trace(0.5, steps=1, layers=1)
        batch = vectorized.run_config_traces_columnar([(config, [trace])])
        key = ReportCache.key(config, trace, None, "vectorized")
        cache.insert_key(key, batch.slice_trace(0))
        raw = cache.lookup_key(key, materialize=False)
        assert isinstance(raw, ColumnarReportBatch)
        assert cache.lookup_key(key) == batch.report_at(0)
        # The disk tier serves (and re-promotes) the columnar entry too.
        warm = ReportCache(max_entries=8, store=store)
        assert warm.lookup_key(key) == batch.report_at(0)
        assert isinstance(warm.lookup_key(key, materialize=False), ColumnarReportBatch)

    def test_report_cache_rejects_multi_trace_batches(self):
        cache = ReportCache(max_entries=4)
        batch = vectorized.run_config_traces_columnar(random_grid(13))
        assert batch.num_traces > 1
        with pytest.raises(TypeError):
            cache.insert_key(("a", "b", "c", "d"), batch)


class TestHotPathHygiene:
    def test_hops_cache_is_bounded(self):
        vectorized._HOPS_CACHE.clear()
        from repro.accelerator.energy import EnergyTable

        table = EnergyTable()
        shapes = [(d, s) for d in range(1, 9) for s in range(1, 7)]
        assert len(shapes) > vectorized._HOPS_CACHE_MAX
        for num_dpe, num_spe in shapes:
            config = AcceleratorConfig(
                name=f"d{num_dpe}s{num_spe}", num_dpe=num_dpe, num_spe=num_spe
            )
            vectorized._config_hops(config, table)
        assert len(vectorized._HOPS_CACHE) <= vectorized._HOPS_CACHE_MAX
        # Most-recent shapes survive (LRU evicts from the front).
        assert shapes[-1] in vectorized._HOPS_CACHE

    @pytest.mark.parametrize(
        "cls", [EnergyBreakdown, ChannelGroupResult, LayerExecutionResult, StepResult]
    )
    def test_hot_result_classes_are_slotted(self, cls):
        if cls is EnergyBreakdown:
            instance = EnergyBreakdown()
        elif cls is ChannelGroupResult:
            instance = ChannelGroupResult(
                pe_name="dpe0", mode="dense", cycles=1.0, energy=EnergyBreakdown(),
                macs_executed=1.0, macs_skipped=0.0, input_bytes=1.0, weight_bytes=1.0,
                output_bytes=1.0, num_channels=1,
            )
        elif cls is LayerExecutionResult:
            instance = LayerExecutionResult(
                layer_name="l", cycles=1.0, energy=EnergyBreakdown(), total_macs=1.0,
                executed_macs=1.0, dense_channels=1, sparse_channels=0,
                pe_results=[], dense_cycles=1.0, sparse_cycles=0.0,
            )
        else:
            instance = StepResult(
                time_step=0, cycles=1.0, energy=EnergyBreakdown(), layer_results=[]
            )
        assert not hasattr(instance, "__dict__")
        with pytest.raises(AttributeError):
            instance.not_a_field = 1
        # The codec still round-trips slotted instances.
        assert codec.roundtrip_equal(instance)
