"""Tests for the benchmark harness (``repro bench``) and its regression gate."""

from __future__ import annotations

import json

import pytest

import repro.core.bench as bench_module
from repro.core.bench import (
    BENCH_SCHEMA_VERSION,
    BenchResult,
    BenchWorkload,
    bench_grid,
    bench_traces,
    compare_to_baseline,
    run_bench,
)
from repro.serve.cli import main as cli_main


def tiny_workload() -> BenchWorkload:
    return BenchWorkload(num_configs=2, num_traces=2, steps=1, layers=1, channels=4, repeats=1)


def make_payload(entries_per_calib: float = 100.0, wall_clock_calib: float = 0.5) -> dict:
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "metrics": {
            "sim_entries_per_calib": entries_per_calib,
            "sweep_wall_clock_calib": wall_clock_calib,
        },
    }


class TestBenchHarness:
    def test_run_bench_smoke(self, monkeypatch):
        """A (shrunken) quick run produces every metric, JSON-serializable."""
        monkeypatch.setattr(BenchWorkload, "quick", classmethod(lambda cls: tiny_workload()))
        result = run_bench(quick=True)
        assert set(result.metrics) == {
            "calibration_score",
            "sim_entries_per_sec",
            "sweep_wall_clock_s",
            "per_config_sweep_wall_clock_s",
            "cross_config_speedup",
            "report_assembly_entries_per_sec",
            "sweep_peak_alloc_mb",
            "service_jobs_per_sec",
            "service_job_latency_p50_s",
            "service_job_latency_p95_s",
            "sim_entries_per_calib",
            "sweep_wall_clock_calib",
        }
        assert all(value > 0 for value in result.metrics.values())
        payload = result.as_dict()
        assert payload["bench_schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["workload"]["num_configs"] == 2
        json.dumps(payload)  # BENCH_<n>.json must be plain JSON

    def test_grid_and_traces_are_deterministic(self):
        workload = tiny_workload()
        first, second = bench_grid(workload), bench_grid(workload)
        assert [c.name for c in first] == [c.name for c in second]
        assert len(first) == workload.num_configs
        assert {(c.num_dpe, c.num_spe) for c in bench_grid(BenchWorkload())} == {
            (1, 1), (1, 2), (2, 1), (2, 2)
        }
        traces_a, traces_b = bench_traces(workload), bench_traces(workload)
        assert len(traces_a) == workload.num_traces
        for trace_a, trace_b in zip(traces_a, traces_b):
            for step_a, step_b in zip(trace_a, trace_b):
                for w_a, w_b in zip(step_a, step_b):
                    assert (w_a.channel_sparsity == w_b.channel_sparsity).all()

    def test_workload_entry_count(self):
        workload = BenchWorkload(num_configs=3, num_traces=2, steps=4, layers=5)
        assert workload.entries == 3 * 2 * 4 * 5


class TestRegressionGate:
    def test_no_findings_when_within_tolerance(self):
        baseline = make_payload(100.0, 0.5)
        current = make_payload(90.0, 0.55)  # -10% / +10%, inside 15%
        assert compare_to_baseline(current, baseline) == []

    def test_higher_is_better_metric_fails_on_drop(self):
        findings = compare_to_baseline(make_payload(50.0, 0.5), make_payload(100.0, 0.5))
        assert [f.metric for f in findings] == ["sim_entries_per_calib"]
        assert findings[0].change == pytest.approx(-0.5)
        assert "baseline" in findings[0].describe()

    def test_lower_is_better_metric_fails_on_rise(self):
        findings = compare_to_baseline(make_payload(100.0, 1.0), make_payload(100.0, 0.5))
        assert [f.metric for f in findings] == ["sweep_wall_clock_calib"]

    def test_improvements_never_fail(self):
        # 10x faster on both axes: large drift, good direction
        assert compare_to_baseline(make_payload(1000.0, 0.05), make_payload(100.0, 0.5)) == []

    def test_missing_metrics_are_skipped(self):
        baseline = {"metrics": {"sim_entries_per_calib": 100.0}}  # old baseline
        current = make_payload(10.0, 99.0)
        findings = compare_to_baseline(current, baseline)
        assert [f.metric for f in findings] == ["sim_entries_per_calib"]

    def test_tolerance_is_configurable(self):
        baseline, current = make_payload(100.0, 0.5), make_payload(80.0, 0.5)
        assert compare_to_baseline(current, baseline, tolerance=0.25) == []
        assert len(compare_to_baseline(current, baseline, tolerance=0.1)) == 1


class TestBenchCLI:
    @pytest.fixture()
    def canned_bench(self, monkeypatch):
        """Make ``repro bench`` instant: return a canned result, no timing."""

        def fake_run_bench(quick=True, seed=0):
            return BenchResult(
                metrics={
                    "sim_entries_per_calib": 100.0,
                    "sweep_wall_clock_calib": 0.5,
                    "cross_config_speedup": 3.5,
                },
                workload=tiny_workload().as_dict(),
                quick=quick,
            )

        monkeypatch.setattr(bench_module, "run_bench", fake_run_bench)

    def test_bench_writes_json_payload(self, canned_bench, tmp_path):
        out = tmp_path / "bench.json"
        assert cli_main(["bench", "--quick", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["metrics"]["cross_config_speedup"] == 3.5
        assert payload["quick"] is True

    def test_bench_gate_passes_against_equal_baseline(self, canned_bench, tmp_path):
        baseline = tmp_path / "BENCH.json"
        baseline.write_text(json.dumps(make_payload(100.0, 0.5)))
        assert cli_main(["bench", "--quick", "--baseline", str(baseline)]) == 0

    def test_bench_gate_fails_on_regression(self, canned_bench, tmp_path, capsys):
        baseline = tmp_path / "BENCH.json"
        baseline.write_text(json.dumps(make_payload(1000.0, 0.5)))
        out = tmp_path / "bench.json"
        code = cli_main(["bench", "--quick", "--baseline", str(baseline), "--json", str(out)])
        assert code == 1
        assert "sim_entries_per_calib" in capsys.readouterr().err
        payload = json.loads(out.read_text())
        assert payload["baseline"]["regressions"]  # recorded in the artifact

    def test_bench_gate_unreadable_baseline_is_distinct_error(self, canned_bench, tmp_path):
        assert cli_main(["bench", "--baseline", str(tmp_path / "missing.json")]) == 2
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        assert cli_main(["bench", "--baseline", str(corrupt)]) == 2
