"""Tests for the diffusion substrate: schedule, prior, EDM preconditioning and samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.edm import EDMDenoiser, EDMPrecond, model_is_quantized, quantization_disabled
from repro.diffusion.prior import GaussianMixturePrior, make_smooth_templates
from repro.diffusion.sampler import SamplerConfig, sample, sample_euler
from repro.diffusion.schedule import (
    ScheduleConfig,
    karras_sigmas,
    linear_sigmas,
    num_model_evaluations,
)
from repro.quant import int4_spec, int8_spec
from repro.nn.layers import Conv2d, Linear


class TestSchedule:
    def test_karras_length(self):
        sigmas = karras_sigmas(ScheduleConfig(num_steps=18))
        assert len(sigmas) == 19

    def test_karras_monotonic_decreasing(self):
        sigmas = karras_sigmas(ScheduleConfig(num_steps=10))
        assert np.all(np.diff(sigmas) < 0)

    def test_karras_endpoints(self):
        cfg = ScheduleConfig(num_steps=10, sigma_min=0.002, sigma_max=80.0)
        sigmas = karras_sigmas(cfg)
        assert sigmas[0] == pytest.approx(80.0)
        assert sigmas[-2] == pytest.approx(0.002)
        assert sigmas[-1] == 0.0

    def test_single_step_schedule(self):
        sigmas = karras_sigmas(ScheduleConfig(num_steps=1))
        assert len(sigmas) == 2 and sigmas[0] == pytest.approx(80.0)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ScheduleConfig(num_steps=0)
        with pytest.raises(ValueError):
            ScheduleConfig(sigma_min=1.0, sigma_max=0.5)
        with pytest.raises(ValueError):
            ScheduleConfig(rho=0)

    def test_linear_sigmas(self):
        sigmas = linear_sigmas(5)
        assert len(sigmas) == 6 and sigmas[-1] == 0.0
        with pytest.raises(ValueError):
            linear_sigmas(0)

    def test_model_evaluation_count(self):
        cfg = ScheduleConfig(num_steps=18)
        assert num_model_evaluations(cfg, second_order=True) == 35
        assert num_model_evaluations(cfg, second_order=False) == 18


class TestGaussianMixturePrior:
    @pytest.fixture()
    def prior(self, rng):
        means = make_smooth_templates(3, (2, 4, 4), smoothness=2.0, amplitude=0.5, rng=rng)
        return GaussianMixturePrior(means=means, component_std=0.2, image_shape=(2, 4, 4))

    def test_sample_shape(self, prior, rng):
        assert prior.sample(5, rng).shape == (5, 2, 4, 4)

    def test_labels_one_hot(self, prior, rng):
        labels = prior.sample_labels(10, rng)
        assert labels.shape == (10, 3)
        assert np.allclose(labels.sum(axis=1), 1.0)

    def test_posterior_mean_at_high_noise_approaches_global_mean(self, prior, rng):
        x = rng.normal(size=(4, 2, 4, 4)) * 100
        posterior = prior.posterior_mean(x, sigma=1000.0)
        global_mean = np.average(prior.means, axis=0, weights=prior.weights).reshape(2, 4, 4)
        assert np.allclose(posterior, global_mean, atol=0.2)

    def test_posterior_mean_at_low_noise_keeps_input(self, prior, rng):
        x = prior.sample(3, rng)
        posterior = prior.posterior_mean(x, sigma=1e-4)
        assert np.allclose(posterior, x, atol=1e-3)

    def test_score_matches_posterior_identity(self, prior, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        sigma = 0.7
        score = prior.score(x, sigma)
        posterior = prior.posterior_mean(x, sigma)
        assert np.allclose(score, (posterior - x) / sigma**2)

    def test_data_std_positive(self, prior):
        assert prior.data_std() > 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GaussianMixturePrior(means=np.zeros((2, 5)), component_std=0.1, image_shape=(1, 2, 2))
        with pytest.raises(ValueError):
            GaussianMixturePrior(means=np.zeros((2, 4)), component_std=-1.0, image_shape=(1, 2, 2))

    def test_weights_normalized(self):
        prior = GaussianMixturePrior(
            means=np.zeros((2, 4)),
            component_std=0.5,
            image_shape=(1, 2, 2),
            weights=np.array([2.0, 6.0]),
        )
        assert np.allclose(prior.weights, [0.25, 0.75])

    def test_templates_have_requested_amplitude(self, rng):
        templates = make_smooth_templates(2, (1, 8, 8), smoothness=3.0, amplitude=0.7, rng=rng)
        stds = templates.reshape(2, -1).std(axis=1)
        assert np.allclose(stds, 0.7, rtol=0.05)


class TestEDMPrecond:
    def test_coefficients_at_sigma_data(self):
        precond = EDMPrecond(sigma_data=0.5)
        assert precond.c_skip(0.5) == pytest.approx(0.5)
        assert precond.c_in(0.5) == pytest.approx(1.0 / np.sqrt(0.5))

    def test_c_skip_limits(self):
        precond = EDMPrecond(sigma_data=0.5)
        assert precond.c_skip(1e-6) == pytest.approx(1.0, abs=1e-6)
        assert precond.c_skip(1e6) == pytest.approx(0.0, abs=1e-6)

    def test_c_out_small_at_low_noise(self):
        precond = EDMPrecond(sigma_data=0.5)
        assert precond.c_out(1e-4) < 1e-3

    def test_c_noise_is_log(self):
        precond = EDMPrecond()
        assert precond.c_noise(1.0) == pytest.approx(0.0)


class TestDenoiserAndSampler:
    def test_plain_denoiser_output_shape(self, tiny_unet, rng):
        denoiser = EDMDenoiser(tiny_unet)
        x = rng.normal(size=(2, 3, 8, 8))
        assert denoiser.denoise(x, 1.0).shape == x.shape

    def test_hybrid_unquantized_returns_prior_mean(self, tiny_denoiser, tiny_dataset, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        out = tiny_denoiser.denoise(x, 0.5)
        expected = tiny_dataset.prior.posterior_mean(x, 0.5)
        assert np.allclose(out, expected)

    def test_hybrid_quantized_deviates_from_prior_mean(self, tiny_denoiser, tiny_dataset, rng):
        for _, module in tiny_denoiser.unet.named_modules():
            if isinstance(module, (Conv2d, Linear)):
                module.weight_spec = int4_spec()
                module.act_spec = int4_spec()
        x = rng.normal(size=(2, 3, 8, 8))
        out = tiny_denoiser.denoise(x, 0.5)
        expected = tiny_dataset.prior.posterior_mean(x, 0.5)
        assert not np.allclose(out, expected)

    def test_quantization_disabled_context(self, tiny_unet):
        conv = tiny_unet.conv_in
        conv.weight_spec = int8_spec()
        assert model_is_quantized(tiny_unet)
        with quantization_disabled(tiny_unet):
            assert not model_is_quantized(tiny_unet)
        assert model_is_quantized(tiny_unet)

    def test_network_evaluations_counted(self, tiny_denoiser, rng):
        before = tiny_denoiser.network_evaluations
        tiny_denoiser.denoise(rng.normal(size=(1, 3, 8, 8)), 1.0)
        assert tiny_denoiser.network_evaluations == before + 1

    def test_sample_shapes_and_counts(self, tiny_denoiser):
        cfg = SamplerConfig(schedule=ScheduleConfig(num_steps=4))
        result = sample(tiny_denoiser, 3, (3, 8, 8), cfg)
        assert result.images.shape == (3, 3, 8, 8)
        assert result.num_steps == 4
        assert result.network_evaluations == 7  # Heun: 2N - 1

    def test_euler_uses_fewer_evaluations(self, tiny_denoiser):
        cfg = SamplerConfig(schedule=ScheduleConfig(num_steps=4))
        result = sample_euler(tiny_denoiser, 2, (3, 8, 8), cfg)
        assert result.network_evaluations == 4

    def test_sampling_is_seeded(self, tiny_denoiser):
        cfg = SamplerConfig(schedule=ScheduleConfig(num_steps=3), seed=7)
        a = sample(tiny_denoiser, 2, (3, 8, 8), cfg).images
        b = sample(tiny_denoiser, 2, (3, 8, 8), cfg).images
        assert np.array_equal(a, b)

    def test_samples_approach_data_distribution(self, tiny_denoiser, tiny_dataset):
        cfg = SamplerConfig(schedule=ScheduleConfig(num_steps=8), seed=1)
        result = sample(tiny_denoiser, 16, tiny_dataset.image_shape, cfg)
        data = tiny_dataset.reference_samples(256)
        # Generated std should be within a factor ~2 of the data's.
        assert 0.4 < result.images.std() / data.std() < 2.5

    def test_step_callback_invoked_per_step(self, tiny_denoiser):
        steps = []
        cfg = SamplerConfig(schedule=ScheduleConfig(num_steps=5))
        sample(tiny_denoiser, 1, (3, 8, 8), cfg, step_callback=lambda i, s, x: steps.append((i, s)))
        assert len(steps) == 5
        assert steps[0][1] > steps[-1][1]
