"""Tests for the telemetry layer: registry semantics, histogram math, spans,
the event log, and the overhead bound that keeps instrumented hot paths flat."""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.core.telemetry import (
    COUNT_BUCKETS,
    EventLog,
    MetricsRegistry,
    Span,
    Trace,
    current_span,
    quantile_from_buckets,
    span,
)
from repro.serve.top import histogram_quantiles, parse_prometheus, sample_total


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_inc_and_value(self, registry):
        c = registry.counter("t_jobs_total", "jobs", labels=("kind",))
        c.inc(kind="sim")
        c.inc(2.0, kind="sim")
        c.inc(kind="sweep")
        assert c.value(kind="sim") == 3.0
        assert c.value(kind="sweep") == 1.0
        assert c.total() == 4.0

    def test_counters_reject_negative_increments(self, registry):
        c = registry.counter("t_down_total", "no")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)

    def test_concurrent_increments_are_lossless(self, registry):
        c = registry.counter("t_race_total", "contended")
        rounds, workers = 2000, 8

        def hammer():
            for _ in range(rounds):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == rounds * workers

    def test_get_or_create_returns_same_object(self, registry):
        a = registry.counter("t_same_total", "x")
        b = registry.counter("t_same_total", "x")
        assert a is b

    def test_kind_mismatch_raises(self, registry):
        registry.counter("t_kind_total", "x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("t_kind_total", "x")

    def test_label_mismatch_raises(self, registry):
        registry.counter("t_labels_total", "x", labels=("kind",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("t_labels_total", "x", labels=("status",))
        c = registry.counter("t_labels_total", "x", labels=("kind",))
        with pytest.raises(ValueError, match="expects labels"):
            c.inc(status="oops")


class TestGauges:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("t_depth", "queue")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6.0

    def test_callback_gauge_reads_live_state(self, registry):
        g = registry.gauge("t_live", "live")
        queue = [1, 2, 3]
        fn = lambda: float(len(queue))  # noqa: E731
        g.set_function(fn)
        assert g.value() == 3.0
        queue.pop()
        assert g.value() == 2.0

    def test_clear_function_only_clears_active_owner(self, registry):
        g = registry.gauge("t_owner", "owned")
        old, new = (lambda: 1.0), (lambda: 2.0)
        g.set_function(old)
        g.set_function(new)  # a newer owner claims the gauge
        g.clear_function(old)  # the old owner closing must not clobber it
        assert g.value() == 2.0
        g.clear_function(new)
        assert g.value() == 0.0

    def test_callback_errors_fall_back_to_stored_value(self, registry):
        g = registry.gauge("t_fallback", "safe")
        g.set(7.0)

        def boom():
            raise RuntimeError("collection must survive this")

        g.set_function(boom)
        assert g.value() == 7.0

    def test_labeled_callback_gauge_rejected(self, registry):
        g = registry.gauge("t_lbl", "labeled", labels=("kind",))
        with pytest.raises(ValueError, match="cannot be labeled"):
            g.set_function(lambda: 1.0)


class TestHistograms:
    def test_bucket_math(self, registry):
        h = registry.histogram("t_lat_seconds", "lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        cumulative, total, count = h.snapshot()
        assert cumulative == [1, 3, 4, 5]  # <=0.1, <=1, <=10, +Inf
        assert count == 5
        assert total == pytest.approx(56.05)

    def test_quantiles_interpolate_within_buckets(self, registry):
        h = registry.histogram("t_q_seconds", "q", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)  # all mass in the (1, 2] bucket
        p50 = h.quantile(0.5)
        assert 1.0 < p50 <= 2.0
        assert h.quantile(0.0) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_of_empty_histogram_is_none(self, registry):
        h = registry.histogram("t_empty_seconds", "e")
        assert h.quantile(0.5) is None

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        # All observations beyond the last bound: the histogram cannot say
        # more than "at least the last finite bound".
        assert quantile_from_buckets((1.0, 2.0), [0, 0, 10], 0.99) == pytest.approx(2.0)

    def test_quantile_from_buckets_validates_q(self):
        with pytest.raises(ValueError):
            quantile_from_buckets((1.0,), [1, 1], 1.5)

    def test_per_label_state_is_independent(self, registry):
        h = registry.histogram("t_kind_seconds", "k", labels=("kind",), buckets=(1.0,))
        h.observe(0.5, kind="sim")
        h.observe(0.5, kind="sim")
        h.observe(2.0, kind="sweep")
        assert h.count(kind="sim") == 2
        assert h.count(kind="sweep") == 1

    def test_buckets_must_increase(self, registry):
        with pytest.raises(ValueError, match="increasing"):
            registry.histogram("t_bad_seconds", "bad", buckets=(1.0, 1.0))


class TestPrometheusRendering:
    def test_text_format_shape(self, registry):
        c = registry.counter("t_reqs_total", "requests", labels=("method",))
        c.inc(method="GET")
        g = registry.gauge("t_depth", "queue depth")
        g.set(3)
        h = registry.histogram("t_lat_seconds", "latency", buckets=(0.5, 1.0))
        h.observe(0.2)
        text = registry.render_prometheus()
        assert "# HELP t_reqs_total requests\n# TYPE t_reqs_total counter" in text
        assert 't_reqs_total{method="GET"} 1' in text
        assert "# TYPE t_depth gauge" in text and "t_depth 3" in text
        assert 't_lat_seconds_bucket{le="0.5"} 1' in text
        assert 't_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "t_lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self, registry):
        c = registry.counter("t_esc_total", "esc", labels=("path",))
        c.inc(path='with "quotes" and \\slashes\\')
        text = registry.render_prometheus()
        assert 'path="with \\"quotes\\" and \\\\slashes\\\\"' in text

    def test_round_trips_through_the_top_parser(self, registry):
        c = registry.counter("t_rt_total", "rt", labels=("kind",))
        c.inc(3, kind="sim")
        c.inc(kind="sweep")
        h = registry.histogram("t_rt_seconds", "rt", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        samples = parse_prometheus(registry.render_prometheus())
        assert sample_total(samples, "t_rt_total") == 4.0
        assert sample_total(samples, "t_rt_total", kind="sim") == 3.0
        (p50,) = histogram_quantiles(samples, "t_rt_seconds", (0.5,))
        assert 1.0 < p50 <= 2.0

    def test_collect_is_json_friendly(self, registry):
        registry.counter("t_json_total", "x").inc()
        json.dumps(registry.collect())  # must not raise


class TestSpans:
    def test_span_times_the_region(self):
        with span("t.region") as s:
            time.sleep(0.01)
        assert s.duration is not None and s.duration >= 0.009

    def test_spans_nest_thread_locally(self):
        assert current_span() is None
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
                assert inner.parent is outer
            assert current_span() is outer
            assert outer.children == [inner]
        assert current_span() is None

    def test_span_observes_histogram(self, registry):
        h = registry.histogram("t_span_seconds", "s")
        with span("timed", histogram=h):
            pass
        assert h.count() == 1

    def test_span_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        assert current_span() is None

    def test_manual_span_finish_is_idempotent(self):
        s = Span("manual")
        first = s.finish().end
        assert s.finish().end == first


class TestTraces:
    def test_marks_and_elapsed(self):
        trace = Trace("job-0001")
        trace.mark("submitted")
        time.sleep(0.01)
        trace.mark("dispatched")
        trace.mark("finished", status="done")
        assert trace.phases() == ["submitted", "dispatched", "finished"]
        elapsed = trace.elapsed("submitted", "dispatched")
        assert elapsed is not None and elapsed >= 0.009
        assert trace.elapsed("submitted", "never") is None

    def test_marks_are_thread_safe(self):
        trace = Trace("job-0002")

        def mark_many():
            for _ in range(500):
                trace.mark("tick")

        threads = [threading.Thread(target=mark_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.marks) == 2000


class TestEventLog:
    def test_off_by_default_and_writes_nothing(self):
        stream = io.StringIO()
        log = EventLog(level="off", stream=stream)
        log.emit("test.event", value=1)
        assert stream.getvalue() == ""
        assert not log.enabled("error")

    def test_emits_json_lines_at_enabled_levels(self):
        stream = io.StringIO()
        log = EventLog(level="info", stream=stream)
        log.emit("job.finished", status="done", duration_s=0.5)
        log.emit("noise", level="debug")  # below threshold: dropped
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "job.finished"
        assert record["status"] == "done"
        assert record["level"] == "info"
        assert "ts" in record

    def test_reads_level_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        assert EventLog().enabled("debug")
        monkeypatch.delenv("REPRO_LOG")
        assert not EventLog().enabled("error")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            EventLog(level="verbose")

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        log = EventLog(level="info", stream=stream)
        stream.close()
        log.emit("after.close")  # must not raise


class TestOverhead:
    def test_instrumentation_cost_is_bounded(self, registry):
        """The hot paths run one counter inc and one histogram observe per
        operation; both must stay far below anything that could move tier-1
        runtime (bound is ~100x slack over observed cost, for loaded CI)."""
        c = registry.counter("t_hot_total", "hot", labels=("kind",))
        h = registry.histogram("t_hot_seconds", "hot")
        ops = 20_000
        began = time.perf_counter()
        for _ in range(ops):
            c.inc(kind="sim")
            h.observe(0.001)
        per_op = (time.perf_counter() - began) / ops
        assert per_op < 500e-6, f"telemetry costs {per_op * 1e6:.1f}us per op"

    def test_disabled_event_log_is_near_free(self):
        log = EventLog(level="off", stream=io.StringIO())
        ops = 50_000
        began = time.perf_counter()
        for _ in range(ops):
            log.emit("hot.path", level="debug", value=1)
        per_op = (time.perf_counter() - began) / ops
        assert per_op < 50e-6, f"disabled log costs {per_op * 1e6:.1f}us per emit"


class TestCountBuckets:
    def test_shape_buckets_cover_fleet_scales(self):
        h = MetricsRegistry().histogram("t_batch", "b", buckets=COUNT_BUCKETS)
        h.observe(16)
        h.observe(128)
        cumulative, _, count = h.snapshot()
        assert count == 2 and cumulative[-1] == 2
