"""Tests for the analysis package and the workload zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.breakdown import cost_breakdown
from repro.analysis.distributions import (
    compare_activation_distributions,
    distribution_summary,
    measure_model_sparsity,
    quantization_level_utilization,
    silu_minimum,
    silu_vs_relu_level_utilization,
)
from repro.analysis.speedup import figure1_summary, summarize_hardware
from repro.analysis.tables import format_percentage, format_speedup, format_table, render_ascii_map
from repro.core.pipeline import HardwareEvaluation
from repro.nn.unet import BLOCK_CONV
from repro.quant.formats import INT4, INT8, UINT4
from repro.workloads.models import WORKLOAD_SPECS, build_unet, load_workload, workload_names


class TestWorkloads:
    def test_four_workloads(self):
        assert workload_names() == ["cifar10", "afhqv2", "ffhq", "imagenet"]
        assert set(WORKLOAD_SPECS) == set(workload_names())

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            load_workload("celeba")

    def test_workload_bundles_dataset_and_model(self, cifar_workload):
        assert cifar_workload.name == "cifar10"
        assert cifar_workload.unet.config.img_resolution == cifar_workload.dataset.resolution
        assert cifar_workload.denoiser.unet is cifar_workload.unet

    def test_workload_resolution_override(self):
        wl = load_workload("afhqv2", resolution=8)
        assert wl.image_shape == (3, 8, 8)

    def test_relu_activation_option(self):
        wl = load_workload("cifar10", resolution=8, activation="relu")
        assert wl.unet.config.activation == "relu"

    def test_calibration_injects_weight_outliers(self, cifar_workload):
        # Heavy-tailed filters: the max |weight| is far above the median filter norm.
        conv = cifar_workload.unet.block_infos()[0].block.conv0
        filter_norms = np.linalg.norm(conv.weight.reshape(conv.weight.shape[0], -1), axis=1)
        assert filter_norms.max() / np.median(filter_norms) > 3.0

    def test_boundary_blocks_have_stronger_outliers(self):
        unet = build_unet(WORKLOAD_SPECS["cifar10"], resolution=8)
        infos = unet.block_infos()

        def outlier_strength(block):
            gamma = np.concatenate([block.norm0.gamma, block.norm1.gamma])
            return float(np.max(gamma))

        first = outlier_strength(infos[0].block)
        middle = outlier_strength(infos[len(infos) // 2].block)
        assert first > middle

    def test_rebuild_denoiser(self, cifar_workload):
        new = cifar_workload.rebuild_denoiser()
        assert new is cifar_workload.denoiser

    def test_models_are_deterministic(self):
        a = load_workload("cifar10", resolution=8).unet.parameters()
        b = load_workload("cifar10", resolution=8).unet.parameters()
        assert all(np.array_equal(a[k], b[k]) for k in a)


class TestBreakdown:
    def test_conv_blocks_dominate_compute(self, cifar_workload):
        report = cost_breakdown(cifar_workload.unet, "cifar10")
        assert report.dominant_type() == BLOCK_CONV
        assert report.conv_compute_share() > 0.5

    def test_shares_sum_to_one(self, cifar_workload):
        report = cost_breakdown(cifar_workload.unet)
        assert sum(report.compute_share.values()) == pytest.approx(1.0)
        assert sum(report.memory_share.values()) == pytest.approx(1.0)

    def test_totals_positive(self, cifar_workload):
        report = cost_breakdown(cifar_workload.unet)
        assert report.total_macs > 0 and report.total_memory_elements > 0


class TestDistributions:
    def test_silu_minimum_matches_paper(self):
        assert silu_minimum() == pytest.approx(-0.278, abs=1e-3)

    def test_level_utilization_silu_vs_relu(self):
        silu_util, relu_util = silu_vs_relu_level_utilization()
        # Fig. 6: SiLU wastes signed INT4 codes, ReLU uses every UINT4 code.
        assert relu_util.utilization == 1.0
        assert silu_util.utilization < 0.8
        assert silu_util.levels_used <= 11

    def test_level_utilization_int8(self):
        util = quantization_level_utilization("relu", INT8)
        assert util.levels_available == 255

    def test_level_utilization_generic(self):
        util = quantization_level_utilization("silu", INT4, input_range=(-3, 3))
        assert 0 < util.levels_used <= util.levels_available

    def test_distribution_summary_fields(self, rng):
        summary = distribution_summary(rng.normal(size=1000), "silu")
        assert summary.histogram.sum() == 1000
        assert summary.minimum < summary.mean < summary.maximum

    def test_compare_silu_relu_distributions(self, cifar_workload):
        import copy

        relu_model = copy.deepcopy(cifar_workload.unet)
        relu_model.set_activation("relu")
        silu_summary, relu_summary = compare_activation_distributions(
            cifar_workload.unet, relu_model
        )
        # Fig. 5: SiLU output has a (small) negative tail, ReLU output none.
        assert silu_summary.minimum < 0
        assert relu_summary.minimum >= 0
        assert relu_summary.zero_fraction > silu_summary.zero_fraction

    def test_model_sparsity_silu_vs_relu(self, cifar_workload):
        import copy

        relu_model = copy.deepcopy(cifar_workload.unet)
        relu_model.set_activation("relu")
        # Exact zeros: SiLU produces essentially none (paper: ~10% including
        # quantized near-zeros), ReLU clamps roughly half-to-two-thirds of
        # values to zero (paper: ~65%).
        silu_sparsity = measure_model_sparsity(cifar_workload.unet)
        relu_sparsity = measure_model_sparsity(relu_model)
        assert relu_sparsity > 0.45
        assert silu_sparsity < 0.15
        assert silu_sparsity < relu_sparsity / 2

    def test_uint4_has_16_levels(self):
        util = quantization_level_utilization("relu", UINT4)
        assert util.levels_available == 16


class TestSpeedupRollups:
    def _fake_hardware(self):
        from repro.accelerator import (
            AcceleratorSimulator,
            dense_baseline_config,
            random_workload,
            sqdm_config,
        )
        from repro.accelerator.simulator import retime_trace_precision

        trace = [[random_workload(mean_sparsity=0.65, seed=s)] for s in range(2)]
        quant = AcceleratorSimulator(sqdm_config()).run_trace(trace)
        dense = AcceleratorSimulator(dense_baseline_config()).run_trace(trace)
        fp16 = AcceleratorSimulator(dense_baseline_config()).run_trace(
            retime_trace_precision(trace, 16, 16)
        )
        return HardwareEvaluation(
            workload="cifar10",
            sqdm_report=quant,
            dense_baseline_report=dense,
            fp16_dense_report=fp16,
            average_sparsity=0.65,
        )

    def test_summarize_hardware_averages(self):
        evaluation = summarize_hardware([self._fake_hardware(), self._fake_hardware()])
        assert len(evaluation.per_workload) == 2
        assert evaluation.average_total_speedup > 1.0
        stack = evaluation.speedup_stack()
        assert stack["FP16 dense"] == 1.0
        assert stack["+ temporal sparsity (total)"] >= stack["+ 4-bit quantization"]

    def test_figure1_summary_assigns_speedups(self):
        rows = figure1_summary({"FP16": 2.0, "INT4-VSQ": 20.0, "Ours (MP+ReLU)": 2.2}, 3.8, 6.9)
        by_name = {r.format_name: r for r in rows}
        assert by_name["FP16"].speedup_vs_fp16 == 1.0
        assert by_name["INT4-VSQ"].speedup_vs_fp16 == pytest.approx(3.8)
        assert by_name["Ours (MP+ReLU)"].speedup_vs_fp16 == pytest.approx(6.9)


class TestTables:
    def test_format_table_contains_cells(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]], title="T")
        assert "T" in text and "2.50" in text and "0.001" in text

    def test_format_percentage_and_speedup(self):
        assert format_percentage(0.515) == "51.5%"
        assert format_speedup(6.91) == "6.91x"

    def test_render_ascii_map(self):
        art = render_ascii_map(np.array([[1, 0], [0, 1]]))
        assert art.splitlines() == ["#.", ".#"]
