"""Tests for uniform, block-scaled and per-vector quantization and the dispatcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant import (
    INT4,
    INT8,
    UINT4,
    BlockScaleConfig,
    ScaleGranularity,
    VSQConfig,
    apply_format,
    fake_quantize,
    fake_quantize_blockscale,
    fake_quantize_vsq,
    fp16_spec,
    fp32_spec,
    int4_fp8_config,
    int4_fp8_spec,
    int4_spec,
    int4_vsq_config,
    int4_vsq_spec,
    int8_spec,
    mxint8_fake_quantize,
    mxint8_spec,
    quantize,
    quantize_blockscale,
    quantize_vsq,
    uint4_fp8_config,
    used_levels,
    vsq_storage_bits,
)
from repro.quant.dispatch import apply_activation_format, apply_weight_format


class TestUniformQuantization:
    def test_codes_within_range(self, rng):
        x = rng.normal(size=(16, 16)) * 10
        qt = quantize(x, INT4)
        assert qt.codes.min() >= INT4.qmin
        assert qt.codes.max() <= INT4.qmax

    def test_roundtrip_error_bounded_by_half_step(self, rng):
        x = rng.normal(size=(64,))
        qt = quantize(x, INT8, granularity=ScaleGranularity.PER_TENSOR)
        err = np.abs(qt.dequantize() - x)
        step = float(np.max(np.abs(x))) / INT8.qmax
        assert np.max(err) <= step / 2 + 1e-12

    def test_zero_tensor_quantizes_to_zeros(self):
        qt = quantize(np.zeros((4, 4)), INT8)
        assert np.all(qt.codes == 0)
        assert np.all(qt.dequantize() == 0)

    def test_unsigned_format_clips_negative(self, rng):
        x = rng.normal(size=(32,))
        qt = quantize(x, UINT4)
        assert qt.codes.min() >= 0
        assert np.all(qt.dequantize() >= 0)

    def test_per_channel_scales_independent(self):
        x = np.stack([np.full(8, 0.01), np.full(8, 100.0)])
        out = fake_quantize(x, INT4, granularity=ScaleGranularity.PER_CHANNEL, axis=0)
        # Per-channel scaling preserves the small channel's values.
        assert np.allclose(out[0], x[0], rtol=0.1)

    def test_per_tensor_crushes_small_values_next_to_outliers(self):
        x = np.concatenate([np.full(8, 0.01), [100.0]])
        out = fake_quantize(x, INT4, granularity=ScaleGranularity.PER_TENSOR)
        # The small values underflow to zero when an outlier sets the scale.
        assert np.allclose(out[:8], 0.0)

    def test_int8_more_accurate_than_int4(self, rng):
        x = rng.normal(size=(256,))
        err4 = np.mean((fake_quantize(x, INT4) - x) ** 2)
        err8 = np.mean((fake_quantize(x, INT8) - x) ** 2)
        assert err8 < err4

    def test_fake_quantize_preserves_shape(self, rng):
        x = rng.normal(size=(2, 3, 5, 7))
        assert fake_quantize(x, INT4).shape == x.shape

    def test_per_vector_padding_handles_non_multiple_lengths(self, rng):
        x = rng.normal(size=(3, 21))
        out = fake_quantize(x, INT4, granularity=ScaleGranularity.PER_VECTOR, block_size=16)
        assert out.shape == x.shape

    def test_used_levels_silu_underutilizes_int4(self):
        from repro.nn.functional import silu

        x = np.linspace(-1, 1, 10001)
        assert used_levels(silu(x), INT4) < INT4.num_levels

    def test_used_levels_relu_uses_all_uint4(self):
        from repro.nn.functional import relu

        x = np.linspace(-1, 1, 10001)
        assert used_levels(relu(x), UINT4) == UINT4.num_levels

    def test_density_of_quantized_tensor(self):
        qt = quantize(np.array([0.0, 0.0, 1.0, -1.0]), INT4)
        assert qt.density() == pytest.approx(0.5)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            quantize(np.ones(8), INT4, granularity=ScaleGranularity.PER_VECTOR, block_size=0)


class TestBlockScale:
    def test_mxint8_low_error_on_gaussian(self, rng):
        x = rng.normal(size=(8, 64))
        out = mxint8_fake_quantize(x)
        rel = np.linalg.norm(out - x) / np.linalg.norm(x)
        assert rel < 0.02

    def test_blockscale_handles_outliers_better_than_per_tensor(self, rng):
        x = rng.normal(size=(4, 128))
        x[0, 0] = 1000.0  # a single outlier
        block_out = fake_quantize_blockscale(
            x, BlockScaleConfig(element_format=INT4, block_size=16)
        )
        tensor_out = fake_quantize(x, INT4, granularity=ScaleGranularity.PER_TENSOR)
        # Away from the outlier's block, block scaling preserves the signal that
        # a shared per-tensor scale crushes to zero.
        block_err = np.mean((block_out[1:] - x[1:]) ** 2)
        tensor_err = np.mean((tensor_out[1:] - x[1:]) ** 2)
        assert block_err < tensor_err
        assert np.allclose(tensor_out[1:], 0.0)

    def test_scales_are_powers_of_two(self, rng):
        x = rng.normal(size=(2, 64))
        qt = quantize_blockscale(x)
        positive = qt.scales[qt.scales > 0]
        assert np.allclose(np.log2(positive), np.round(np.log2(positive)))

    def test_codes_within_int8_range(self, rng):
        x = rng.normal(size=(2, 64)) * 50
        qt = quantize_blockscale(x)
        assert qt.codes.min() >= INT8.qmin and qt.codes.max() <= INT8.qmax

    def test_shape_preserved_with_padding(self, rng):
        x = rng.normal(size=(3, 37))
        assert fake_quantize_blockscale(x).shape == x.shape

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            BlockScaleConfig(block_size=0)


class TestVSQ:
    def test_vsq_beats_per_tensor_int4(self, rng):
        x = rng.standard_t(df=3, size=(8, 64)) * 2
        vsq_err = np.mean((fake_quantize_vsq(x, int4_vsq_config()) - x) ** 2)
        coarse = fake_quantize(x, INT4, granularity=ScaleGranularity.PER_TENSOR)
        coarse_err = np.mean((coarse - x) ** 2)
        assert vsq_err < coarse_err

    def test_fp8_scales_beat_uint8_scales_on_wide_dynamic_range(self, rng):
        # Vectors whose magnitudes span several orders of magnitude: the
        # paper's motivation for FP8 scale factors.
        blocks = [rng.normal(size=16) * (10.0 ** k) for k in range(-4, 1)]
        x = np.concatenate(blocks)
        err_fp8 = np.mean((fake_quantize_vsq(x, int4_fp8_config()) - x) ** 2)
        err_vsq = np.mean((fake_quantize_vsq(x, int4_vsq_config()) - x) ** 2)
        assert err_fp8 < err_vsq

    def test_uint4_config_clips_negatives(self, rng):
        x = rng.normal(size=(64,))
        out = fake_quantize_vsq(x, uint4_fp8_config())
        assert np.all(out >= 0)

    def test_codes_within_range(self, rng):
        x = rng.normal(size=(4, 48))
        qt = quantize_vsq(x, int4_vsq_config())
        assert qt.codes.min() >= INT4.qmin and qt.codes.max() <= INT4.qmax

    def test_storage_bits(self):
        assert vsq_storage_bits(int4_fp8_config(vector_size=16)) == pytest.approx(4.5)
        assert vsq_storage_bits(int4_vsq_config(vector_size=16)) == pytest.approx(4.5)

    def test_invalid_vector_size(self):
        with pytest.raises(ValueError):
            VSQConfig(vector_size=0)

    def test_shape_preserved_with_padding(self, rng):
        x = rng.normal(size=(5, 23))
        assert fake_quantize_vsq(x, int4_fp8_config()).shape == x.shape


class TestDispatch:
    def test_fp32_identity(self, rng):
        x = rng.normal(size=(4, 8))
        assert np.array_equal(apply_format(x, fp32_spec()), x)

    def test_fp16_small_error(self, rng):
        x = rng.normal(size=(4, 8))
        out = apply_format(x, fp16_spec())
        assert np.allclose(out, x, rtol=1e-3)
        assert not np.array_equal(out, x)

    def test_each_table1_format_dispatches(self, rng):
        x = rng.normal(size=(4, 64))
        for spec in (int8_spec(), mxint8_spec(), int4_spec(), int4_vsq_spec(), int4_fp8_spec()):
            out = apply_format(x, spec)
            assert out.shape == x.shape

    def test_finer_formats_have_lower_error_on_outlier_activations(self, rng):
        # Activation tensor with outlier channels, the regime the paper's
        # Table I exercises: coarse formats share one scale across the whole
        # tensor and crush the small channels.
        x = np.abs(rng.normal(size=(1, 64, 4, 4)))
        x[0, ::16] *= 50.0
        err = {
            name: float(np.mean((apply_activation_format(x, spec, channel_axis=1) - x) ** 2))
            for name, spec in (
                ("INT8", int8_spec()),
                ("MXINT8", mxint8_spec()),
                ("INT4", int4_spec()),
                ("INT4-VSQ", int4_vsq_spec()),
            )
        }
        assert err["MXINT8"] < err["INT8"]
        assert err["INT4-VSQ"] < err["INT4"]
        assert err["MXINT8"] < err["INT4-VSQ"]

    def test_weight_format_per_output_channel(self):
        weight = np.zeros((2, 4, 3, 3))
        weight[0] = 0.01
        weight[1] = 10.0
        out = apply_weight_format(weight, int4_spec(), out_channel_axis=0)
        # Per-output-channel scales keep the small filter's values.
        assert np.allclose(out[0], weight[0], rtol=0.1)

    def test_activation_coarse_format_is_per_tensor(self):
        x = np.zeros((1, 2, 2, 2))
        x[0, 0] = 0.01
        x[0, 1] = 10.0
        out = apply_activation_format(x, int4_spec(), channel_axis=1)
        # Per-tensor scaling crushes the small channel (the Table I failure mode).
        assert np.allclose(out[0, 0], 0.0)

    def test_activation_fine_format_preserves_small_channels(self, rng):
        x = np.zeros((1, 32, 2, 2))
        x[0, :16] = 0.01
        x[0, 16:] = 10.0
        out = apply_activation_format(x, int4_fp8_spec(vector_size=16), channel_axis=1)
        assert np.max(np.abs(out[0, :16] - 0.01)) < 0.005

    def test_weight_fine_format_shape(self, rng):
        weight = rng.normal(size=(8, 7, 3, 3))
        out = apply_weight_format(weight, int4_fp8_spec(), out_channel_axis=0)
        assert out.shape == weight.shape
