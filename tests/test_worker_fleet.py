"""Lease/heartbeat liveness tests for the pull-based worker fleet.

The edge cases that make a lease protocol honest: heartbeats renew under
load, an expired lease requeues exactly once, a completion arriving after
expiry is rejected (no duplicate results), cancel-while-claimed resolves to
one winner, and a restarted worker re-registering under its old name
reclaims nothing but strands nothing either.
"""

import dataclasses
import threading
import time

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.core import codec
from repro.core.report_cache import ReportCache
from repro.serve import (
    EvaluationService,
    RemoteEvaluationClient,
    WorkerFleet,
    WorkerPoolExecutor,
    WorkerRuntime,
    start_http_server,
)
from repro.serve.fleet import TaskState
from repro.serve.jobs import JobStatus
from repro.serve.scheduler import SimulationRequest, run_batched
from repro.serve.specs import SweepJobSpec


class RecordingSink:
    """Stands in for a _JobSink: counts claims, records deliveries."""

    def __init__(self, live: bool = True):
        self.live = live
        self.claims = 0
        self.delivered: list = []
        self.failures: list = []
        self.marks: list = []

    def claim(self) -> bool:
        self.claims += 1
        return self.live

    def deliver(self, report) -> None:
        self.delivered.append(report)

    def fail(self, error) -> None:
        self.failures.append(error)

    def trace_mark(self, phase, **fields) -> None:
        self.marks.append((phase, fields))


class DeliveryLog:
    """A fleet ``deliver`` hook that records every completion."""

    def __init__(self):
        self.completions: list = []
        self.errors: list = []
        self.event = threading.Event()

    def __call__(self, sinks, requests, reports=None, error=None):
        if error is not None:
            self.errors.append((sinks, requests, error))
        else:
            self.completions.append((sinks, requests, reports))
        self.event.set()


@pytest.fixture()
def request_factory(synthetic_trace):
    def make(threshold: float) -> SimulationRequest:
        config = AcceleratorConfig(name="fleet-test", sparsity_threshold=threshold)
        return SimulationRequest(config=config, trace=synthetic_trace)

    return make


def make_fleet(**kwargs) -> WorkerFleet:
    kwargs.setdefault("lease_seconds", 0.3)
    return WorkerFleet(**kwargs)


def wait_until(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


# -- fleet unit tests ---------------------------------------------------------------


class TestLeaseLifecycle:
    def test_claim_complete_roundtrip(self, request_factory):
        log = DeliveryLog()
        fleet = make_fleet(deliver=log)
        try:
            sink = RecordingSink()
            request = request_factory(0.5)
            fleet.offer([sink], [request])
            worker = fleet.register("w1")
            tasks = fleet.claim(worker.id)
            assert len(tasks) == 1
            payload = tasks[0]
            assert payload["attempts"] == 0
            # The payload carries typed simulate_spec envelopes the codec
            # round-trips; attempting to decode proves the wire contract.
            spec = codec.decode(payload["specs"][0])
            assert spec.config.sparsity_threshold == 0.5
            assert fleet.complete(worker.id, payload["id"], reports=["r0"])
            assert log.completions == [([sink], [request], ["r0"])]
            assert fleet.tasks_completed == 1
            assert sink.claims == 1
        finally:
            fleet.close()

    def test_claim_long_poll_blocks_until_offer(self, request_factory):
        fleet = make_fleet()
        try:
            worker = fleet.register("w1")
            assert fleet.claim(worker.id, wait_seconds=0.05) == []
            result: list = []

            def claim():
                result.extend(fleet.claim(worker.id, wait_seconds=5.0))

            thread = threading.Thread(target=claim)
            thread.start()
            time.sleep(0.1)
            fleet.offer([RecordingSink()], [request_factory(0.1)])
            thread.join(timeout=5.0)
            assert len(result) == 1
        finally:
            fleet.close()

    def test_unknown_worker_rejected_everywhere(self, request_factory):
        fleet = make_fleet()
        try:
            with pytest.raises(KeyError):
                fleet.claim("worker-9999")
            with pytest.raises(KeyError):
                fleet.heartbeat("worker-9999")
            with pytest.raises(KeyError):
                fleet.complete("worker-9999", "task-0001", reports=[])
        finally:
            fleet.close()

    def test_worker_error_fails_jobs_immediately(self, request_factory):
        log = DeliveryLog()
        fleet = make_fleet(deliver=log)
        try:
            fleet.offer([RecordingSink()], [request_factory(0.2)])
            worker = fleet.register("w1")
            (task,) = fleet.claim(worker.id)
            assert fleet.complete(worker.id, task["id"], error="kernel exploded")
            assert len(log.errors) == 1
            assert "kernel exploded" in str(log.errors[0][2])
            # A deterministic failure is not requeued.
            assert fleet.claim(worker.id) == []
        finally:
            fleet.close()


class TestHeartbeatAndExpiry:
    def test_heartbeat_renews_lease_under_load(self, request_factory):
        fleet = make_fleet(lease_seconds=0.3)
        try:
            fleet.offer([RecordingSink()], [request_factory(0.1)])
            worker = fleet.register("w1")
            (task,) = fleet.claim(worker.id)
            # Hold the lease 4x its length, heartbeating the whole time (the
            # "worker is busy simulating" case): it must never expire.
            for _ in range(12):
                time.sleep(0.1)
                renewed = fleet.heartbeat(worker.id)
                assert task["id"] in renewed["tasks"]
                assert fleet.expire_now() == 0
            assert fleet.leases_expired == 0
            assert fleet.complete(worker.id, task["id"], reports=["late-but-leased"])
        finally:
            fleet.close()

    def test_expiry_requeues_exactly_once(self, request_factory):
        log = DeliveryLog()
        fleet = make_fleet(lease_seconds=0.2, deliver=log)
        try:
            sink = RecordingSink()
            fleet.offer([sink], [request_factory(0.1)])
            worker = fleet.register("w1")
            (task,) = fleet.claim(worker.id)
            wait_until(
                lambda: fleet.leases_expired >= 1, message="the expiry monitor"
            )
            assert fleet.leases_expired == 1
            assert fleet.tasks_requeued == 1
            # Requeued once, claimable again with the attempt recorded — and
            # the sink is NOT re-claimed (claiming is a one-shot CAS on the
            # underlying job; a second claim would orphan it).
            (retry,) = fleet.claim(worker.id, wait_seconds=1.0)
            assert retry["id"] == task["id"]
            assert retry["attempts"] == 1
            assert sink.claims == 1
            assert fleet.complete(worker.id, retry["id"], reports=["second-try"])
            assert len(log.completions) == 1
            delivered_sinks, _, delivered_reports = log.completions[0]
            assert delivered_sinks == [sink]
            assert delivered_reports == ["second-try"]
        finally:
            fleet.close()

    def test_completion_after_expiry_rejected(self, request_factory):
        log = DeliveryLog()
        fleet = make_fleet(lease_seconds=10.0, deliver=log)
        try:
            fleet.offer([RecordingSink()], [request_factory(0.3)])
            zombie = fleet.register("zombie", lease_seconds=0.15)
            (task,) = fleet.claim(zombie.id)
            wait_until(lambda: fleet.leases_expired >= 1, message="lease expiry")
            healthy = fleet.register("healthy")
            (retry,) = fleet.claim(healthy.id, wait_seconds=1.0)
            assert retry["id"] == task["id"]
            # The zombie wakes up and posts its result: rejected, the retry
            # owns the task now.  Exactly one delivery ever happens.
            assert not fleet.complete(zombie.id, task["id"], reports=["zombie"])
            assert fleet.completions_rejected == 1
            assert fleet.complete(healthy.id, retry["id"], reports=["healthy"])
            assert len(log.completions) == 1
            assert log.completions[0][2] == ["healthy"]
            # Double completion of a finished task is likewise rejected.
            assert not fleet.complete(healthy.id, retry["id"], reports=["again"])
        finally:
            fleet.close()

    def test_poisonous_task_fails_after_max_attempts(self, request_factory):
        log = DeliveryLog()
        fleet = make_fleet(lease_seconds=0.1, max_attempts=2, deliver=log)
        try:
            fleet.offer([RecordingSink()], [request_factory(0.4)])
            worker = fleet.register("w1")
            (task,) = fleet.claim(worker.id)
            wait_until(lambda: fleet.tasks_requeued >= 1, message="first requeue")
            (retry,) = fleet.claim(worker.id, wait_seconds=1.0)
            assert retry["attempts"] == 1
            wait_until(lambda: fleet.tasks_failed >= 1, message="task abandonment")
            assert len(log.errors) == 1
            assert "abandoned after 2 expired leases" in str(log.errors[0][2])
            assert fleet.claim(worker.id) == []  # not requeued a third time
        finally:
            fleet.close()


class TestReRegistration:
    def test_reregistration_retires_and_requeues(self, request_factory):
        fleet = make_fleet(lease_seconds=30.0)  # too long to expire naturally
        try:
            fleet.offer([RecordingSink()], [request_factory(0.6)])
            first = fleet.register("restarting-worker")
            (task,) = fleet.claim(first.id)
            # The worker restarts and re-registers under the same name: the
            # old incarnation is retired and its lease requeued immediately —
            # no waiting out a 30s lease.
            second = fleet.register("restarting-worker")
            assert second.id != first.id
            with pytest.raises(KeyError):
                fleet.heartbeat(first.id)
            (requeued,) = fleet.claim(second.id, wait_seconds=1.0)
            assert requeued["id"] == task["id"]
            assert fleet.tasks_requeued == 1
            assert fleet.complete(second.id, requeued["id"], reports=["after-restart"])
            summary = fleet.summary()
            by_name = {w["id"]: w for w in summary["workers"]}
            assert by_name[first.id]["retired"] is True
            assert by_name[second.id]["alive"] is True
        finally:
            fleet.close()

    def test_runtime_reregisters_after_server_side_retirement(self, synthetic_trace):
        service = EvaluationService(worker_fleet=True, lease_seconds=5.0)
        server = start_http_server(service)
        runtime = WorkerRuntime(
            server.endpoint, name="phoenix", poll_seconds=0.1, cache=ReportCache()
        )
        try:
            runtime.start()
            first_id = runtime.worker_id
            # Another process steals the name (as a restarted twin would):
            # the runtime's next verb 404s and it re-registers transparently.
            service.fleet.register("phoenix")
            wait_until(
                lambda: runtime.registrations >= 2 and runtime.worker_id != first_id,
                message="runtime re-registration",
            )
            config = AcceleratorConfig(name="phoenix-job")
            job = service.submit_simulation(config, synthetic_trace)
            assert job.result(timeout=60) is not None
        finally:
            runtime.stop()
            server.close()
            service.close()


# -- service integration ------------------------------------------------------------


class TestServiceIntegration:
    def test_cancel_before_claim_discards_task(self, synthetic_trace):
        service = EvaluationService(worker_fleet=True, lease_seconds=5.0)
        try:
            config = AcceleratorConfig(name="cancel-before")
            job = service.submit_simulation(config, synthetic_trace)
            wait_until(
                lambda: service.fleet.summary()["queue_depth"] == 1,
                message="fleet enqueue",
            )
            assert service.cancel(job.id) is True
            worker = service.fleet.register("w1")
            # The cancelled job's task dissolves at claim time (its sink
            # refuses the CAS); the worker never sees it.
            assert service.fleet.claim(worker.id, wait_seconds=0.2) == []
            assert job.status is JobStatus.CANCELLED
        finally:
            service.close()

    def test_cancel_while_claimed_loses_the_race(self, synthetic_trace):
        service = EvaluationService(worker_fleet=True, lease_seconds=5.0)
        try:
            config = AcceleratorConfig(name="cancel-while")
            job = service.submit_simulation(config, synthetic_trace)
            worker = service.fleet.register("w1")
            (task,) = service.fleet.claim(worker.id, wait_seconds=5.0)
            # Claimed means RUNNING: cancellation is refused, and the
            # worker's completion still lands.
            assert service.cancel(job.id) is False
            report = run_batched(
                [SimulationRequest(config=config, trace=synthetic_trace)],
                cache=ReportCache(),
            )[0]
            assert service.fleet.complete(worker.id, task["id"], reports=[report])
            assert job.result(timeout=10) == report
        finally:
            service.close()

    def test_fleet_results_land_in_shared_cache(self, synthetic_trace):
        cache = ReportCache()
        service = EvaluationService(cache=cache, worker_fleet=True, lease_seconds=5.0)
        try:
            config = AcceleratorConfig(name="cache-landing")
            request = SimulationRequest(config=config, trace=synthetic_trace)
            job = service.submit_simulation(config, synthetic_trace)
            worker = service.fleet.register("w1")
            (task,) = service.fleet.claim(worker.id, wait_seconds=5.0)
            report = run_batched([request], cache=ReportCache())[0]
            assert service.fleet.complete(worker.id, task["id"], reports=[report])
            assert job.result(timeout=10) == report
            # The completion was inserted into the server cache, so an
            # identical submission is served without any fleet task.
            job2 = service.submit_simulation(config, synthetic_trace)
            assert job2.result(timeout=10) == report
            assert service.fleet.summary()["queue_depth"] == 0
            assert service.fleet.tasks_completed == 1
        finally:
            service.close()

    def test_close_fails_outstanding_fleet_tasks(self, synthetic_trace):
        service = EvaluationService(worker_fleet=True, lease_seconds=5.0)
        config = AcceleratorConfig(name="close-outstanding")
        job = service.submit_simulation(config, synthetic_trace)
        worker = service.fleet.register("w1")
        (task,) = service.fleet.claim(worker.id, wait_seconds=5.0)
        service.close()
        with pytest.raises(Exception, match="fleet closed"):
            job.result(timeout=10)


# -- end-to-end over HTTP -----------------------------------------------------------


class TestEndToEnd:
    def test_worker_death_mid_lease_requeues_and_completes(self, synthetic_trace):
        service = EvaluationService(
            cache=ReportCache(), worker_fleet=True, lease_seconds=0.5
        )
        server = start_http_server(service)
        # The doomed worker holds every claimed task indefinitely (chaos
        # hold), heartbeating — only its death can release the lease.
        doomed = WorkerRuntime(
            server.endpoint,
            name="doomed",
            poll_seconds=0.1,
            chaos_hold_seconds=600.0,
            cache=ReportCache(),
        )
        rescuer = None
        try:
            doomed.start()
            config = AcceleratorConfig(name="chaos-e2e")
            job = service.submit_simulation(config, synthetic_trace)
            wait_until(
                lambda: service.fleet.summary()["leased"] == 1,
                message="the doomed worker's claim",
            )
            # SIGKILL equivalent for a thread: stop heartbeating and never
            # complete.  The lease must expire and the task requeue.
            doomed.stop(abandon=True, timeout=1.0)
            rescuer = WorkerRuntime(
                server.endpoint, name="rescuer", poll_seconds=0.1, cache=ReportCache()
            )
            rescuer.start()
            report = job.result(timeout=60)
            assert service.fleet.leases_expired >= 1
            assert service.fleet.tasks_requeued >= 1
            # Zero lost jobs, and the rescued result is bit-identical to a
            # local single-process run.
            reference = run_batched(
                [SimulationRequest(config=config, trace=synthetic_trace)],
                cache=ReportCache(),
            )[0]
            assert report == reference
        finally:
            if rescuer is not None:
                rescuer.stop()
            doomed.stop(abandon=True)
            server.close()
            service.close()

    def test_http_worker_protocol_and_metrics(self, synthetic_trace):
        service = EvaluationService(
            cache=ReportCache(), worker_fleet=True, lease_seconds=5.0
        )
        server = start_http_server(service)
        client = RemoteEvaluationClient(server.endpoint)
        try:
            contract = client.register_worker("http-worker", lease_seconds=2.0)
            assert contract["lease_seconds"] == 2.0
            assert contract["heartbeat_seconds"] == pytest.approx(2.0 / 3.0)
            worker_id = contract["worker_id"]
            assert client.claim_tasks(worker_id, wait_seconds=0.05) == []
            with pytest.raises(KeyError):
                client.claim_tasks("worker-9999")
            with pytest.raises(KeyError):
                client.worker_heartbeat("worker-9999")
            # Completing a task that never existed is a rejection, not an error.
            assert client.complete_task(worker_id, "task-9999", reports=[]) is False

            config = AcceleratorConfig(name="http-protocol")
            job = client.submit_simulation(config, synthetic_trace)
            (task,) = client.claim_tasks(worker_id, wait_seconds=5.0)
            heartbeat = client.worker_heartbeat(worker_id)
            assert task["id"] in heartbeat["tasks"]
            spec = codec.decode(task["specs"][0])
            report = run_batched(
                [
                    SimulationRequest(
                        config=spec.config,
                        trace=spec.trace,
                        energy_table=spec.energy_table,
                        backend=spec.backend,
                    )
                ],
                cache=ReportCache(),
            )[0]
            assert client.complete_task(worker_id, task["id"], [codec.encode(report)])
            assert job.result(timeout=30) == report

            listing = client.workers()
            assert listing["workers_alive"] >= 1
            assert listing["tasks_completed"] >= 1
            from repro.serve.top import fetch_text, parse_prometheus, sample_total

            samples = parse_prometheus(fetch_text(f"{server.endpoint}/metrics"))
            for name in (
                "repro_fleet_workers_alive",
                "repro_fleet_leases_expired_total",
                "repro_fleet_jobs_requeued_total",
                "repro_fleet_claim_latency_seconds_count",
            ):
                assert name in samples, f"missing {name} in /metrics"
            assert sample_total(samples, "repro_fleet_workers_alive") >= 1
        finally:
            client.close()
            server.close()
            service.close()

    def test_pool_dispatch_server_rejects_worker_verbs(self):
        service = EvaluationService()  # default: in-process pool dispatch
        server = start_http_server(service)
        client = RemoteEvaluationClient(server.endpoint)
        try:
            from repro.serve.client import RemoteServiceError

            with pytest.raises(RemoteServiceError, match="dispatch workers"):
                client.register_worker("nope")
            with pytest.raises(RemoteServiceError, match="HTTP 409"):
                client.workers()
        finally:
            client.close()
            server.close()
            service.close()


# -- executor parity ---------------------------------------------------------------


class TestWorkerPoolExecutor:
    def test_sweep_matches_inline_bit_for_bit(self, synthetic_trace):
        base = AcceleratorConfig(name="pool-parity")
        spec = SweepJobSpec(
            base=base,
            trace=synthetic_trace,
            grid={"sparsity_threshold": [0.2, 0.5, 0.8]},
            baseline=dataclasses.replace(base, name="pool-parity-dense"),
        )
        from repro.core.execution import resolve_executor

        inline = resolve_executor("inline", cache=ReportCache())
        with inline:
            reference = inline.submit(spec).result()
        pool = WorkerPoolExecutor(num_workers=2, cache=ReportCache(), poll_seconds=0.2)
        with pool:
            fleet_result = pool.submit(spec).result()
            stats = pool.stats()
        assert [r == e for r, e in zip(fleet_result.reports, reference.reports)] == [
            True
        ] * 3
        assert fleet_result.baseline == reference.baseline
        # The work actually went through the fleet (4 unique keys, one task
        # per configuration partition), not a local fallback.
        assert stats["fleet"]["tasks_completed"] == 4
        assert stats["cache"]["memory"]["misses"] == 4

    def test_registry_factory_builds_worker_pool(self):
        from repro.core.execution import executor_names, resolve_executor

        assert "worker-pool" in executor_names()
        executor = resolve_executor(
            "worker-pool", cache=ReportCache(), max_workers=1
        )
        assert isinstance(executor, WorkerPoolExecutor)
        assert len(executor.workers) == 1
        executor.close()
