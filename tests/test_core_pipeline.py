"""End-to-end pipeline tests (fast, reduced-scale versions of the paper's experiments)."""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig, SQDMPipeline
from repro.workloads.models import load_workload


@pytest.fixture(scope="module")
def pipeline():
    config = PipelineConfig(
        num_fid_samples=6,
        num_reference_samples=128,
        num_sampling_steps=4,
        num_trace_samples=1,
        seed=0,
    )
    return SQDMPipeline(workload=load_workload("cifar10", resolution=8), config=config)


class TestQualityEvaluation:
    def test_fp32_equals_fp16_quality(self, pipeline):
        fp32 = pipeline.evaluate_format("FP32")
        fp16 = pipeline.evaluate_format("FP16")
        assert fp16.fid == pytest.approx(fp32.fid, rel=0.05)

    def test_int4_much_worse_than_fp32(self, pipeline):
        fp32 = pipeline.evaluate_format("FP32")
        int4 = pipeline.evaluate_format("INT4")
        assert int4.fid > 3 * fp32.fid

    def test_mxint8_better_than_int8(self, pipeline):
        int8 = pipeline.evaluate_format("INT8")
        mxint8 = pipeline.evaluate_format("MXINT8")
        assert mxint8.fid < int8.fid

    def test_int4_vsq_better_than_int4(self, pipeline):
        int4 = pipeline.evaluate_format("INT4")
        vsq = pipeline.evaluate_format("INT4-VSQ")
        assert vsq.fid < int4.fid

    def test_mixed_precision_better_than_vsq(self, pipeline):
        vsq = pipeline.evaluate_format("INT4-VSQ")
        mp = pipeline.evaluate_mixed_precision(relu=False)
        assert mp.fid < vsq.fid

    def test_relu_version_at_least_as_good_as_mp_only(self, pipeline):
        mp = pipeline.evaluate_mixed_precision(relu=False)
        mp_relu = pipeline.evaluate_mixed_precision(relu=True)
        assert mp_relu.fid <= mp.fid * 1.25

    def test_mixed_precision_savings_reported(self, pipeline):
        mp = pipeline.evaluate_mixed_precision(relu=True)
        assert 0.5 < mp.compute_saving < 0.75
        assert 0.5 < mp.memory_saving < 0.75

    def test_evaluation_metadata(self, pipeline):
        ev = pipeline.evaluate_mixed_precision(relu=True)
        assert ev.workload == "cifar10"
        assert ev.relu_based
        assert ev.scheme == "Ours (MP+ReLU)"


class TestHardwareEvaluation:
    @pytest.fixture(scope="class")
    def hardware(self, pipeline):
        return pipeline.evaluate_hardware()

    def test_sparsity_speedup_in_range(self, hardware):
        assert 1.2 < hardware.sparsity_speedup < 3.0

    def test_energy_saving_in_range(self, hardware):
        assert 0.25 < hardware.sparsity_energy_saving < 0.85

    def test_quantization_speedup_in_range(self, hardware):
        assert 2.0 < hardware.quantization_speedup <= 4.0

    def test_total_speedup_compounds(self, hardware):
        assert hardware.total_speedup > hardware.quantization_speedup
        assert hardware.total_speedup > hardware.sparsity_speedup
        assert hardware.total_speedup == pytest.approx(
            hardware.quantization_speedup * hardware.sparsity_speedup
            * hardware.dense_baseline_report.total_cycles
            / hardware.dense_baseline_report.total_cycles,
            rel=0.3,
        )

    def test_average_sparsity_in_paper_regime(self, hardware):
        assert 0.45 < hardware.average_sparsity < 0.9

    def test_relu_model_is_cached(self, pipeline):
        assert pipeline.relu_unet() is pipeline.relu_unet()
