"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.accelerator import (
    ActivationMapping,
    WeightMapping,
    classify_channels,
    compress_channel,
    random_workload,
)
from repro.accelerator.config import PEConfig
from repro.accelerator.datapath import DenseDatapath, SparseDatapath
from repro.accelerator.energy import DEFAULT_ENERGY_TABLE
from repro.nn import functional as F
from repro.quant import INT4, INT8, UINT4, ScaleGranularity, fake_quantize, quantize
from repro.quant.blockscale import fake_quantize_blockscale
from repro.quant.vsq import fake_quantize_vsq, int4_fp8_config

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=24),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
)


class TestQuantizationProperties:
    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_uniform_quantization_error_bounded(self, x):
        qt = quantize(x, INT8, granularity=ScaleGranularity.PER_TENSOR)
        step = max(float(np.max(np.abs(x))), 1e-12) / INT8.qmax
        assert np.all(np.abs(qt.dequantize().reshape(x.shape) - x) <= step / 2 + 1e-9)

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_codes_always_in_range(self, x):
        for fmt in (INT4, INT8, UINT4):
            qt = quantize(x, fmt, granularity=ScaleGranularity.PER_TENSOR)
            assert qt.codes.min() >= fmt.qmin
            assert qt.codes.max() <= fmt.qmax

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_fake_quantize_idempotent(self, x):
        once = fake_quantize(x, INT8)
        twice = fake_quantize(once, INT8)
        assert np.allclose(once, twice, atol=1e-9)

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_quantization_preserves_sign(self, x):
        out = fake_quantize(x, INT8)
        assert np.all(np.sign(out) * np.sign(x) >= 0)

    @given(finite_arrays, st.sampled_from([8, 16, 32]))
    @settings(max_examples=30, deadline=None)
    def test_blockscale_shape_preserved(self, x, block_size):
        from repro.quant.blockscale import BlockScaleConfig

        out = fake_quantize_blockscale(x, BlockScaleConfig(block_size=block_size))
        assert out.shape == x.shape
        assert np.all(np.isfinite(out))

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_vsq_error_bounded_per_vector(self, x):
        out = fake_quantize_vsq(x, int4_fp8_config(vector_size=16))
        # Error is bounded by one quantization step of the per-vector scale,
        # which itself is bounded by max|x| / qmax (scales only shrink under FP8
        # rounding by at most ~6%).
        bound = max(float(np.max(np.abs(x))), 1e-12) / INT4.qmax * 0.6
        assert np.max(np.abs(out - x)) <= bound + 1e-9

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_relu_output_nonnegative_and_sparse_where_negative(self, x):
        out = F.relu(x)
        assert np.all(out >= 0)
        assert np.all(out[x < 0] == 0)

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_silu_bounded_below(self, x):
        assert np.all(F.silu(x) >= F.SILU_MIN - 1e-9)


class TestDetectorProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=128),
            elements=st.floats(min_value=0.0, max_value=1.0),
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_classification_partitions_channels(self, sparsity, threshold):
        cls = classify_channels(sparsity, threshold)
        combined = np.sort(np.concatenate([cls.dense_channels, cls.sparse_channels]))
        assert np.array_equal(combined, np.arange(sparsity.size))
        assert np.all(cls.sparsity[cls.sparse_channels] >= threshold)
        assert np.all(cls.sparsity[cls.dense_channels] < threshold)

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_activation_mapping_bijective(self, channels, height, width):
        mapping = ActivationMapping(channels, height, width)
        addresses = {
            mapping.address(c, y, x)
            for c in range(channels)
            for y in range(height)
            for x in range(width)
        }
        assert len(addresses) == mapping.size
        assert min(addresses) == 0 and max(addresses) == mapping.size - 1

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_weight_mapping_channel_slices_tile_address_space(self, out_channels, in_channels):
        mapping = WeightMapping(out_channels, in_channels, 3, 3)
        covered = []
        for c in range(in_channels):
            start, end = mapping.channel_slice(c)
            covered.extend(range(start, end))
        assert sorted(covered) == list(range(mapping.size))

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=256),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_compress_decompress_roundtrip(self, data):
        record = compress_channel(data, 0)
        assert np.allclose(record.decompress(), data)
        assert record.nonzeros == int(np.count_nonzero(data))


class TestDatapathProperties:
    @given(st.floats(min_value=0, max_value=1e9), st.sampled_from([4, 8, 16]))
    @settings(max_examples=40, deadline=None)
    def test_dense_cycles_monotonic_in_macs(self, macs, bits):
        dp = DenseDatapath(PEConfig(), DEFAULT_ENERGY_TABLE)
        result = dp.execute(macs, bits, bits, 0, 0, 0)
        more = dp.execute(macs * 2 + 1, bits, bits, 0, 0, 0)
        assert more.cycles >= result.cycles
        assert result.cycles >= 0 and np.isfinite(result.cycles)

    @given(
        st.floats(min_value=1, max_value=1e8),
        st.floats(min_value=0, max_value=1),
        st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_sparse_executed_plus_skipped_equals_total(self, macs, nonzero, bits):
        sp = SparseDatapath(PEConfig(), DEFAULT_ENERGY_TABLE)
        result = sp.execute(macs, nonzero, bits, bits, 0, 0, 0)
        assert result.macs_executed + result.macs_skipped == pytest.approx(macs)
        assert result.energy.total_pj >= 0

    @given(st.integers(min_value=1, max_value=256), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_random_workload_sparsity_valid(self, channels, mean_sparsity):
        w = random_workload(in_channels=channels, mean_sparsity=mean_sparsity, seed=1)
        assert w.channel_sparsity.shape == (channels,)
        assert np.all((w.channel_sparsity >= 0) & (w.channel_sparsity <= 1))
