"""The static-analysis engine (`repro check`) and the runtime lock watcher.

Every REP rule gets a positive fixture (a seeded violation the rule must
catch) and a negative fixture (conforming code it must stay silent on),
plus engine-level coverage: suppression parsing, the REP010 hygiene audit,
JSON output and the CLI wiring.  The lockwatch tests construct a real
two-thread lock-order inversion and assert it is reported with acquisition
stacks.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from repro.devtools.astcheck import (
    render_json,
    render_text,
    rule_catalogue,
    run_checks,
    tracked_python_files,
)
from repro.devtools.lockwatch import LockWatch, LockWatchError
from repro.serve.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def check_source(tmp_path, source, rules=None, relpath="src/repro/accelerator/backends/mod.py"):
    """Run the engine over one fixture file planted at ``relpath``."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_checks([path], root=tmp_path, rules=rules)


def finding_rules(report):
    return [finding.rule for finding in report.findings]


# -- engine ---------------------------------------------------------------------


class TestEngine:
    def test_rule_catalogue_is_complete(self):
        ids = [info.id for info in rule_catalogue()]
        assert ids == sorted(ids)
        assert ids == [f"REP{n:03d}" for n in range(1, 11)]
        assert all(info.rationale for info in rule_catalogue())

    def test_tracked_files_cover_the_repo(self):
        files = tracked_python_files(REPO_ROOT)
        names = {path.relative_to(REPO_ROOT).as_posix() for path in files}
        assert "src/repro/devtools/astcheck.py" in names
        assert "src/repro/serve/fleet.py" in names
        assert not any(name.startswith("tests/") for name in names)

    def test_syntax_error_reports_rep000(self, tmp_path):
        report = check_source(tmp_path, "def broken(:\n")
        assert finding_rules(report) == ["REP000"]

    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(ValueError, match="REP999"):
            check_source(tmp_path, "x = 1\n", rules=["REP999"])

    def test_repo_is_clean(self):
        """The gate the CI job enforces: zero unsuppressed findings today."""
        report = run_checks(tracked_python_files(REPO_ROOT), root=REPO_ROOT)
        assert report.ok, render_text(report)
        assert report.files_checked > 50
        assert report.suppressed  # the annotated wall-clock/except waivers

    def test_json_rendering_round_trips(self, tmp_path):
        report = check_source(tmp_path, "import pickle\n", rules=["REP001"])
        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP001"
        assert finding["line"] == 1
        assert finding["suppressed"] is False

    def test_text_rendering_names_file_and_line(self, tmp_path):
        report = check_source(tmp_path, "\nimport pickle\n", rules=["REP001"])
        text = render_text(report)
        assert "mod.py:2" in text
        assert "REP001" in text


class TestSuppressions:
    def test_same_line_suppression_with_reason(self, tmp_path):
        report = check_source(
            tmp_path,
            "import pickle  # repro: allow[REP001] fixture says so\n",
            rules=["REP001"],
        )
        assert report.ok
        (suppressed,) = report.suppressed
        assert suppressed.rule == "REP001"
        assert suppressed.reason == "fixture says so"

    def test_standalone_comment_covers_next_line(self, tmp_path):
        report = check_source(
            tmp_path,
            "# repro: allow[REP001] fixture says so\nimport pickle\n",
            rules=["REP001"],
        )
        assert report.ok and len(report.suppressed) == 1

    def test_reasonless_suppression_suppresses_nothing(self, tmp_path):
        report = check_source(
            tmp_path,
            "import pickle  # repro: allow[REP001]\n",
            rules=["REP001", "REP010"],
        )
        assert sorted(finding_rules(report)) == ["REP001", "REP010"]

    def test_unknown_rule_id_in_suppression_is_flagged(self, tmp_path):
        report = check_source(
            tmp_path,
            "x = 1  # repro: allow[REP404] no such rule\n",
            rules=["REP010"],
        )
        assert finding_rules(report) == ["REP010"]

    def test_unused_suppression_flagged_only_on_full_runs(self, tmp_path):
        source = "x = 1  # repro: allow[REP001] nothing here imports pickle\n"
        full = check_source(tmp_path, source)
        assert finding_rules(full) == ["REP010"]
        partial = check_source(tmp_path, source, rules=["REP001", "REP010"])
        assert partial.ok  # a not-run rule is not evidence of staleness

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        report = check_source(
            tmp_path,
            "import pickle  # repro: allow[REP002] wrong rule\n",
            rules=["REP001"],
        )
        assert finding_rules(report) == ["REP001"]


# -- the rules ------------------------------------------------------------------


class TestRules:
    def test_rep001_flags_pickle_imports(self, tmp_path):
        for source in ("import pickle\n", "from pickle import loads\n", "import dill\n"):
            report = check_source(tmp_path, source, rules=["REP001"])
            assert finding_rules(report) == ["REP001"], source

    def test_rep001_allows_the_legacy_artifact_path(self, tmp_path):
        report = check_source(
            tmp_path, "import pickle\n", rules=["REP001"], relpath="src/repro/core/artifacts.py"
        )
        assert report.ok

    def test_rep002_flags_wall_clock_reads(self, tmp_path):
        source = "import time\ndef f(t0):\n    return time.time() - t0\n"
        report = check_source(tmp_path, source, rules=["REP002"])
        (finding,) = report.findings
        assert finding.rule == "REP002" and finding.line == 3
        assert "arithmetic" in finding.message

    def test_rep002_flags_default_factory_references(self, tmp_path):
        source = (
            "import time\n"
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class T:\n"
            "    at: float = field(default_factory=time.time)\n"
        )
        report = check_source(tmp_path, source, rules=["REP002"])
        assert finding_rules(report) == ["REP002"]

    def test_rep002_accepts_monotonic(self, tmp_path):
        source = "import time\n\ndef f(t0):\n    return time.monotonic() - t0\n"
        assert check_source(tmp_path, source, rules=["REP002"]).ok

    def test_rep003_flags_reduceat_in_backends(self, tmp_path):
        source = "import numpy as np\n\ndef f(v, idx):\n    return np.add.reduceat(v, idx)\n"
        report = check_source(tmp_path, source, rules=["REP003"])
        assert finding_rules(report) == ["REP003"]

    def test_rep003_scoped_to_backends(self, tmp_path):
        source = "import numpy as np\n\ndef f(v, idx):\n    return np.add.reduceat(v, idx)\n"
        report = check_source(
            tmp_path, source, rules=["REP003"], relpath="src/repro/analysis/tables.py"
        )
        assert report.ok

    def test_rep004_flags_unregistered_reachable_dataclass(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "def register_dataclass(cls, name):\n"
            "    return cls\n"
            "@dataclass\n"
            "class Inner:\n"
            "    value: int\n"
            "@dataclass\n"
            "class Outer:\n"
            "    inner: Inner\n"
            "register_dataclass(Outer, 'outer')\n"
        )
        report = check_source(tmp_path, source, rules=["REP004"])
        (finding,) = report.findings
        assert finding.rule == "REP004"
        assert "Inner" in finding.message and "Outer.inner" in finding.message

    def test_rep004_accepts_fully_registered_closures(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "def register_dataclass(cls, name):\n"
            "    return cls\n"
            "@dataclass\n"
            "class Inner:\n"
            "    value: int\n"
            "@dataclass\n"
            "class Outer:\n"
            "    inner: Inner\n"
            "register_dataclass(Outer, 'outer')\n"
            "register_dataclass(Inner, 'inner')\n"
        )
        assert check_source(tmp_path, source, rules=["REP004"]).ok

    def test_rep005_flags_bad_metric_names(self, tmp_path):
        source = (
            "def setup(registry):\n"
            "    return registry.counter('fleet_tasks_total', 'doc')\n"
        )
        report = check_source(tmp_path, source, rules=["REP005"])
        (finding,) = report.findings
        assert "repro_[a-z_]+" in finding.message

    def test_rep005_flags_duplicate_creation_sites(self, tmp_path):
        source = (
            "def a(registry):\n"
            "    return registry.counter('repro_things_total', 'doc')\n"
            "def b(registry):\n"
            "    return registry.counter('repro_things_total', 'doc')\n"
        )
        report = check_source(tmp_path, source, rules=["REP005"])
        assert finding_rules(report) == ["REP005", "REP005"]
        assert "2 sites" in report.findings[0].message

    def test_rep006_requires_slots_on_hot_paths(self, tmp_path):
        source = "from dataclasses import dataclass\n@dataclass\nclass Hot:\n    x: int\n"
        report = check_source(tmp_path, source, rules=["REP006"])
        assert finding_rules(report) == ["REP006"]
        slotted = source.replace("@dataclass", "@dataclass(slots=True)")
        assert check_source(tmp_path, slotted, rules=["REP006"]).ok

    def test_rep006_scoped_to_hot_paths(self, tmp_path):
        source = "from dataclasses import dataclass\n@dataclass\nclass Cold:\n    x: int\n"
        report = check_source(
            tmp_path, source, rules=["REP006"], relpath="src/repro/serve/anything.py"
        )
        assert report.ok

    def test_rep007_flags_unlocked_touch_of_guarded_attribute(self, tmp_path):
        source = (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []  #: guarded by _lock\n"
            "    def bad(self, item):\n"
            "        self._items.append(item)\n"
            "    def good(self, item):\n"
            "        with self._lock:\n"
            "            self._items.append(item)\n"
            "    def _drain_locked(self):\n"
            "        return list(self._items)\n"
        )
        report = check_source(tmp_path, source, rules=["REP007"])
        (finding,) = report.findings
        assert finding.rule == "REP007" and finding.line == 7

    def test_rep008_flags_sleep_under_lock(self, tmp_path):
        source = (
            "import threading, time\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def bad(self):\n"
            "        with self._lock:\n"
            "            time.sleep(1.0)\n"
            "    def good(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "        time.sleep(1.0)\n"
        )
        report = check_source(tmp_path, source, rules=["REP008"])
        (finding,) = report.findings
        assert finding.line == 7 and "time.sleep" in finding.message

    def test_rep008_allows_waiting_on_the_held_condition(self, tmp_path):
        source = (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._condition = threading.Condition()\n"
            "    def ok(self):\n"
            "        with self._condition:\n"
            "            self._condition.wait(0.1)\n"
        )
        assert check_source(tmp_path, source, rules=["REP008"]).ok

    def test_rep008_flags_future_result_under_lock(self, tmp_path):
        source = (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def bad(self, future):\n"
            "        with self._lock:\n"
            "            return future.result()\n"
        )
        report = check_source(tmp_path, source, rules=["REP008"])
        assert finding_rules(report) == ["REP008"]

    def test_rep009_flags_swallowed_exceptions(self, tmp_path):
        source = (
            "def f(fn):\n"
            "    try:\n"
            "        fn()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        report = check_source(tmp_path, source, rules=["REP009"])
        (finding,) = report.findings
        assert finding.rule == "REP009" and finding.line == 4

    def test_rep009_accepts_raise_return_and_event_log(self, tmp_path):
        for body in ("raise", "return None", "event_log().emit('x', error='e')"):
            source = (
                "def event_log():\n"
                "    raise NotImplementedError\n"
                "def f(fn):\n"
                "    try:\n"
                "        fn()\n"
                "    except Exception:\n"
                f"        {body}\n"
            )
            assert check_source(tmp_path, source, rules=["REP009"]).ok, body


# -- the CLI --------------------------------------------------------------------


class TestCli:
    def test_check_subcommand_clean_repo(self, capsys):
        assert cli_main(["check", "--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_check_json_format(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n")
        code = cli_main(
            ["check", str(bad), "--root", str(tmp_path), "--format", "json", "--rule", "REP001"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "REP001"

    def test_check_list_rules(self, capsys):
        assert cli_main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP001" in out and "REP010" in out

    def test_check_unknown_rule_exits_2(self, capsys):
        assert cli_main(["check", "--root", str(REPO_ROOT), "--rule", "REP999"]) == 2


# -- lockwatch ------------------------------------------------------------------


class TestLockWatch:
    def test_two_thread_lock_order_inversion_is_reported(self):
        """The real thing: A->B in one thread, B->A in another == deadlock risk."""
        watch = LockWatch()
        lock_a = watch.wrap_lock("A")
        lock_b = watch.wrap_lock("B")
        first_done = threading.Event()

        def forward():
            with lock_a:
                with lock_b:
                    pass
            first_done.set()

        def inverted():
            first_done.wait(5.0)
            with lock_b:
                with lock_a:
                    pass

        threads = [threading.Thread(target=forward), threading.Thread(target=inverted)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        (violation,) = watch.violations()
        assert violation.kind == "lock-order-cycle"
        assert "A" in violation.message and "B" in violation.message
        assert violation.stacks  # acquisition stacks name the edges
        assert any("test_devtools" in stack for stack in violation.stacks)
        with pytest.raises(LockWatchError, match="lock-order-cycle"):
            watch.check()

    def test_consistent_ordering_is_clean(self):
        watch = LockWatch()
        lock_a = watch.wrap_lock("A")
        lock_b = watch.wrap_lock("B")

        def worker():
            for _ in range(50):
                with lock_a:
                    with lock_b:
                        pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert watch.violations() == []
        watch.check()  # does not raise

    def test_rlock_reentry_is_not_an_edge(self):
        watch = LockWatch()
        rlock = watch.wrap_rlock("R")
        with rlock:
            with rlock:
                pass
        assert watch.edges() == {}
        assert watch.violations() == []

    def test_condition_wait_releases_the_held_stack(self):
        watch = LockWatch()
        condition = threading.Condition(watch.wrap_rlock("C"))
        other = watch.wrap_lock("L")
        woke = []

        def waiter():
            with condition:
                condition.wait(timeout=2.0)
                woke.append(True)

        def notifier():
            # Taking L while the waiter sleeps must not see C as held by us.
            with other:
                with condition:
                    condition.notify_all()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        notifier()
        thread.join()
        assert woke == [True]
        assert all(v.kind != "lock-order-cycle" for v in watch.violations())

    def test_sleep_while_holding_lock_is_flagged(self):
        watch = LockWatch()
        watch.install()
        try:
            lock = threading.Lock()
            with lock:
                time.sleep(0.01)
            time.sleep(0)  # cooperative yield: exempt even under a lock
        finally:
            watch.uninstall()
        kinds = [violation.kind for violation in watch.violations()]
        assert kinds == ["blocking-under-lock"]

    def test_install_uninstall_restores_threading(self):
        original_lock = threading.Lock
        watch = LockWatch()
        watch.install()
        try:
            assert threading.Lock is not original_lock
        finally:
            watch.uninstall()
        assert threading.Lock is original_lock

    def test_reset_clears_recorded_state(self):
        watch = LockWatch()
        lock_a = watch.wrap_lock("A")
        lock_b = watch.wrap_lock("B")
        with lock_a:
            with lock_b:
                pass
        assert watch.edges()
        watch.reset()
        assert watch.edges() == {} and watch.violations() == []

    def test_fleet_metrics_do_not_invert_against_the_registry(self):
        """Regression for the fleet-lock/registry-lock ordering cycle.

        The alive-workers gauge callback takes the fleet lock *under* the
        metrics-registry lock on every scrape; before this PR, completing or
        expiring a task touched registry metrics while holding the fleet
        lock — the two orders form a deadlock-capable cycle that lockwatch
        flags the moment both edges appear.
        """
        watch = LockWatch()
        watch.install()
        try:
            from repro.core.telemetry import MetricsRegistry

            registry = MetricsRegistry()
            fleet_lock = threading.Lock()  # stands in for WorkerFleet._lock

            alive_gauge = registry.gauge("repro_test_alive", "fleet liveness")

            def count_alive() -> float:
                with fleet_lock:
                    return 1.0

            alive_gauge.set_function(count_alive)
            completed = registry.counter("repro_test_completed_total", "completions")

            # The post-fix discipline: metric ops happen outside the fleet
            # lock, so scraping concurrently with completions stays acyclic.
            with fleet_lock:
                pass
            completed.inc()
            registry.render_prometheus()
            assert watch.violations() == []

            # The pre-fix bug, reconstructed: inc() under the fleet lock
            # closes the cycle against the scrape's registry->fleet order.
            completed.inc()  # ensure the registry lock edge exists
            with fleet_lock:
                completed.inc()
            cycles = [v for v in watch.violations() if v.kind == "lock-order-cycle"]
            assert cycles, watch.report()
        finally:
            watch.uninstall()
