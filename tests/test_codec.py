"""Tests for the versioned wire codec and every registered schema."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.accelerator import AcceleratorSimulator, DetectorStats, random_workload, sqdm_config
from repro.accelerator.config import PEConfig, dense_baseline_config
from repro.accelerator.controller import LayerExecutionResult
from repro.accelerator.energy import EnergyBreakdown, EnergyTable
from repro.accelerator.pe import ChannelGroupResult
from repro.accelerator.simulator import StepResult
from repro.core import codec
from repro.core.artifacts import ArtifactStoreStats, EvictionResult, MigrationResult
from repro.core.costs import CostSummary
from repro.core.pipeline import HardwareEvaluation, QuantizationEvaluation
from repro.core.report_cache import CacheStats
from repro.core.sparsity import TemporalSparsityTrace, TracedLayer
from repro.diffusion.fid import FeatureStatistics
from repro.serve.specs import (
    CallableJobSpec,
    QualityJobSpec,
    SimulateJobSpec,
    SweepJobResult,
    SweepJobSpec,
)


def make_trace(seed: int = 0, steps: int = 2, layers: int = 2):
    return [
        [
            random_workload(in_channels=8, spatial=4, seed=seed * 100 + 10 * s + n)
            for n in range(layers)
        ]
        for s in range(steps)
    ]


def make_report():
    return AcceleratorSimulator(sqdm_config()).run_trace(make_trace())


def make_columnar_batch():
    return AcceleratorSimulator(sqdm_config()).run_config_traces_columnar(
        [
            (sqdm_config(), [make_trace(0), make_trace(1)]),
            (sqdm_config(sparsity_threshold=0.8), [make_trace(2)]),
        ]
    )


def _energy(scale: float = 1.0) -> EnergyBreakdown:
    return EnergyBreakdown(
        mac_pj=1.0 * scale,
        local_buffer_pj=0.5 * scale,
        global_buffer_pj=2.0 * scale,
        dram_pj=3.0 * scale,
        noc_pj=0.25 * scale,
        detector_pj=0.125 * scale,
        idle_pj=4.0 * scale,
    )


def _group_result() -> ChannelGroupResult:
    return ChannelGroupResult(
        pe_name="dpe0",
        mode="dense",
        cycles=12.5,
        energy=_energy(),
        macs_executed=1024.0,
        macs_skipped=16.0,
        input_bytes=64.0,
        weight_bytes=128.0,
        output_bytes=32.0,
        num_channels=8,
    )


def _layer_result() -> LayerExecutionResult:
    return LayerExecutionResult(
        layer_name="enc.conv0",
        cycles=20.0,
        energy=_energy(2.0),
        total_macs=2048.0,
        executed_macs=1800.0,
        dense_channels=6,
        sparse_channels=2,
        pe_results=[_group_result()],
        dense_cycles=15.0,
        sparse_cycles=5.0,
    )


def _sparsity_trace() -> TemporalSparsityTrace:
    layer = TracedLayer(
        name="enc.conv0",
        block_name="enc.16x16_block0",
        in_channels=4,
        out_channels=4,
        kernel_size=3,
        height=8,
        width=8,
    )
    return TemporalSparsityTrace(
        layers=[layer],
        steps=[{"enc.conv0": np.array([0.1, 0.9, 0.4, 0.0])} for _ in range(2)],
        zero_tolerance_rel=1.0 / 30.0,
    )


#: One representative instance per registered schema name.  The coverage
#: test below fails when a schema is registered without a sample here, so
#: every schema stays round-trip-tested.
def sample_objects() -> dict[str, tuple]:
    report = make_report()
    trace = make_trace()
    return {
        "value": ({"a": 1, "b": [1.5, "x", None], "blob": b"\x00\x01", 4: "int-key"}, None),
        "pe_config": (PEConfig(multipliers=64), None),
        "accelerator_config": (sqdm_config(sparsity_threshold=0.4), None),
        "energy_table": (EnergyTable(), None),
        "energy_breakdown": (_energy(), None),
        "conv_layer_workload": (random_workload(in_channels=8, spatial=4), None),
        "workload_trace": (trace, "workload_trace"),
        "traced_layer": (_sparsity_trace().layers[0], None),
        "sparsity_trace": (_sparsity_trace(), None),
        "channel_group_result": (_group_result(), None),
        "layer_execution_result": (_layer_result(), None),
        "step_result": (
            StepResult(time_step=1, cycles=20.0, energy=_energy(), layer_results=[_layer_result()]),
            None,
        ),
        "detector_stats": (DetectorStats(updates_performed=4, channels_evaluated=96), None),
        "simulation_report": (report, None),
        "cost_summary": (CostSummary(1.0, 2.0, 3.0, 4.0), None),
        "quantization_evaluation": (
            QuantizationEvaluation(
                workload="cifar10",
                scheme="INT4-VSQ",
                fid=12.5,
                costs=CostSummary(1.0, 2.0, 3.0, 4.0),
                relu_based=True,
            ),
            None,
        ),
        "hardware_evaluation": (
            HardwareEvaluation(
                workload="cifar10",
                sqdm_report=report,
                dense_baseline_report=report,
                fp16_dense_report=report,
                average_sparsity=0.55,
            ),
            None,
        ),
        "feature_statistics": (
            FeatureStatistics(mean=np.arange(4.0), cov=np.eye(4), num_samples=64),
            None,
        ),
        "cache_stats": (CacheStats(hits=3, disk_hits=2, misses=1), None),
        "artifact_store_stats": (ArtifactStoreStats(hits=1, misses=2, writes=3), None),
        "eviction_result": (EvictionResult(removed=2, reclaimed_bytes=4096), None),
        "migration_result": (MigrationResult(migrated=3, already_current=1, failed=0), None),
        "simulate_spec": (SimulateJobSpec(config=sqdm_config(), trace=trace), None),
        "quality_spec": (
            QualityJobSpec(workload="cifar10", scheme="MXINT8", pipeline_overrides={"seed": 1}),
            None,
        ),
        "callable_spec": (
            CallableJobSpec(function="evaluate_quality", args=(1, "x"), kwargs={"k": [1, 2]}),
            None,
        ),
        "sweep_spec": (
            SweepJobSpec(
                base=sqdm_config(),
                grid={"sparsity_threshold": [0.1, 0.3], "num_spe": [1, 2]},
                trace=trace,
                baseline=dense_baseline_config(),
                name="grid",
            ),
            None,
        ),
        "columnar_report_batch": (make_columnar_batch(), None),
        "sweep_result": (
            SweepJobResult(
                name="grid",
                params=[{"sparsity_threshold": 0.1}, {"sparsity_threshold": 0.3}],
                # Mixed stored forms: an eager report and a still-columnar
                # single-trace slice, the two shapes @2 carries on the wire.
                reports=[report, make_columnar_batch().slice_trace(0)],
                baseline=report,
            ),
            None,
        ),
    }


class TestEverySchemaRoundTrips:
    """Acceptance: ``decode(encode(x)) == x`` (JSON-identically) per schema."""

    def test_every_registered_schema_has_a_sample(self):
        samples = set(sample_objects())
        registered = {
            name for name in codec.registered_schemas() if not name.startswith("test ")
        }
        missing = registered - samples - _TEST_ONLY_SCHEMAS
        assert not missing, f"registered schemas without a round-trip sample: {sorted(missing)}"

    @pytest.mark.parametrize("schema_name", sorted(sample_objects()))
    def test_roundtrip(self, schema_name):
        obj, explicit_name = sample_objects()[schema_name]
        assert codec.roundtrip_equal(obj, name=explicit_name), schema_name

    @pytest.mark.parametrize("schema_name", sorted(sample_objects()))
    def test_envelope_is_pure_json_and_tagged(self, schema_name):
        obj, explicit_name = sample_objects()[schema_name]
        envelope = codec.encode(obj, name=explicit_name)
        assert envelope[codec.SCHEMA_KEY].startswith(f"{schema_name}@")
        json.dumps(envelope)  # must serialize without custom encoders

    def test_simulation_report_values_bit_identical(self):
        report = make_report()
        decoded = codec.decode(codec.encode(report))
        assert decoded.total_cycles == report.total_cycles
        assert decoded.total_energy.total_pj == report.total_energy.total_pj
        assert decoded.total_macs == report.total_macs
        assert len(decoded.step_results) == len(report.step_results)

    def test_simulation_report_detector_stats_round_trip_and_skew(self):
        """Per-report detector stats survive the wire, and reports encoded
        before the field existed still decode (to None)."""
        report = make_report()
        assert report.detector_stats is not None
        decoded = codec.decode(codec.encode(report))
        assert decoded.detector_stats == report.detector_stats
        legacy = codec.encode(report)
        del legacy["detector_stats"]
        assert codec.decode(legacy).detector_stats is None


class TestRegistry:
    def test_unknown_schema_name_rejected_with_known_names(self):
        with pytest.raises(codec.UnknownSchemaError, match="known schemas"):
            codec.decode({"$schema": "warp_drive@1"})

    def test_unknown_schema_version_rejected_with_known_versions(self):
        with pytest.raises(codec.UnknownSchemaError, match=r"version\(s\) \[1\]"):
            codec.decode({"$schema": "simulation_report@99"})

    def test_malformed_tag_rejected(self):
        with pytest.raises(codec.SchemaError, match="malformed"):
            codec.decode({"$schema": "no-version-here"})
        with pytest.raises(codec.SchemaError, match="envelope"):
            codec.decode(["not", "an", "envelope"])

    def test_duplicate_registration_rejected(self):
        codec.register_schema(
            "test duplicate", 1, lambda o, c: {}, lambda d, c: None
        )
        with pytest.raises(ValueError, match="already registered"):
            codec.register_schema(
                "test duplicate", 1, lambda o, c: {}, lambda d, c: None
            )

    def test_latest_version_wins_type_dispatch(self):
        class Toy:
            def __init__(self, x):
                self.x = x

        codec.register_schema(
            "test toy", 1, lambda o, c: {"x": o.x}, lambda d, c: Toy(d["x"]), type=Toy
        )
        codec.register_schema(
            "test toy",
            2,
            lambda o, c: {"x": o.x, "twice": o.x * 2},
            lambda d, c: Toy(d["x"]),
            type=Toy,
        )
        envelope = codec.encode(Toy(3))
        assert envelope["$schema"] == "test toy@2" and envelope["twice"] == 6
        # the old version stays decodable (stored artifacts, older clients)
        assert codec.decode({"$schema": "test toy@1", "x": 5}).x == 5

    def test_unregistered_type_rejected_with_guidance(self):
        class Stranger:
            pass

        with pytest.raises(codec.SchemaError, match="register_schema"):
            codec.encode(Stranger())
        with pytest.raises(codec.SchemaError, match="not wire-encodable"):
            codec.encode_value(Stranger())

    def test_unknown_dataclass_field_tolerated(self):
        """A newer same-version writer may add minor fields; old readers drop them."""
        doc = codec.encode(CostSummary(1.0, 2.0, 3.0, 4.0))
        doc["bonus_field"] = 1
        decoded = codec.decode(doc)
        assert isinstance(decoded, CostSummary)
        assert not hasattr(decoded, "bonus_field")


class TestSchemaVersionSkew:
    """Old-reader/new-writer round-trips across the wire (ROADMAP follow-up).

    Two processes on different revisions share one wire: a *new writer* may
    (a) add minor fields under the same schema version — old readers must
    tolerate and ignore them — or (b) bump the schema version for an
    incompatible layout — old readers must reject it naming the versions
    they do know, never misparse it.
    """

    def test_new_writer_minor_fields_survive_old_reader_roundtrip(self):
        # Simulate the new writer: a same-version envelope with extra minor
        # fields, serialized to the JSON the old reader actually receives.
        envelope = codec.encode(QualityJobSpec(workload="cifar10", scheme="MXINT8"))
        envelope["priority"] = 7  # minor addition the old reader predates
        envelope["submitted_by"] = "new-writer"
        wire = json.dumps(envelope, sort_keys=True)

        decoded = codec.loads(wire)  # the old reader's view
        assert decoded == QualityJobSpec(workload="cifar10", scheme="MXINT8")
        # Re-encoding on the old side produces a clean same-version envelope.
        assert codec.encode(decoded)[codec.SCHEMA_KEY] == "quality_spec@1"

    def test_nested_minor_fields_tolerated(self):
        """Skew applies per envelope: extras inside *nested* envelopes drop too."""
        spec = SimulateJobSpec(config=sqdm_config(), trace=make_trace())
        envelope = codec.encode(spec)
        envelope["config"]["fab_node_nm"] = 3  # newer accelerator_config writer
        decoded = codec.loads(json.dumps(envelope))
        assert decoded.config == sqdm_config()

    def test_unknown_schema_version_rejected_with_alternatives(self):
        """A version bump is a layout change: old readers refuse, citing what they know."""
        envelope = codec.encode(QualityJobSpec(workload="cifar10", scheme="MXINT8"))
        envelope[codec.SCHEMA_KEY] = "quality_spec@2"
        with pytest.raises(codec.UnknownSchemaError, match=r"version\(s\) \[1\]"):
            codec.loads(json.dumps(envelope))

    def test_unknown_version_rejected_before_payload_is_touched(self):
        """Rejection must come from the version gate, not from payload parsing."""
        with pytest.raises(codec.UnknownSchemaError, match="quality_spec"):
            codec.decode({codec.SCHEMA_KEY: "quality_spec@9", "garbage": object()})


#: Names registered by this module's own registry tests; excluded from the
#: sample-coverage check.
_TEST_ONLY_SCHEMAS = {"test duplicate", "test toy"}


class TestValueEncoding:
    def test_plain_lists_accepted_as_arrays(self):
        """Hand-written JSON (curl) may pass arrays as plain lists."""
        doc = codec.encode(random_workload(in_channels=4, spatial=4))
        doc["channel_sparsity"] = [0.5, 0.0, 0.9, 0.2]
        workload = codec.decode(doc)
        assert np.array_equal(workload.channel_sparsity, [0.5, 0.0, 0.9, 0.2])

    def test_ndarray_dtype_and_shape_preserved(self):
        array = np.arange(12, dtype=np.int32).reshape(3, 4)
        decoded = codec.decode_value(codec.encode_value(array))
        assert decoded.dtype == np.int32 and decoded.shape == (3, 4)
        assert np.array_equal(decoded, array)

    def test_non_string_and_reserved_dict_keys(self):
        value = {4: "int", (1, 2): "tuple", "$schema": "reserved", "plain": 1}
        decoded = codec.decode_value(codec.encode_value(value))
        assert decoded == value

    def test_sidecar_buffers_keep_json_small(self):
        array = np.arange(1024.0)
        buffers: list[bytes] = []
        envelope = codec.encode(array, arrays=buffers)
        assert len(buffers) == 1 and len(buffers[0]) == array.nbytes
        assert "data" not in json.dumps(envelope)  # no inline base64
        decoded = codec.decode(envelope, buffers=buffers)
        assert np.array_equal(decoded, array)

    def test_sidecar_buffer_out_of_range_rejected(self):
        buffers: list[bytes] = []
        envelope = codec.encode(np.arange(4.0), arrays=buffers)
        with pytest.raises(codec.SchemaError, match="out of range"):
            codec.decode(envelope, buffers=[])

    def test_corrupt_base64_rejected(self):
        with pytest.raises(codec.SchemaError, match="base64"):
            codec.decode_value({"$bytes": "!!! not base64 !!!"})

    def test_tuple_becomes_list(self):
        assert codec.decode_value(codec.encode_value((1, 2, 3))) == [1, 2, 3]

    def test_dumps_loads(self):
        config = sqdm_config()
        assert codec.loads(codec.dumps(config)) == config
