"""Tests for repro.nn.functional."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F


class TestActivations:
    def test_silu_at_zero(self):
        assert F.silu(np.array([0.0]))[0] == 0.0

    def test_silu_minimum_matches_paper(self):
        # The paper quotes the SiLU output range as [-0.278, inf).
        assert F.SILU_MIN == pytest.approx(-0.278, abs=1e-3)

    def test_silu_large_positive_is_identity(self):
        assert F.silu(np.array([50.0]))[0] == pytest.approx(50.0)

    def test_silu_never_below_minimum(self, rng):
        x = rng.normal(size=1000) * 10
        assert np.all(F.silu(x) >= F.SILU_MIN - 1e-9)

    def test_relu_clamps_negative(self):
        assert np.array_equal(F.relu(np.array([-1.0, 0.0, 2.0])), np.array([0.0, 0.0, 2.0]))

    def test_relu_output_nonnegative(self, rng):
        assert np.all(F.relu(rng.normal(size=100)) >= 0)

    def test_sigmoid_stable_for_large_inputs(self):
        assert F.sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert F.sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)

    def test_activation_fn_lookup(self):
        assert F.activation_fn("relu") is F.relu
        assert F.activation_fn("silu") is F.silu

    def test_activation_fn_unknown(self):
        with pytest.raises(ValueError):
            F.activation_fn("gelu")

    def test_relu_induces_about_half_sparsity_on_gaussian(self, rng):
        x = rng.normal(size=100000)
        sparsity = np.mean(F.relu(x) == 0)
        assert 0.45 < sparsity < 0.55


class TestConv2d:
    def test_identity_kernel(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        weight = np.zeros((1, 1, 3, 3))
        weight[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, weight, padding=1)
        assert np.allclose(out, x)

    def test_output_shape_same_padding(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        weight = rng.normal(size=(5, 3, 3, 3))
        assert F.conv2d(x, weight, padding=1).shape == (2, 5, 8, 8)

    def test_output_shape_stride2(self, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        weight = rng.normal(size=(4, 3, 3, 3))
        assert F.conv2d(x, weight, stride=2, padding=1).shape == (1, 4, 4, 4)

    def test_matches_direct_computation(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        weight = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(x, weight, padding=0)
        # Direct dot product at output position (0, 0).
        expected = np.sum(x[0, :, 0:3, 0:3] * weight[1])
        assert out[0, 1, 0, 0] == pytest.approx(expected)

    def test_bias_added_per_channel(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        weight = np.zeros((2, 2, 1, 1))
        bias = np.array([1.5, -2.0])
        out = F.conv2d(x, weight, bias=bias, padding=0)
        assert np.allclose(out[0, 0], 1.5)
        assert np.allclose(out[0, 1], -2.0)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(rng.normal(size=(1, 3, 4, 4)), rng.normal(size=(2, 4, 3, 3)))

    def test_conv_linear_in_input(self, rng):
        x1 = rng.normal(size=(1, 2, 6, 6))
        x2 = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        lhs = F.conv2d(x1 + x2, w, padding=1)
        rhs = F.conv2d(x1, w, padding=1) + F.conv2d(x2, w, padding=1)
        assert np.allclose(lhs, rhs)

    def test_empty_output_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(rng.normal(size=(1, 1, 2, 2)), rng.normal(size=(1, 1, 5, 5)), padding=0)


class TestLinearAndNorm:
    def test_linear_matches_matmul(self, rng):
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=3)
        assert np.allclose(F.linear(x, w, b), x @ w.T + b)

    def test_group_norm_zero_mean_unit_var(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(2, 8, 4, 4))
        out = F.group_norm(x, num_groups=2)
        grouped = out.reshape(2, 2, 4, 4, 4)
        assert np.allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-6)
        assert np.allclose(grouped.var(axis=(2, 3, 4)), 1.0, atol=1e-2)

    def test_group_norm_gamma_beta(self, rng):
        x = rng.normal(size=(1, 4, 4, 4))
        gamma = np.array([2.0, 2.0, 2.0, 2.0])
        beta = np.array([1.0, 1.0, 1.0, 1.0])
        out = F.group_norm(x, num_groups=4, gamma=gamma, beta=beta)
        base = F.group_norm(x, num_groups=4)
        assert np.allclose(out, base * 2.0 + 1.0)

    def test_group_norm_invalid_groups(self, rng):
        with pytest.raises(ValueError):
            F.group_norm(rng.normal(size=(1, 6, 2, 2)), num_groups=4)

    def test_softmax_sums_to_one(self, rng):
        x = rng.normal(size=(3, 7))
        assert np.allclose(F.softmax(x, axis=-1).sum(axis=-1), 1.0)

    def test_softmax_stable_for_large_values(self):
        out = F.softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(out, 0.5)


class TestAttentionAndResampling:
    def test_attention_output_shape(self, rng):
        q = rng.normal(size=(2, 1, 16, 8))
        out = F.scaled_dot_product_attention(q, q, q)
        assert out.shape == q.shape

    def test_attention_uniform_keys_average_values(self, rng):
        q = np.zeros((1, 1, 4, 8))
        k = np.zeros((1, 1, 4, 8))
        v = rng.normal(size=(1, 1, 4, 8))
        out = F.scaled_dot_product_attention(q, k, v)
        assert np.allclose(out, v.mean(axis=2, keepdims=True))

    def test_downsample_halves_spatial(self, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        assert F.downsample2x(x).shape == (1, 3, 4, 4)

    def test_downsample_averages(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.downsample2x(x)
        assert out[0, 0, 0, 0] == pytest.approx(np.mean([0, 1, 4, 5]))

    def test_downsample_odd_raises(self, rng):
        with pytest.raises(ValueError):
            F.downsample2x(rng.normal(size=(1, 1, 5, 5)))

    def test_upsample_doubles_spatial(self, rng):
        x = rng.normal(size=(1, 3, 4, 4))
        assert F.upsample2x(x).shape == (1, 3, 8, 8)

    def test_up_then_down_is_identity(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        assert np.allclose(F.downsample2x(F.upsample2x(x)), x)

    def test_positional_embedding_shape(self):
        emb = F.positional_embedding(np.array([0.1, 0.5]), dim=16)
        assert emb.shape == (2, 16)

    def test_positional_embedding_odd_dim_padded(self):
        emb = F.positional_embedding(np.array([0.3]), dim=9)
        assert emb.shape == (1, 9)

    def test_positional_embedding_distinguishes_values(self):
        emb = F.positional_embedding(np.array([0.0, 5.0]), dim=32)
        assert not np.allclose(emb[0], emb[1])
