"""Tests for datasets, proxy FID and the SiLU→ReLU adaptation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.datasets import DATASET_SPECS, dataset_names, load_dataset
from repro.diffusion.fid import (
    FIDEvaluator,
    RandomFeatureExtractor,
    compute_statistics,
    frechet_distance,
)
from repro.diffusion.finetune import adapt_to_relu, make_calibration_batch
from repro.nn.layers import Activation
from repro.nn.unet import EDMUNet, UNetConfig


class TestDatasets:
    def test_four_paper_datasets_present(self):
        assert dataset_names() == ["cifar10", "afhqv2", "ffhq", "imagenet"]
        assert set(DATASET_SPECS) == set(dataset_names())

    def test_load_dataset_shapes(self):
        ds = load_dataset("cifar10")
        assert ds.image_shape == (3, 16, 16)
        assert ds.reference_samples(4).shape == (4, 3, 16, 16)

    def test_paper_resolution_flag(self):
        ds = load_dataset("cifar10", paper_resolution=True)
        assert ds.image_shape[1] == 32

    def test_resolution_override(self):
        ds = load_dataset("ffhq", resolution=8)
        assert ds.image_shape == (3, 8, 8)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")

    def test_labels_match_class_count(self):
        ds = load_dataset("imagenet", resolution=8)
        labels = ds.reference_labels(6)
        assert labels.shape == (6, ds.num_classes)

    def test_sigma_data_reasonable(self):
        for name in dataset_names():
            ds = load_dataset(name, resolution=8)
            assert 0.1 < ds.sigma_data() < 2.0

    def test_reference_samples_seeded(self):
        ds = load_dataset("afhqv2", resolution=8)
        assert np.array_equal(ds.reference_samples(4, seed=3), ds.reference_samples(4, seed=3))
        assert not np.array_equal(ds.reference_samples(4, seed=3), ds.reference_samples(4, seed=4))

    def test_dataset_labels_strings(self):
        assert load_dataset("cifar10").label == "EDM1, CIFAR-10"
        assert load_dataset("imagenet", resolution=8).label == "EDM2, ImageNet"


class TestFID:
    def test_feature_extractor_shape(self, rng):
        extractor = RandomFeatureExtractor(feature_dim=32)
        feats = extractor.extract(rng.normal(size=(6, 3, 16, 16)))
        assert feats.shape == (6, 32)

    def test_statistics_require_two_samples(self, rng):
        with pytest.raises(ValueError):
            compute_statistics(rng.normal(size=(1, 8)))

    def test_frechet_distance_zero_for_identical(self, rng):
        stats = compute_statistics(rng.normal(size=(64, 8)))
        assert frechet_distance(stats, stats) == pytest.approx(0.0, abs=1e-6)

    def test_frechet_distance_grows_with_mean_shift(self, rng):
        base = rng.normal(size=(256, 8))
        stats0 = compute_statistics(base)
        small = compute_statistics(base + 0.1)
        large = compute_statistics(base + 2.0)
        assert frechet_distance(stats0, large) > frechet_distance(stats0, small)

    def test_fid_evaluator_requires_reference(self, rng):
        evaluator = FIDEvaluator()
        with pytest.raises(RuntimeError):
            evaluator.fid(rng.normal(size=(4, 3, 16, 16)))

    def test_fid_lower_for_matching_distribution(self):
        ds = load_dataset("cifar10", resolution=8)
        evaluator = FIDEvaluator()
        evaluator.set_reference(ds.reference_samples(256, seed=0))
        matched = evaluator.fid(ds.reference_samples(128, seed=1))
        mismatched = evaluator.fid(np.random.default_rng(0).normal(size=(128, 3, 8, 8)) * 2)
        assert matched < mismatched

    def test_fid_nonnegative(self):
        ds = load_dataset("cifar10", resolution=8)
        evaluator = FIDEvaluator()
        evaluator.set_reference(ds.reference_samples(128))
        assert evaluator.fid(ds.reference_samples(64, seed=5)) >= 0.0


class TestReLUAdaptation:
    @pytest.fixture()
    def silu_model(self):
        return EDMUNet(UNetConfig(img_resolution=8, model_channels=8, channel_mult=(1, 2), seed=5))

    def test_adaptation_returns_relu_model(self, silu_model):
        batch = make_calibration_batch((3, 8, 8), batch_size=2)
        relu_model, report = adapt_to_relu(silu_model, batch)
        assert relu_model.config.activation == "relu"
        assert report.adjusted_convs > 0

    def test_original_model_untouched(self, silu_model):
        batch = make_calibration_batch((3, 8, 8), batch_size=2)
        weights_before = {k: v.copy() for k, v in silu_model.parameters().items()}
        adapt_to_relu(silu_model, batch)
        assert silu_model.config.activation == "silu"
        for key, value in silu_model.parameters().items():
            assert np.array_equal(value, weights_before[key])

    def test_adapted_model_closer_than_naive_swap(self, silu_model):
        import copy

        batch = make_calibration_batch((3, 8, 8), batch_size=2)
        relu_model, _ = adapt_to_relu(silu_model, batch)
        naive = copy.deepcopy(silu_model)
        naive.set_activation("relu")

        reference = silu_model(batch.images, batch.noise_cond)
        adapted_err = np.linalg.norm(relu_model(batch.images, batch.noise_cond) - reference)
        naive_err = np.linalg.norm(naive(batch.images, batch.noise_cond) - reference)
        assert adapted_err <= naive_err * 1.05

    def test_relu_model_is_sparse(self, silu_model, rng):
        batch = make_calibration_batch((3, 8, 8), batch_size=2)
        relu_model, _ = adapt_to_relu(silu_model, batch)
        relu_model.set_recording(True)
        relu_model(rng.normal(size=(2, 3, 8, 8)), np.full(2, 0.1))
        sparsities = [
            float(np.mean(m.last_output == 0))
            for _, m in relu_model.named_modules()
            if isinstance(m, Activation) and m.last_output is not None and m.last_output.ndim == 4
        ]
        assert np.mean(sparsities) > 0.3

    def test_calibration_batch_with_labels(self):
        batch = make_calibration_batch((3, 8, 8), batch_size=3, label_dim=5)
        assert batch.labels is not None and batch.labels.shape == (3, 5)
        assert np.allclose(batch.labels.sum(axis=1), 1.0)
