"""Tests for the fleet evaluation service: batched simulation, jobs, CLI."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.accelerator import (
    AcceleratorSimulator,
    dense_baseline_config,
    random_workload,
    sqdm_config,
)
from repro.accelerator.backends import resolve_backend_name
from repro.core.artifacts import ArtifactStore
from repro.core.experiments import run_sweep
from repro.core.report_cache import ReportCache
from repro.serve import (
    BatchStats,
    CallableJobSpec,
    EvaluationService,
    JobFailedError,
    JobStatus,
    SimulationRequest,
    SweepJobSpec,
    coalesce_requests,
    register_wire_function,
    run_batched,
)
from repro.serve import service as service_module
from repro.serve.cli import main as cli_main


def make_trace(seed: int, steps: int = 3, layers: int = 2, in_channels: int = 24):
    return [
        [
            random_workload(
                in_channels=in_channels,
                spatial=6,
                seed=seed * 100 + 10 * s + layer,
                name=f"layer{layer}",
            )
            for layer in range(layers)
        ]
        for s in range(steps)
    ]


# -- cross-trace batched backend entry point ------------------------------------


class TestRunTraces:
    def test_batched_reports_bit_identical_to_per_trace_runs(self):
        """Acceptance: run_traces batches >=2 traces in one call and matches
        per-trace runs to (better than) 1e-9 relative."""
        config = sqdm_config(sparsity_update_period=2)
        traces = [make_trace(seed) for seed in range(4)]
        batched = AcceleratorSimulator(config).run_traces(traces)
        assert len(batched) == 4
        for trace, report in zip(traces, batched):
            single = AcceleratorSimulator(config).run_trace(trace)
            assert report.total_cycles == single.total_cycles  # bit-identical
            assert report.total_energy.total_pj == single.total_energy.total_pj
            assert len(report.step_results) == len(single.step_results)
            for batched_step, single_step in zip(report.step_results, single.step_results):
                assert batched_step.cycles == single_step.cycles
                for batched_layer, single_layer in zip(
                    batched_step.layer_results, single_step.layer_results
                ):
                    assert batched_layer.cycles == single_layer.cycles
                    assert batched_layer.energy.total_pj == single_layer.energy.total_pj

    def test_detector_schedule_isolated_per_trace(self):
        """Stale-classification reuse must not leak between batch members."""
        config = sqdm_config(sparsity_update_period=3)
        trace = make_trace(7, steps=5)
        simulator = AcceleratorSimulator(config)
        single = simulator.run_trace(trace)
        single_updates = simulator.detector_stats.updates_performed
        batched = simulator.run_traces([trace, trace, trace])
        for report in batched:
            assert report.total_cycles == single.total_cycles
        # batch totals are the sum of per-trace detector activity
        assert simulator.detector_stats.updates_performed == 3 * single_updates

    def test_empty_batch_and_empty_members(self):
        simulator = AcceleratorSimulator(sqdm_config())
        assert simulator.run_traces([]) == []
        reports = simulator.run_traces([[], make_trace(1), [[]]])
        assert reports[0].total_cycles == 0.0 and reports[0].step_results == []
        assert reports[1].total_cycles > 0.0
        assert reports[2].total_cycles == 0.0 and len(reports[2].step_results) == 1

    def test_reference_backend_runs_traces_sequentially(self):
        traces = [make_trace(seed) for seed in range(2)]
        reference = AcceleratorSimulator(sqdm_config(), backend="reference")
        reports = reference.run_traces(traces)
        for trace, report in zip(traces, reports):
            single = AcceleratorSimulator(sqdm_config(), backend="reference").run_trace(trace)
            assert report.total_cycles == pytest.approx(single.total_cycles, rel=1e-12)

    def test_mixed_precision_batch(self):
        """Traces with different per-layer precisions batch correctly."""
        config = sqdm_config()
        lowp = make_trace(3)
        highp = [[w.replace(weight_bits=16, act_bits=16) for w in step] for step in lowp]
        batched = AcceleratorSimulator(config).run_traces([lowp, highp])
        assert batched[0].total_cycles == AcceleratorSimulator(config).run_trace(lowp).total_cycles
        assert batched[1].total_cycles == AcceleratorSimulator(config).run_trace(highp).total_cycles


# -- coalescing scheduler --------------------------------------------------------


class TestRunBatched:
    def test_results_in_request_order_and_coalesced(self, monkeypatch):
        trace_a, trace_b = make_trace(1), make_trace(2)
        sqdm, dense = sqdm_config(), dense_baseline_config()
        requests = [
            SimulationRequest(sqdm, trace_a),
            SimulationRequest(dense, trace_a),
            SimulationRequest(sqdm, trace_b),
            SimulationRequest(dense, trace_b),
        ]

        calls: list[list[int]] = []
        original = AcceleratorSimulator.run_config_traces_columnar

        def counting(self, entries):
            calls.append([len(traces) for _, traces in entries])
            return original(self, entries)

        monkeypatch.setattr(AcceleratorSimulator, "run_config_traces_columnar", counting)
        cache = ReportCache()
        stats = BatchStats()
        reports = run_batched(requests, cache=cache, stats=stats)

        # sqdm + dense share an energy table and backend, so the whole
        # request stream fuses into ONE cross-config kernel call.
        assert calls == [[2, 2]]
        assert stats.kernel_calls == 1
        assert stats.cross_config_calls == 1
        assert stats.configs_simulated == 2
        assert stats.traces_simulated == 4
        for request, report in zip(requests, reports):
            expected = AcceleratorSimulator(request.config).run_trace(request.trace)
            assert report.total_cycles == expected.total_cycles
            assert report.config_name == request.config.name

    def test_single_config_group_is_one_kernel_call(self, monkeypatch):
        """A group with one distinct configuration still costs exactly one
        kernel call (the columnar entry point) and counts as single-config."""
        calls: list[list[int]] = []
        original = AcceleratorSimulator.run_config_traces_columnar

        def counting(self, entries):
            calls.append([len(traces) for _, traces in entries])
            return original(self, entries)

        monkeypatch.setattr(AcceleratorSimulator, "run_config_traces_columnar", counting)
        requests = [SimulationRequest(sqdm_config(), make_trace(seed)) for seed in range(3)]
        stats = BatchStats()
        run_batched(requests, cache=ReportCache(), stats=stats)
        assert calls == [[3]]
        assert stats.kernel_calls == 1
        assert stats.single_config_calls == 1
        assert stats.cross_config_calls == 0

    def test_duplicate_requests_simulated_once(self):
        trace = make_trace(5)
        cache = ReportCache()
        requests = [SimulationRequest(sqdm_config(), trace) for _ in range(3)]
        reports = run_batched(requests, cache=cache)
        assert cache.stats.misses == 1
        assert reports[0] is reports[1] is reports[2]

    def test_cached_requests_not_resimulated(self):
        trace = make_trace(6)
        cache = ReportCache()
        first = run_batched([SimulationRequest(sqdm_config(), trace)], cache=cache)
        second = run_batched([SimulationRequest(sqdm_config(), trace)], cache=cache)
        assert second[0] is first[0]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_coalesce_groups_by_energy_table_and_backend(self):
        """Configs no longer split groups — only energy table and backend do."""
        trace = make_trace(7)
        groups = coalesce_requests(
            [
                SimulationRequest(sqdm_config(), trace),
                SimulationRequest(sqdm_config(), make_trace(8)),
                SimulationRequest(dense_baseline_config(), trace),
                SimulationRequest(sqdm_config(), trace, backend="reference"),
            ]
        )
        # sqdm x2 + dense coalesce (same table/backend); reference stays apart
        assert [len(g) for g in groups] == [3, 1]


# -- evaluation service ----------------------------------------------------------


def _module_level_square(x):
    return x * x


def _module_level_boom():
    raise RuntimeError("boom")


class TestEvaluationService:
    def test_simulation_jobs_coalesce_and_complete(self, monkeypatch):
        calls: list[int] = []
        original = AcceleratorSimulator.run_config_traces_columnar

        def counting(self, entries):
            calls.append(sum(len(traces) for _, traces in entries))
            return original(self, entries)

        monkeypatch.setattr(AcceleratorSimulator, "run_config_traces_columnar", counting)

        traces = [make_trace(seed) for seed in range(4)]
        cache = ReportCache()
        with EvaluationService(cache=cache, max_workers=2) as service:
            jobs = [service.submit_simulation(sqdm_config(), trace) for trace in traces]
            reports = [job.result(timeout=60) for job in jobs]
        for trace, report in zip(traces, reports):
            expected = AcceleratorSimulator(sqdm_config()).run_trace(trace)
            assert report.total_cycles == expected.total_cycles
        # all four unique traces were simulated, in fewer batched calls
        assert sum(calls) == 4 and len(calls) < 4

    def test_callable_jobs_and_status(self):
        with EvaluationService(max_workers=2) as service:
            job = service.submit(_module_level_square, 7)
            assert job.result(timeout=30) == 49
            assert service.status(job.id) is JobStatus.DONE
            assert service.job(job.id).summary()["status"] == "done"
            with pytest.raises(KeyError):
                service.job("job-9999")

    def test_failed_job_reports_error(self):
        with EvaluationService(max_workers=1) as service:
            job = service.submit(_module_level_boom)
            job.wait(30)
            assert job.status is JobStatus.FAILED
            with pytest.raises(JobFailedError, match="boom"):
                job.result()

    def test_sampling_job_runs_in_separate_process(self):
        with EvaluationService(process_workers=1) as service:
            job = service.submit_sampling(os.getpid)
            worker_pid = job.result(timeout=120)
        assert worker_pid != os.getpid()

    def test_unpicklable_sampling_job_fails_fast(self):
        with EvaluationService() as service:
            with pytest.raises(ValueError, match="picklable"):
                service.submit_sampling(lambda: 1)
        # nothing was queued, so the failure cannot have come from the pool
        assert service.jobs() == []

    def test_submit_after_close_rejected(self):
        service = EvaluationService(max_workers=1)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(_module_level_square, 2)

    def test_wait_all(self):
        with EvaluationService(max_workers=2) as service:
            jobs = [service.submit(_module_level_square, i) for i in range(5)]
            assert service.wait_all(jobs, timeout=60)
            assert [job.result_value for job in jobs] == [0, 1, 4, 9, 16]

    def test_completed_job_history_is_bounded(self):
        """A long-lived service must not pin every finished job forever."""
        with EvaluationService(max_workers=2, history_limit=3) as service:
            jobs = [service.submit(_module_level_square, i) for i in range(8)]
            assert service.wait_all(jobs, timeout=60)
            final = service.submit(_module_level_square, 99)  # triggers pruning
            assert final.result(timeout=30) == 99 * 99
            assert len(service.jobs()) <= 4  # 3 retained terminal + the new one
            # retired jobs lose id-based lookup, but the handles still work
            assert jobs[0].result_value == 0
            with pytest.raises(KeyError):
                service.job(jobs[0].id)


class TestSweepJobs:
    """Server-side sweep planning through the in-process service."""

    def test_submit_sweep_plans_batches_and_caches(self):
        trace = make_trace(9)
        cache = ReportCache()
        spec = SweepJobSpec(
            base=sqdm_config(),
            grid={"sparsity_threshold": [0.1, 0.5]},
            trace=trace,
            baseline=dense_baseline_config(),
            name="local-grid",
        )
        with EvaluationService(cache=cache, max_workers=2) as service:
            first = service.submit_sweep(spec).result(timeout=120)
            second = service.submit_sweep(spec).result(timeout=120)
        assert first.params == [{"sparsity_threshold": 0.1}, {"sparsity_threshold": 0.5}]
        for params, report in zip(first.params, first.reports):
            expected = AcceleratorSimulator(sqdm_config(**params)).run_trace(trace)
            assert report.total_cycles == expected.total_cycles
        baseline = AcceleratorSimulator(dense_baseline_config()).run_trace(trace)
        assert first.baseline.total_cycles == baseline.total_cycles
        # the identical second sweep was served entirely from the cache
        assert cache.stats.misses == 3
        for again, once in zip(second.reports, first.reports):
            assert again.total_cycles == once.total_cycles

    def test_sweep_fuses_into_one_kernel_call_and_exposes_stats(self):
        """A server-planned sweep (grid + baseline, shared table/backend)
        dispatches as ONE cross-config kernel call, visible in service_stats."""
        spec = SweepJobSpec(
            base=sqdm_config(),
            grid={"sparsity_threshold": [0.1, 0.3, 0.5]},
            trace=make_trace(12),
            baseline=dense_baseline_config(),
        )
        with EvaluationService(cache=ReportCache(), max_workers=2) as service:
            assert service.submit_sweep(spec).result(timeout=120) is not None
            scheduler = service.service_stats()["scheduler"]
        assert scheduler == {
            "kernel_calls": 1,
            "cross_config_calls": 1,
            "single_config_calls": 0,
            "configs_simulated": 4,
            "traces_simulated": 4,
        }

    def test_sweep_without_baseline(self):
        spec = SweepJobSpec(
            base=sqdm_config(), grid={"num_spe": [1, 2]}, trace=make_trace(10)
        )
        with EvaluationService(cache=ReportCache(), max_workers=2) as service:
            outcome = service.submit_sweep(spec).result(timeout=120)
        assert outcome.baseline is None and len(outcome.reports) == 2

    def test_invalid_grid_rejected_at_submit(self):
        with pytest.raises(ValueError, match="sweepable"):
            SweepJobSpec(base=sqdm_config(), grid={"warp_factor": [9]}, trace=make_trace(1))
        with EvaluationService(cache=ReportCache(), max_workers=1) as service:
            # a value the config itself rejects also fails at submission
            spec = SweepJobSpec(
                base=sqdm_config(), grid={"sparsity_threshold": [1.5]}, trace=make_trace(1)
            )
            with pytest.raises(ValueError, match="sparsity_threshold"):
                service.submit_sweep(spec)
            assert service.jobs() == []

    def test_sweep_failure_marks_job_failed(self, monkeypatch):
        def explode(self, entries):
            raise RuntimeError("sim exploded")

        monkeypatch.setattr(AcceleratorSimulator, "run_config_traces_columnar", explode)
        spec = SweepJobSpec(
            base=sqdm_config(), grid={"sparsity_threshold": [0.2]}, trace=make_trace(3)
        )
        with EvaluationService(cache=ReportCache(), max_workers=1) as service:
            job = service.submit_sweep(spec)
            assert job.wait(30)
            assert job.status is JobStatus.FAILED
            with pytest.raises(JobFailedError, match="sim exploded"):
                job.result()

    def test_cancel_queued_sweep_never_simulates(self, monkeypatch):
        """A sweep cancelled while still queued is skipped at dispatch."""
        drained, proceed = threading.Event(), threading.Event()
        original_coalesce = service_module.coalesce_requests

        def gated(requests):
            if requests:
                drained.set()
                proceed.wait(30)
            return original_coalesce(requests)

        monkeypatch.setattr(service_module, "coalesce_requests", gated)

        simulated: list[int] = []
        original_run = AcceleratorSimulator.run_config_traces_columnar

        def counting(self, entries):
            simulated.append(sum(len(traces) for _, traces in entries))
            return original_run(self, entries)

        monkeypatch.setattr(AcceleratorSimulator, "run_config_traces_columnar", counting)

        with EvaluationService(cache=ReportCache(), max_workers=2) as service:
            blocker = service.submit_simulation(sqdm_config(), make_trace(1))
            assert drained.wait(30), "scheduler never drained the queue"
            sweep_job = service.submit_sweep(
                SweepJobSpec(
                    base=sqdm_config(),
                    grid={"sparsity_threshold": [0.2, 0.4]},
                    trace=make_trace(2),
                )
            )
            assert service.cancel(sweep_job.id) is True
            proceed.set()
            assert blocker.result(timeout=60) is not None
            assert sweep_job.wait(30)
            assert sweep_job.status is JobStatus.CANCELLED
        assert simulated == [1], "cancelled sweep was simulated anyway"

    def test_submit_spec_dispatches_by_type(self):
        register_wire_function("serve-test-double", _module_level_square)
        with EvaluationService(cache=ReportCache(), max_workers=1) as service:
            job = service.submit_spec(
                CallableJobSpec(function="serve-test-double", args=(6,))
            )
            assert job.result(timeout=30) == 36
            with pytest.raises(ValueError, match="unknown wire function"):
                service.submit_spec(CallableJobSpec(function="nope"))
            with pytest.raises(TypeError, match="not a job spec"):
                service.submit_spec({"kind": "dict"})


def _module_level_wait(event):
    event.wait(30)
    return "ran"


class TestCancellation:
    def test_cancel_between_coalescing_and_dispatch(self, monkeypatch):
        """Regression: a pending job cancelled after the scheduler drained it
        (so it is no longer in the queue) but before a worker claimed it must
        report CANCELLED and must not be simulated."""
        drained, proceed = threading.Event(), threading.Event()
        original_coalesce = service_module.coalesce_requests

        def gated(requests):
            groups = original_coalesce(requests)
            if requests:  # only gate the drain that carries our job
                drained.set()
                proceed.wait(30)
            return groups

        monkeypatch.setattr(service_module, "coalesce_requests", gated)

        simulated: list[int] = []
        original_run = AcceleratorSimulator.run_config_traces_columnar

        def counting(self, entries):
            simulated.append(sum(len(traces) for _, traces in entries))
            return original_run(self, entries)

        monkeypatch.setattr(AcceleratorSimulator, "run_config_traces_columnar", counting)

        with EvaluationService(cache=ReportCache(), max_workers=2) as service:
            job = service.submit_simulation(sqdm_config(), make_trace(1))
            assert drained.wait(30), "scheduler never drained the queue"
            assert service.cancel(job.id) is True
            proceed.set()
            assert job.wait(30)
            assert job.status is JobStatus.CANCELLED
            with pytest.raises(JobFailedError, match="cancel"):
                job.result()
        assert simulated == [], "cancelled job was simulated anyway"

    def test_cancelled_callable_never_runs(self):
        """A callable queued behind a busy pool is cancellable until it starts."""
        gate = threading.Event()
        ran: list[int] = []
        with EvaluationService(max_workers=1) as service:
            blocker = service.submit(_module_level_wait, gate)
            victims = [service.submit(ran.append, i) for i in range(3)]
            cancelled = [service.cancel(job.id) for job in victims]
            gate.set()
            blocker.wait(30)
        assert all(cancelled)
        assert ran == []
        assert all(job.status is JobStatus.CANCELLED for job in victims)

    def test_cancel_finished_job_returns_false(self):
        with EvaluationService(max_workers=1) as service:
            job = service.submit(_module_level_square, 3)
            assert job.result(timeout=30) == 9
            assert service.cancel(job.id) is False
            assert job.status is JobStatus.DONE
            with pytest.raises(KeyError):
                service.cancel("job-9999")

    def test_cancelled_count_in_service_stats(self):
        gate = threading.Event()
        with EvaluationService(max_workers=1) as service:
            blocker = service.submit(_module_level_wait, gate)
            victim = service.submit(_module_level_square, 1)
            assert service.cancel(victim.id)
            stats = service.service_stats()
            gate.set()
            blocker.wait(30)
        assert stats["cancelled"] == 1
        assert stats["submitted"]["callable"] == 2


class TestSingleFlight:
    def test_duplicate_requests_across_drains_simulate_once(self, monkeypatch):
        """Identical simulation jobs arriving while their batch is in flight
        attach to it instead of re-simulating (N clients, one sweep)."""
        release = threading.Event()
        simulated: list[int] = []
        original_run = AcceleratorSimulator.run_config_traces_columnar

        def slow_counting(self, entries):
            release.wait(30)
            simulated.append(sum(len(traces) for _, traces in entries))
            return original_run(self, entries)

        monkeypatch.setattr(AcceleratorSimulator, "run_config_traces_columnar", slow_counting)

        trace = make_trace(11)
        cache = ReportCache()
        with EvaluationService(cache=cache, max_workers=4) as service:
            first = service.submit_simulation(sqdm_config(), trace)
            # Wait until the first job's batch is claimed, then submit
            # duplicates in later drains; they must attach, not re-simulate.
            deadline = time.monotonic() + 30
            while first.status is not JobStatus.RUNNING and time.monotonic() < deadline:
                time.sleep(0.005)
            followers = [service.submit_simulation(sqdm_config(), trace) for _ in range(3)]
            while (
                service.service_stats()["coalesced_attached"] < 3
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            release.set()
            reports = [job.result(timeout=60) for job in (first, *followers)]
        assert simulated == [1], f"expected one batched pass, saw {simulated}"
        assert cache.stats.misses == 1
        assert all(report.total_cycles == reports[0].total_cycles for report in reports)
        assert service.service_stats()["coalesced_attached"] == 3


class TestServiceExecutorSweeps:
    def test_run_sweep_on_ephemeral_service(self):
        result = run_sweep(lambda a, b: a * 10 + b, {"a": [1, 2], "b": [3, 4]}, executor="service")
        assert result.values() == [13, 14, 23, 24]

    def test_run_sweep_on_shared_service_captures_errors(self):
        def flaky(i):
            if i == 1:
                raise RuntimeError("nope")
            return i

        with EvaluationService(max_workers=2) as service:
            result = run_sweep(
                flaky, {"i": [0, 1, 2]}, executor="service", service=service, on_error="capture"
            )
        assert [case.ok for case in result.cases] == [True, False, True]
        assert result.cases[0].value == 0 and result.cases[2].value == 2


# -- satellite guards ------------------------------------------------------------


class TestEagerBackendValidation:
    def test_env_var_backend_validated_with_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "warp_drive")
        with pytest.raises(ValueError, match="REPRO_SIM_BACKEND") as excinfo:
            AcceleratorSimulator(sqdm_config())
        assert "reference" in str(excinfo.value) and "vectorized" in str(excinfo.value)

    def test_resolve_backend_name_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        assert resolve_backend_name() == "vectorized"
        monkeypatch.setenv("REPRO_SIM_BACKEND", "reference")
        assert resolve_backend_name() == "reference"
        assert resolve_backend_name("vectorized") == "vectorized"

    def test_explicit_argument_validated(self):
        with pytest.raises(ValueError, match="backend argument"):
            resolve_backend_name("cycle_accurate")

    def test_cache_key_validates_backend(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            ReportCache.key(sqdm_config(), [], backend="warp_drive")


class TestProcessSweepGuard:
    def test_unpicklable_case_function_fails_fast(self):
        captured = []  # makes the lambda a closure over a local -> unpicklable
        with pytest.raises(ValueError, match="picklable case function"):
            run_sweep(lambda i: captured.append(i), {"i": [0, 1]}, executor="process")

    def test_module_level_function_still_works(self):
        result = run_sweep(_module_level_square, {"x": [2, 3]}, executor="process")
        assert result.values() == [4, 9]


# -- CLI -------------------------------------------------------------------------


@pytest.fixture()
def cli_scale_args(tmp_path):
    return [
        "--workload", "cifar10",
        "--resolution", "8",
        "--sampling-steps", "2",
        "--trace-samples", "1",
        "--reference-samples", "16",
        "--fid-samples", "4",
        "--artifact-dir", str(tmp_path / "artifacts"),
    ]


class TestCLI:
    def test_sweep_cold_then_warm_reuses_artifacts(self, tmp_path, cli_scale_args, capsys):
        json_cold = tmp_path / "cold.json"
        json_warm = tmp_path / "warm.json"
        sweep_args = ["sweep", *cli_scale_args, "--param", "sparsity_threshold=0.2,0.4"]

        assert cli_main([*sweep_args, "--json", str(json_cold)]) == 0
        cold = json.loads(json_cold.read_text())
        assert cold["cache"]["misses"] > 0
        assert [case["params"]["sparsity_threshold"] for case in cold["cases"]] == [0.2, 0.4]
        for case in cold["cases"]:
            assert case["speedup_vs_dense_baseline"] > 0

        # The CLI builds a fresh in-memory cache per invocation, so this is
        # the cross-process path: everything must come from the store.
        assert cli_main([*sweep_args, "--json", str(json_warm)]) == 0
        warm = json.loads(json_warm.read_text())
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["hit_rate"] >= 0.9
        assert warm["cases"] == cold["cases"]
        assert "design points" in capsys.readouterr().out

    def test_evaluate_writes_summary_json(self, tmp_path, cli_scale_args):
        json_path = tmp_path / "eval.json"
        assert cli_main(["evaluate", *cli_scale_args, "--json", str(json_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["hardware"]["total_speedup"] > 1.0
        assert payload["quality"] == []

    def test_cache_stats_and_wipe(self, tmp_path, cli_scale_args, capsys):
        assert cli_main(["sweep", *cli_scale_args, "--param", "sparsity_threshold=0.3"]) == 0
        artifact_dir = cli_scale_args[-1]
        assert cli_main(["cache", "stats", "--artifact-dir", artifact_dir]) == 0
        assert "report" in capsys.readouterr().out
        assert cli_main(["cache", "wipe", "--artifact-dir", artifact_dir]) == 0
        assert ArtifactStore(artifact_dir).count() == 0

    def test_cache_without_dir_errors(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        assert cli_main(["cache", "stats"]) == 2
        assert "artifact" in capsys.readouterr().err

    def test_sweep_rejects_unknown_param(self, cli_scale_args):
        with pytest.raises(SystemExit):
            cli_main(["sweep", *cli_scale_args, "--param", "warp_factor=9"])


class TestConcurrentServiceTraffic:
    def test_many_clients_submitting_simultaneously(self):
        """Service survives a burst of mixed traffic from several threads."""
        cache = ReportCache()
        traces = [make_trace(seed) for seed in range(3)]
        with EvaluationService(cache=cache, max_workers=4) as service:
            jobs: list = []
            jobs_lock = threading.Lock()

            def client(seed: int) -> None:
                submitted = [
                    service.submit_simulation(sqdm_config(), traces[seed % 3]),
                    service.submit(_module_level_square, seed),
                ]
                with jobs_lock:
                    jobs.extend(submitted)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert service.wait_all(jobs, timeout=120)
        assert all(job.ok for job in jobs)
        # Three unique traces exist.  Concurrent drains may race benignly on a
        # key (both simulate, one insert wins), so misses can exceed 3 but
        # never the simulation-job count, and the cache stays deduplicated.
        assert 3 <= cache.stats.misses <= 6
        assert len(cache) == 3
