"""Tests for the accelerator building blocks: config, energy, memory, detector,
datapaths, address generation, NoC and PEs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    ActivationMapping,
    EnergyBreakdown,
    EnergyTable,
    GlobalBuffer,
    InterconnectNetwork,
    PEConfig,
    ProcessingElement,
    SparsityAwareAddressGenerator,
    TemporalSparsityDetector,
    WeightMapping,
    classify_channels,
    compress_channel,
    dense_baseline_config,
    measure_channel_sparsity,
    precision_packing_factor,
    random_workload,
    sqdm_config,
)
from repro.accelerator.datapath import DenseDatapath, SparseDatapath, balance_point
from repro.accelerator.energy import DEFAULT_ENERGY_TABLE


class TestConfig:
    def test_sqdm_config_one_dpe_one_spe(self):
        cfg = sqdm_config()
        assert cfg.num_dpe == 1 and cfg.num_spe == 1
        assert cfg.pe.multipliers == 128

    def test_baseline_is_two_dpes(self):
        cfg = dense_baseline_config()
        assert cfg.num_dpe == 2 and cfg.num_spe == 0

    def test_paper_default_threshold_and_period(self):
        cfg = sqdm_config()
        assert cfg.sparsity_threshold == pytest.approx(0.30)
        assert cfg.sparsity_update_period == 1

    def test_total_pes(self):
        assert sqdm_config().total_pes == 2

    def test_with_threshold_and_period_copies(self):
        cfg = sqdm_config()
        assert cfg.with_threshold(0.5).sparsity_threshold == 0.5
        assert cfg.with_update_period(4).sparsity_update_period == 4
        assert cfg.sparsity_threshold == 0.30  # original unchanged

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(num_dpe=0, num_spe=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(sparsity_threshold=1.5)
        with pytest.raises(ValueError):
            AcceleratorConfig(sparsity_update_period=0)
        with pytest.raises(ValueError):
            PEConfig(multipliers=0)
        with pytest.raises(ValueError):
            PEConfig(sparse_utilization=0.0)


class TestEnergy:
    def test_mac_energy_monotonic_in_bits(self):
        table = EnergyTable()
        assert table.mac_energy(4) < table.mac_energy(8) < table.mac_energy(16)

    def test_mac_energy_interpolates(self):
        table = EnergyTable()
        assert table.mac_energy(4) < table.mac_energy(6) < table.mac_energy(8)

    def test_mac_energy_clamps_out_of_range(self):
        table = EnergyTable()
        assert table.mac_energy(2) == table.mac_energy(4)
        assert table.mac_energy(64) == table.mac_energy(32)

    def test_breakdown_addition(self):
        a = EnergyBreakdown(mac_pj=1.0, dram_pj=2.0)
        b = EnergyBreakdown(mac_pj=3.0, noc_pj=1.0)
        total = a + b
        assert total.mac_pj == 4.0 and total.dram_pj == 2.0 and total.noc_pj == 1.0
        assert total.total_pj == pytest.approx(7.0)

    def test_breakdown_scaled(self):
        assert EnergyBreakdown(mac_pj=2.0).scaled(0.5).mac_pj == 1.0

    def test_breakdown_as_dict(self):
        d = EnergyBreakdown(mac_pj=1.0).as_dict()
        assert d["total_pj"] == 1.0 and "dram_pj" in d

    def test_memory_hierarchy_energy_ordering(self):
        table = DEFAULT_ENERGY_TABLE
        assert table.local_buffer_pj_per_byte < table.global_buffer_pj_per_byte
        assert table.global_buffer_pj_per_byte < table.dram_pj_per_byte


class TestMemoryMapping:
    def test_activation_channel_last_contiguous(self):
        mapping = ActivationMapping(channels=4, height=3, width=3)
        start, end = mapping.channel_slice(2)
        addresses = [mapping.address(2, y, x) for y in range(3) for x in range(3)]
        assert addresses == list(range(start, end))

    def test_activation_address_order_w_then_h_then_c(self):
        mapping = ActivationMapping(channels=2, height=2, width=2)
        assert mapping.address(0, 0, 1) == mapping.address(0, 0, 0) + 1
        assert mapping.address(0, 1, 0) == mapping.address(0, 0, 0) + 2
        assert mapping.address(1, 0, 0) == mapping.address(0, 0, 0) + 4

    def test_activation_out_of_range(self):
        mapping = ActivationMapping(channels=2, height=2, width=2)
        with pytest.raises(IndexError):
            mapping.address(2, 0, 0)
        with pytest.raises(IndexError):
            mapping.channel_slice(5)

    def test_activation_linearize_matches_addresses(self, rng):
        mapping = ActivationMapping(channels=3, height=2, width=2)
        tensor = rng.normal(size=(3, 2, 2))
        flat = mapping.linearize(tensor)
        assert flat[mapping.address(1, 1, 0)] == tensor[1, 1, 0]

    def test_weight_channel_last_contiguous(self):
        mapping = WeightMapping(out_channels=4, in_channels=3, kernel_h=3, kernel_w=3)
        start, end = mapping.channel_slice(1)
        assert end - start == 4 * 9
        addresses = [
            mapping.address(k, 1, r, s) for k in range(4) for r in range(3) for s in range(3)
        ]
        assert sorted(addresses) == list(range(start, end))

    def test_weight_linearize_groups_by_input_channel(self, rng):
        mapping = WeightMapping(out_channels=2, in_channels=2, kernel_h=1, kernel_w=1)
        tensor = rng.normal(size=(2, 2, 1, 1))
        flat = mapping.linearize(tensor)
        assert flat[mapping.address(1, 0, 0, 0)] == tensor[1, 0, 0, 0]

    def test_weight_out_of_range(self):
        mapping = WeightMapping(out_channels=2, in_channels=2, kernel_h=3, kernel_w=3)
        with pytest.raises(IndexError):
            mapping.address(0, 3, 0, 0)

    def test_compress_channel_roundtrip(self, rng):
        data = rng.normal(size=(4, 4))
        data[data < 0.3] = 0.0
        record = compress_channel(data, channel_index=5)
        assert record.channel == 5
        assert np.allclose(record.decompress().reshape(4, 4), data)

    def test_compressed_storage_smaller_when_sparse(self):
        dense_bits = 16 * 4
        data = np.zeros(16)
        data[0] = 1.0
        record = compress_channel(data, 0)
        assert record.storage_bits(value_bits=4) < dense_bits

    def test_global_buffer_traffic_accounting(self):
        buffer = GlobalBuffer(capacity_kib=1)
        buffer.read(100.0)
        buffer.write(50.0)
        assert buffer.total_traffic_bytes == 150.0
        assert buffer.fits(1024) and not buffer.fits(2048)
        buffer.reset()
        assert buffer.total_traffic_bytes == 0.0
        with pytest.raises(ValueError):
            buffer.read(-1)


class TestDetector:
    def test_classification_respects_threshold(self):
        sparsity = np.array([0.1, 0.3, 0.8, 0.0])
        cls = classify_channels(sparsity, threshold=0.3)
        assert list(cls.dense_channels) == [0, 3]
        assert list(cls.sparse_channels) == [1, 2]

    def test_classification_statistics(self):
        cls = classify_channels(np.array([0.0, 0.5, 0.9]), threshold=0.3)
        assert cls.sparse_fraction == pytest.approx(2 / 3)
        assert cls.sparse_group_sparsity == pytest.approx(0.7)
        assert cls.dense_group_sparsity == pytest.approx(0.0)

    def test_invalid_sparsity_rejected(self):
        with pytest.raises(ValueError):
            classify_channels(np.array([1.5]), 0.3)

    def test_measure_channel_sparsity_4d(self):
        x = np.ones((2, 3, 4, 4))
        x[:, 1] = 0.0
        assert np.allclose(measure_channel_sparsity(x), [0.0, 1.0, 0.0])

    def test_measure_channel_sparsity_with_tolerance(self):
        x = np.full((1, 1, 2, 2), 1e-4)
        assert measure_channel_sparsity(x, zero_tolerance=1e-3)[0] == 1.0

    def test_measure_channel_sparsity_bad_ndim(self):
        with pytest.raises(ValueError):
            measure_channel_sparsity(np.zeros((4,)))

    def test_detector_updates_every_step_by_default(self):
        detector = TemporalSparsityDetector(threshold=0.3, update_period=1)
        detector.observe("layer", 0, np.array([0.9, 0.1]))
        detector.observe("layer", 1, np.array([0.1, 0.9]))
        assert detector.updates_performed == 2

    def test_detector_reuses_stale_classification(self):
        detector = TemporalSparsityDetector(threshold=0.3, update_period=4)
        first = detector.observe("layer", 0, np.array([0.9, 0.1]))
        second = detector.observe("layer", 1, np.array([0.1, 0.9]))
        assert detector.updates_performed == 1
        # Channel grouping is stale (channel 0 still "sparse") ...
        assert np.array_equal(second.sparse_channels, first.sparse_channels)
        # ... but the reported sparsity reflects the current data.
        assert second.sparsity[0] == pytest.approx(0.1)

    def test_detector_refreshes_after_period(self):
        detector = TemporalSparsityDetector(threshold=0.3, update_period=2)
        detector.observe("layer", 0, np.array([0.9]))
        detector.observe("layer", 1, np.array([0.9]))
        detector.observe("layer", 2, np.array([0.9]))
        assert detector.updates_performed == 2

    def test_detector_reset(self):
        detector = TemporalSparsityDetector()
        detector.observe("layer", 0, np.array([0.5]))
        detector.reset()
        assert detector.updates_performed == 0
        assert detector.classification_for("layer") is None

    def test_detector_invalid_params(self):
        with pytest.raises(ValueError):
            TemporalSparsityDetector(threshold=2.0)
        with pytest.raises(ValueError):
            TemporalSparsityDetector(update_period=0)


class TestDatapaths:
    def test_precision_packing(self):
        assert precision_packing_factor(16) == 1.0
        assert precision_packing_factor(8) == 2.0
        assert precision_packing_factor(4) == 4.0
        with pytest.raises(ValueError):
            precision_packing_factor(0)

    def test_dense_throughput_scales_with_precision(self):
        dp = DenseDatapath(PEConfig(multipliers=128), DEFAULT_ENERGY_TABLE)
        assert dp.throughput_macs_per_cycle(4) == 4 * dp.throughput_macs_per_cycle(16)

    def test_dense_cycles_proportional_to_macs(self):
        dp = DenseDatapath(
            PEConfig(multipliers=128, pipeline_overhead_cycles=0), DEFAULT_ENERGY_TABLE
        )
        small = dp.execute(128 * 100, 4, 4, 0, 0, 0)
        large = dp.execute(128 * 200, 4, 4, 0, 0, 0)
        assert large.cycles == pytest.approx(2 * small.cycles)

    def test_dense_zero_work(self):
        dp = DenseDatapath(PEConfig(), DEFAULT_ENERGY_TABLE)
        result = dp.execute(0, 4, 4, 0, 0, 0)
        assert result.cycles == 0 and result.macs_executed == 0

    def test_sparse_skips_zero_macs(self):
        sp = SparseDatapath(PEConfig(), DEFAULT_ENERGY_TABLE)
        result = sp.execute(1000, nonzero_fraction=0.3, weight_bits=4, act_bits=4,
                            input_bytes=0, weight_bytes=0, output_bytes=0)
        assert result.macs_executed == pytest.approx(300)
        assert result.macs_skipped == pytest.approx(700)

    def test_sparse_faster_than_dense_on_sparse_data(self):
        pe = PEConfig()
        dense = DenseDatapath(pe, DEFAULT_ENERGY_TABLE).execute(1_000_000, 4, 4, 0, 0, 0)
        sparse = SparseDatapath(pe, DEFAULT_ENERGY_TABLE).execute(
            1_000_000, nonzero_fraction=0.3, weight_bits=4, act_bits=4,
            input_bytes=0, weight_bytes=0, output_bytes=0)
        assert sparse.cycles < dense.cycles

    def test_sparse_slower_than_dense_on_dense_data(self):
        pe = PEConfig()
        dense = DenseDatapath(pe, DEFAULT_ENERGY_TABLE).execute(1_000_000, 4, 4, 0, 0, 0)
        sparse = SparseDatapath(pe, DEFAULT_ENERGY_TABLE).execute(
            1_000_000, nonzero_fraction=1.0, weight_bits=4, act_bits=4,
            input_bytes=0, weight_bytes=0, output_bytes=0)
        assert sparse.cycles > dense.cycles

    def test_sparse_saves_mac_energy(self):
        pe = PEConfig()
        dense = DenseDatapath(pe, DEFAULT_ENERGY_TABLE).execute(1_000_000, 4, 4, 0, 0, 0)
        sparse = SparseDatapath(pe, DEFAULT_ENERGY_TABLE).execute(
            1_000_000, nonzero_fraction=0.3, weight_bits=4, act_bits=4,
            input_bytes=0, weight_bytes=0, output_bytes=0)
        assert sparse.energy.mac_pj < dense.energy.mac_pj

    def test_sparse_invalid_fraction(self):
        sp = SparseDatapath(PEConfig(), DEFAULT_ENERGY_TABLE)
        with pytest.raises(ValueError):
            sp.execute(100, nonzero_fraction=1.5, weight_bits=4, act_bits=4,
                       input_bytes=0, weight_bytes=0, output_bytes=0)

    def test_balance_point(self):
        assert balance_point(10, 10) == 0.0
        assert balance_point(10, 0) == 1.0
        assert balance_point(0, 0) == 0.0


class TestAddressGenAndNoC:
    def test_fetch_plans_partition_channels(self):
        workload = random_workload(in_channels=16, out_channels=8, spatial=4, seed=1)
        act_map = ActivationMapping(16, 4, 4)
        w_map = WeightMapping(8, 16, 3, 3)
        gen = SparsityAwareAddressGenerator(act_map, w_map)
        cls = classify_channels(workload.channel_sparsity, 0.3)
        dense_plan = gen.dense_plan(cls)
        sparse_plan = gen.sparse_plan(cls)
        assert dense_plan.num_channels + sparse_plan.num_channels == 16
        assert dense_plan.is_contiguous_per_channel()
        assert sparse_plan.activation_elements() == sparse_plan.num_channels * 16

    def test_full_plan_covers_everything(self):
        gen = SparsityAwareAddressGenerator(ActivationMapping(4, 2, 2), WeightMapping(3, 4, 1, 1))
        plan = gen.full_plan()
        assert plan.num_channels == 4
        assert plan.weight_elements() == 3 * 4

    def test_mismatched_mappings_rejected(self):
        with pytest.raises(ValueError):
            SparsityAwareAddressGenerator(ActivationMapping(4, 2, 2), WeightMapping(3, 5, 1, 1))

    def test_noc_topology_and_hops(self):
        noc = InterconnectNetwork(sqdm_config(), DEFAULT_ENERGY_TABLE)
        assert set(noc.pe_nodes()) == {"dpe0", "spe0"}
        assert noc.hops_to("dpe0") >= 1
        with pytest.raises(KeyError):
            noc.hops_to("gpu0")

    def test_noc_transfer_scales_with_bytes(self):
        noc = InterconnectNetwork(sqdm_config(), DEFAULT_ENERGY_TABLE)
        small = noc.transfer("dpe0", 64)
        large = noc.transfer("dpe0", 640)
        assert large.cycles == pytest.approx(10 * small.cycles)
        assert large.energy_pj > small.energy_pj
        with pytest.raises(ValueError):
            noc.transfer("dpe0", -5)

    def test_noc_broadcast(self):
        noc = InterconnectNetwork(sqdm_config(), DEFAULT_ENERGY_TABLE)
        result = noc.broadcast(128)
        assert result.bytes_moved == 256


class TestProcessingElement:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ProcessingElement("pe", "mixed", PEConfig(), DEFAULT_ENERGY_TABLE)

    def test_dense_pe_executes_all_macs(self):
        workload = random_workload(in_channels=8, out_channels=8, spatial=4, seed=2)
        pe = ProcessingElement("dpe0", "dense", PEConfig(), DEFAULT_ENERGY_TABLE)
        result = pe.process_channel_group(workload, np.arange(8))
        assert result.macs_executed == pytest.approx(workload.total_macs)
        assert result.macs_skipped == 0

    def test_sparse_pe_skips_work(self):
        workload = random_workload(
            in_channels=8, out_channels=8, spatial=4, mean_sparsity=0.8, seed=3
        )
        pe = ProcessingElement("spe0", "sparse", PEConfig(), DEFAULT_ENERGY_TABLE)
        result = pe.process_channel_group(workload, np.arange(8))
        assert result.macs_executed < workload.total_macs
        assert result.macs_skipped > 0

    def test_empty_channel_group(self):
        workload = random_workload(in_channels=8, out_channels=8, spatial=4, seed=4)
        pe = ProcessingElement("spe0", "sparse", PEConfig(), DEFAULT_ENERGY_TABLE)
        result = pe.process_channel_group(workload, np.array([], dtype=np.int64))
        assert result.macs_executed == 0

    def test_ppu_detector_energy_charged(self):
        workload = random_workload(in_channels=8, out_channels=8, spatial=4, seed=5)
        pe = ProcessingElement("dpe0", "dense", PEConfig(), DEFAULT_ENERGY_TABLE)
        result = pe.process_channel_group(workload, np.arange(8))
        assert result.energy.detector_pj > 0

    def test_buffer_fits_check(self):
        small = random_workload(in_channels=8, out_channels=8, spatial=4, seed=6)
        huge = random_workload(in_channels=512, out_channels=512, spatial=64, seed=7)
        pe = ProcessingElement("dpe0", "dense", PEConfig(), DEFAULT_ENERGY_TABLE)
        assert pe.buffer_fits(small, np.arange(8))
        assert not pe.buffer_fits(huge, np.arange(512))
