"""Tests for repro.quant.formats and repro.quant.fp8."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant import formats
from repro.quant.fp8 import (
    quantize_scales,
    round_to_fp16,
    round_to_fp8_e4m3,
    round_to_fp8_e5m2,
)


class TestIntegerFormat:
    def test_int8_range(self):
        assert formats.INT8.qmin == -127
        assert formats.INT8.qmax == 127

    def test_int4_range(self):
        assert formats.INT4.qmin == -7
        assert formats.INT4.qmax == 7

    def test_uint4_range(self):
        assert formats.UINT4.qmin == 0
        assert formats.UINT4.qmax == 15

    def test_uint4_has_16_levels(self):
        assert formats.UINT4.num_levels == 16

    def test_int4_names(self):
        assert formats.INT4.name == "INT4"
        assert formats.UINT4.name == "UINT4"

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            formats.IntegerFormat(bits=1)
        with pytest.raises(ValueError):
            formats.IntegerFormat(bits=64)


class TestFloatFormat:
    def test_fp8_e4m3_max(self):
        assert formats.FP8_E4M3.max_value == pytest.approx(448.0)

    def test_fp8_e4m3_bits(self):
        assert formats.FP8_E4M3.bits == 8

    def test_fp16_bits(self):
        assert formats.FP16.bits == 16

    def test_fp32_bits(self):
        assert formats.FP32.bits == 32

    def test_min_normal_positive(self):
        assert formats.FP8_E4M3.min_normal > 0
        assert formats.FP8_E5M2.min_normal < formats.FP8_E4M3.min_normal


class TestQuantFormatSpec:
    def test_fp32_is_not_quantized(self):
        assert not formats.fp32_spec().is_quantized

    def test_fp16_is_not_quantized(self):
        assert not formats.fp16_spec().is_quantized

    def test_int8_is_quantized(self):
        assert formats.int8_spec().is_quantized

    def test_bits_per_value_fp16(self):
        assert formats.fp16_spec().bits_per_value() == 16.0

    def test_bits_per_value_coarse_int4(self):
        assert formats.int4_spec().bits_per_value() == 4.0

    def test_bits_per_value_vsq_includes_scale_overhead(self):
        spec = formats.int4_vsq_spec(vector_size=16)
        assert spec.bits_per_value() == pytest.approx(4.0 + 16.0 / 16.0)

    def test_bits_per_value_fp8_scale_less_than_fp16_scale(self):
        fp8 = formats.int4_fp8_spec(vector_size=16)
        vsq = formats.int4_vsq_spec(vector_size=16)
        assert fp8.bits_per_value() < vsq.bits_per_value()

    def test_mxint8_bits_per_value(self):
        spec = formats.mxint8_spec(block_size=32)
        assert spec.bits_per_value() == pytest.approx(8.0 + 8.0 / 32.0)

    def test_compute_cost_factor_matches_paper_equivalence(self):
        # 1 FP16 = 2 INT8 = 4 INT4 multiplications.
        assert formats.fp16_spec().compute_cost_factor() == pytest.approx(1.0)
        assert formats.int8_spec().compute_cost_factor() == pytest.approx(0.5)
        assert formats.int4_spec().compute_cost_factor() == pytest.approx(0.25)

    def test_table1_formats_complete(self):
        assert set(formats.TABLE1_FORMATS) == {"FP32", "FP16", "INT8", "MXINT8", "INT4", "INT4-VSQ"}

    def test_get_format_known(self):
        assert formats.get_format("MXINT8").name == "MXINT8"
        assert formats.get_format("INT4-FP8S").name == "INT4-FP8S"

    def test_get_format_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown quantization format"):
            formats.get_format("INT3")

    def test_uint4_spec_unsigned(self):
        spec = formats.uint4_fp8_spec()
        assert spec.element is not None
        assert not spec.element.signed


class TestFP8Rounding:
    def test_exact_powers_of_two_preserved(self):
        values = np.array([0.5, 1.0, 2.0, 4.0, 64.0])
        assert np.allclose(round_to_fp8_e4m3(values), values)

    def test_zero_preserved(self):
        assert round_to_fp8_e4m3(np.array([0.0]))[0] == 0.0

    def test_saturation_at_max(self):
        assert round_to_fp8_e4m3(np.array([1e6]))[0] == pytest.approx(448.0)

    def test_negative_values_symmetric(self):
        values = np.array([-1.3, -7.7, -100.0])
        assert np.allclose(round_to_fp8_e4m3(values), -round_to_fp8_e4m3(-values))

    def test_relative_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.02, 400.0, size=1000)
        rounded = round_to_fp8_e4m3(values)
        rel_err = np.abs(rounded - values) / values
        # 3 mantissa bits -> relative error at most 2^-4 = 6.25%.
        assert np.max(rel_err) <= 0.0625 + 1e-9

    def test_e5m2_wider_range_than_e4m3(self):
        big = np.array([5000.0])
        assert round_to_fp8_e5m2(big)[0] > round_to_fp8_e4m3(big)[0]

    def test_fp16_roundtrip(self):
        values = np.array([0.1, 1.5, 3.25])
        assert np.allclose(round_to_fp16(values), values, rtol=1e-3)

    def test_quantize_scales_pow2_rounds_up(self):
        scales = np.array([0.3, 1.1, 5.0])
        pow2 = quantize_scales(scales, "pow2")
        assert np.all(pow2 >= scales)
        assert np.allclose(np.log2(pow2), np.round(np.log2(pow2)))

    def test_quantize_scales_fp32_identity(self):
        scales = np.array([0.123, 4.56])
        assert np.allclose(quantize_scales(scales, "fp32"), scales)

    def test_quantize_scales_unknown_format(self):
        with pytest.raises(ValueError):
            quantize_scales(np.array([1.0]), "fp12")
