"""Cross-module integration tests: the full SQ-DM co-design loop at tiny scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import AcceleratorSimulator, dense_baseline_config, sqdm_config
from repro.accelerator.simulator import retime_trace_precision
from repro.core.policy import mixed_precision_policy, table1_policy
from repro.core.sparsity import collect_sparsity_trace, trace_to_workloads
from repro.diffusion.edm import EDMDenoiser
from repro.diffusion.fid import FIDEvaluator
from repro.diffusion.finetune import adapt_to_relu, make_calibration_batch
from repro.diffusion.sampler import SamplerConfig, sample
from repro.diffusion.schedule import ScheduleConfig
from repro.workloads.models import load_workload


@pytest.fixture(scope="module")
def workload():
    return load_workload("cifar10", resolution=8)


class TestEndToEndCodesign:
    """Model -> ReLU adaptation -> quantization -> sampling -> trace -> accelerator."""

    def test_full_flow(self, workload):
        # 1. Adapt SiLU model to ReLU by calibration.
        calibration = make_calibration_batch(workload.image_shape, batch_size=2,
                                             sigma_data=workload.dataset.sigma_data())
        relu_unet, report = adapt_to_relu(workload.unet, calibration)
        assert report.adjusted_convs > 0

        # 2. Apply the mixed-precision policy and generate images.
        policy = mixed_precision_policy(relu_unet, relu=True)
        policy.apply(relu_unet)
        denoiser = EDMDenoiser(relu_unet, prior=workload.dataset.prior)
        sampler_config = SamplerConfig(schedule=ScheduleConfig(num_steps=4))
        result = sample(denoiser, 6, workload.image_shape, sampler_config)
        assert np.all(np.isfinite(result.images))

        # 3. Quality stays far better than uniform coarse INT4.
        evaluator = FIDEvaluator()
        evaluator.set_reference(workload.dataset.reference_samples(128))
        ours_fid = evaluator.fid(result.images)

        int4_unet = load_workload("cifar10", resolution=8).unet
        table1_policy(int4_unet, "INT4").apply(int4_unet)
        int4_denoiser = EDMDenoiser(int4_unet, prior=workload.dataset.prior)
        int4_fid = evaluator.fid(
            sample(int4_denoiser, 6, workload.image_shape, sampler_config).images
        )
        assert ours_fid < int4_fid

        # 4. Trace the temporal sparsity and run the accelerator comparison.
        trace = collect_sparsity_trace(denoiser, workload.image_shape, sampler_config,
                                       num_samples=1, zero_tolerance_rel=1 / 30)
        quant_trace = trace_to_workloads(trace, policy)
        fp16_trace = retime_trace_precision(quant_trace, 16, 16)

        sqdm_report = AcceleratorSimulator(sqdm_config()).run_trace(quant_trace)
        dense_report = AcceleratorSimulator(dense_baseline_config()).run_trace(quant_trace)
        fp16_report = AcceleratorSimulator(dense_baseline_config()).run_trace(fp16_trace)

        sparsity_speedup = dense_report.total_cycles / sqdm_report.total_cycles
        total_speedup = fp16_report.total_cycles / sqdm_report.total_cycles
        energy_saving = 1 - sqdm_report.total_energy.total_pj / dense_report.total_energy.total_pj

        assert sparsity_speedup > 1.2
        assert total_speedup > 4.0
        assert energy_saving > 0.25

    def test_quantization_error_accumulates_over_time_steps(self, workload):
        """The paper's first observation: error compounds across time steps."""
        unet = load_workload("cifar10", resolution=8).unet
        table1_policy(unet, "INT4-VSQ").apply(unet)
        denoiser = EDMDenoiser(unet, prior=workload.dataset.prior)
        evaluator = FIDEvaluator()
        evaluator.set_reference(workload.dataset.reference_samples(128))

        clean_unet = load_workload("cifar10", resolution=8).unet
        clean = EDMDenoiser(clean_unet, prior=workload.dataset.prior)

        # Track the deviation between the quantized and unquantized sampling
        # trajectories after every time step of the same fixed schedule.
        cfg = SamplerConfig(schedule=ScheduleConfig(num_steps=6), seed=3)
        quant_states: list[np.ndarray] = []
        clean_states: list[np.ndarray] = []
        sample(denoiser, 4, workload.image_shape, cfg,
               step_callback=lambda i, s, x: quant_states.append(x.copy()))
        sample(clean, 4, workload.image_shape, cfg,
               step_callback=lambda i, s, x: clean_states.append(x.copy()))
        deviations = [float(np.mean((q - c) ** 2)) for q, c in zip(quant_states, clean_states)]
        # The deviation after the last step exceeds the deviation after the
        # first step: quantization error compounds across model evaluations.
        assert deviations[-1] > deviations[0]

    def test_conditional_imagenet_workload_runs(self):
        workload = load_workload("imagenet", resolution=8)
        denoiser = EDMDenoiser(workload.unet, prior=workload.dataset.prior)
        cfg = SamplerConfig(schedule=ScheduleConfig(num_steps=2))
        result = sample(denoiser, 2, workload.image_shape, cfg)
        assert result.images.shape == (2, 3, 8, 8)
