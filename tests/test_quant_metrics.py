"""Tests for quantization error and sparsity metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant.metrics import (
    cosine_similarity,
    max_abs_error,
    mse,
    per_channel_sparsity,
    rmse,
    sparsity,
    sqnr_db,
)


class TestErrorMetrics:
    def test_mse_zero_for_identical(self, rng):
        x = rng.normal(size=(8, 8))
        assert mse(x, x) == 0.0

    def test_mse_known_value(self):
        assert mse(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == pytest.approx(2.5)

    def test_mse_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_rmse_is_sqrt_of_mse(self, rng):
        x, y = rng.normal(size=32), rng.normal(size=32)
        assert rmse(x, y) == pytest.approx(np.sqrt(mse(x, y)))

    def test_sqnr_infinite_for_exact(self, rng):
        x = rng.normal(size=16)
        assert sqnr_db(x, x) == float("inf")

    def test_sqnr_decreases_with_noise(self, rng):
        x = rng.normal(size=1024)
        low_noise = x + rng.normal(scale=0.01, size=1024)
        high_noise = x + rng.normal(scale=0.1, size=1024)
        assert sqnr_db(x, low_noise) > sqnr_db(x, high_noise)

    def test_sqnr_negative_inf_for_zero_signal(self):
        assert sqnr_db(np.zeros(4), np.ones(4)) == float("-inf")

    def test_cosine_similarity_identity(self, rng):
        x = rng.normal(size=64)
        assert cosine_similarity(x, x) == pytest.approx(1.0)

    def test_cosine_similarity_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_cosine_similarity_zero_vectors(self):
        assert cosine_similarity(np.zeros(4), np.zeros(4)) == 1.0

    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 5.0]), np.array([1.5, 4.0])) == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert mse(np.array([]), np.array([])) == 0.0
        assert max_abs_error(np.array([]), np.array([])) == 0.0


class TestSparsityMetrics:
    def test_sparsity_of_zero_tensor(self):
        assert sparsity(np.zeros((4, 4))) == 1.0

    def test_sparsity_of_dense_tensor(self, rng):
        assert sparsity(rng.normal(size=(4, 4)) + 10) == 0.0

    def test_sparsity_with_tolerance(self):
        x = np.array([0.0, 0.001, 0.5, -0.002])
        assert sparsity(x, tol=0.01) == pytest.approx(0.75)

    def test_sparsity_empty(self):
        assert sparsity(np.array([])) == 0.0

    def test_per_channel_sparsity_shape(self, rng):
        x = rng.normal(size=(3, 8, 8))
        result = per_channel_sparsity(x, channel_axis=0)
        assert result.shape == (3,)

    def test_per_channel_sparsity_values(self):
        x = np.stack([np.zeros((4, 4)), np.ones((4, 4))])
        result = per_channel_sparsity(x, channel_axis=0)
        assert result[0] == 1.0 and result[1] == 0.0

    def test_per_channel_sparsity_axis_1(self):
        x = np.zeros((2, 3, 4, 4))
        x[:, 1] = 1.0
        result = per_channel_sparsity(x, channel_axis=1)
        assert np.allclose(result, [1.0, 0.0, 1.0])
