"""Tests for the EDM U-Net architecture (repro.nn.unet)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.unet import BLOCK_CONV, EDMUNet, UNetConfig


class TestUNetConfig:
    def test_default_valid(self):
        UNetConfig()

    def test_resolution_divisibility_enforced(self):
        with pytest.raises(ValueError):
            UNetConfig(img_resolution=12, channel_mult=(1, 2, 2, 2))

    def test_too_small_resolution_rejected(self):
        with pytest.raises(ValueError):
            UNetConfig(img_resolution=2)

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError):
            UNetConfig(activation="gelu")

    def test_resolutions_list(self):
        cfg = UNetConfig(img_resolution=16, channel_mult=(1, 2, 2))
        assert cfg.resolutions == [16, 8, 4]

    def test_emb_dim(self):
        cfg = UNetConfig(model_channels=16, emb_dim_mult=4)
        assert cfg.emb_dim == 64


class TestUNetStructure:
    def test_block_count(self, tiny_unet):
        # 2 resolution levels x 1 block each, encoder + decoder.
        assert len(tiny_unet.block_infos()) == 4

    def test_block_names_follow_paper_convention(self, tiny_unet):
        names = tiny_unet.block_names()
        assert "enc.8x8_block0" in names
        assert "dec.8x8_block0" in names
        assert all(name.startswith(("enc.", "dec.")) for name in names)

    def test_get_block_by_name(self, tiny_unet):
        block = tiny_unet.get_block("enc.8x8_block0")
        assert block.name == "enc.8x8_block0"

    def test_get_block_unknown_raises(self, tiny_unet):
        with pytest.raises(KeyError):
            tiny_unet.get_block("enc.64x64_block9")

    def test_attention_placed_at_requested_resolution(self, tiny_unet):
        for info in tiny_unet.block_infos():
            has_attn = info.block.attention is not None
            assert has_attn == (info.resolution == 4)

    def test_execution_order_increasing(self, tiny_unet):
        orders = [info.order for info in tiny_unet.block_infos()]
        assert orders == sorted(orders)

    def test_embedding_layers_nonempty(self, tiny_unet):
        assert len(tiny_unet.embedding_layers()) >= 2 + len(tiny_unet.block_infos())

    def test_skip_layers_include_stems(self, tiny_unet):
        skips = tiny_unet.skip_layers()
        assert tiny_unet.conv_in in skips and tiny_unet.conv_out in skips

    def test_parameter_count_positive(self, tiny_unet):
        assert tiny_unet.parameter_count() > 1000


class TestUNetForward:
    def test_output_shape_matches_input(self, tiny_unet, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        out = tiny_unet(x, np.full(2, 0.1))
        assert out.shape == x.shape

    def test_deterministic(self, tiny_unet, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        a = tiny_unet(x, np.array([0.2]))
        b = tiny_unet(x, np.array([0.2]))
        assert np.array_equal(a, b)

    def test_noise_conditioning_changes_output(self, tiny_unet, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        a = tiny_unet(x, np.array([-1.0]))
        b = tiny_unet(x, np.array([1.0]))
        assert not np.allclose(a, b)

    def test_finite_output(self, tiny_unet, rng):
        out = tiny_unet(rng.normal(size=(1, 3, 8, 8)) * 10, np.array([0.5]))
        assert np.all(np.isfinite(out))

    def test_conditional_model_uses_labels(self, rng):
        cfg = UNetConfig(
            img_resolution=8, model_channels=8, channel_mult=(1, 2), label_dim=4, seed=1
        )
        unet = EDMUNet(cfg)
        x = rng.normal(size=(1, 3, 8, 8))
        labels_a = np.eye(4)[[0]]
        labels_b = np.eye(4)[[2]]
        out_a = unet(x, np.array([0.1]), labels_a)
        out_b = unet(x, np.array([0.1]), labels_b)
        assert not np.allclose(out_a, out_b)

    def test_set_activation_switches_every_block(self, tiny_unet):
        tiny_unet.set_activation("relu")
        assert tiny_unet.config.activation == "relu"
        for info in tiny_unet.block_infos():
            assert info.block.act0.kind == "relu"
            assert info.block.act1.kind == "relu"

    def test_relu_swap_changes_output(self, tiny_unet, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        silu_out = tiny_unet(x, np.array([0.1]))
        tiny_unet.set_activation("relu")
        relu_out = tiny_unet(x, np.array([0.1]))
        assert not np.allclose(silu_out, relu_out)

    def test_three_level_unet_runs(self, rng):
        cfg = UNetConfig(img_resolution=16, model_channels=8, channel_mult=(1, 2, 2), seed=2)
        unet = EDMUNet(cfg)
        out = unet(rng.normal(size=(1, 3, 16, 16)), np.array([0.3]))
        assert out.shape == (1, 3, 16, 16)

    def test_multiple_blocks_per_resolution(self, rng):
        cfg = UNetConfig(
            img_resolution=8, model_channels=8, channel_mult=(1, 2), num_blocks_per_res=2, seed=4
        )
        unet = EDMUNet(cfg)
        assert len(unet.block_infos()) == 8
        out = unet(rng.normal(size=(1, 3, 8, 8)), np.array([0.1]))
        assert out.shape == (1, 3, 8, 8)


class TestUNetCosts:
    def test_cost_breakdown_categories(self, tiny_unet):
        breakdown = tiny_unet.cost_breakdown()
        assert set(breakdown) == {"Conv+Act", "Skip", "Embedding", "Attention"}

    def test_conv_dominates_compute(self, tiny_unet):
        breakdown = tiny_unet.cost_breakdown()
        conv = breakdown[BLOCK_CONV]["macs"]
        total = sum(cat["macs"] for cat in breakdown.values())
        assert conv / total > 0.5

    def test_total_macs_positive_and_scales_with_batch(self, tiny_unet):
        single = tiny_unet.total_macs(batch=1)
        double = tiny_unet.total_macs(batch=2)
        assert single > 0
        assert double > single

    def test_block_component_costs_keys(self, tiny_unet):
        info = tiny_unet.block_infos()[0]
        costs = info.block.component_costs(info.spatial)
        assert set(costs) == {"Conv+Act", "Skip", "Embedding", "Attention"}
        assert costs["Conv+Act"]["macs"] > 0
