"""Tests for the declarative sweep runner and the simulation-report cache."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorSimulator,
    dense_baseline_config,
    random_workload,
    sqdm_config,
)
from repro.core.experiments import SweepSpec, run_sweep, sweep_table
from repro.core.report_cache import (
    ReportCache,
    fingerprint_config,
    fingerprint_energy_table,
    fingerprint_trace,
)
from repro.accelerator.energy import EnergyTable


class TestSweepSpec:
    def test_cases_enumerate_cross_product_in_order(self):
        spec = SweepSpec(name="s", grid={"a": [1, 2], "b": ["x", "y"]})
        assert spec.num_cases == 4
        assert spec.cases() == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(name="s", grid={})
        with pytest.raises(ValueError):
            SweepSpec(name="s", grid={"a": []})


class TestRunSweep:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_results_in_grid_order(self, executor):
        result = run_sweep(
            lambda a, b: a * 10 + b, {"a": [1, 2, 3], "b": [4, 5]}, executor=executor
        )
        assert result.values() == [14, 15, 24, 25, 34, 35]

    def test_threaded_sweep_actually_fans_out(self):
        started = []
        barrier = threading.Barrier(3, timeout=10)

        def task(i):
            started.append(i)
            barrier.wait()  # deadlocks unless 3 workers run concurrently
            return i

        result = run_sweep(task, {"i": [0, 1, 2]}, executor="thread", max_workers=3)
        assert result.values() == [0, 1, 2]
        assert sorted(started) == [0, 1, 2]

    def test_capture_keeps_going_after_failure(self):
        def flaky(i):
            if i == 1:
                raise RuntimeError("boom")
            return i

        result = run_sweep(flaky, {"i": [0, 1, 2]}, on_error="capture")
        assert [c.ok for c in result.cases] == [True, False, True]
        assert len(result.failures()) == 1
        with pytest.raises(RuntimeError, match="failed"):
            result.values()

    def test_raise_propagates_failure(self):
        def bad(i):
            raise ValueError("nope")

        with pytest.raises(ValueError, match="nope"):
            run_sweep(bad, {"i": [0, 1]}, executor="serial")

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(lambda i: i, {"i": [1]}, executor="gpu")

    def test_sweep_table_view(self):
        result = run_sweep(lambda a: a + 1, {"a": [1, 2]}, executor="serial")
        header, rows = sweep_table(result, value_label="a+1")
        assert header == ["a", "a+1"]
        assert rows == [[1, 2], [2, 3]]


@pytest.fixture()
def small_trace():
    return [
        [
            random_workload(in_channels=16, spatial=4, seed=s * 3 + n, name=f"l{n}")
            for n in range(2)
        ]
        for s in range(2)
    ]


class TestReportCache:
    def test_identical_inputs_hit(self, small_trace):
        cache = ReportCache()
        first = cache.get_or_run(sqdm_config(), small_trace)
        second = cache.get_or_run(sqdm_config(), small_trace)
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_cached_report_matches_direct_simulation(self, small_trace):
        cache = ReportCache()
        cached = cache.get_or_run(sqdm_config(), small_trace)
        direct = AcceleratorSimulator(sqdm_config()).run_trace(small_trace)
        assert cached.total_cycles == direct.total_cycles
        assert cached.total_energy.total_pj == direct.total_energy.total_pj

    def test_different_config_misses(self, small_trace):
        cache = ReportCache()
        cache.get_or_run(sqdm_config(), small_trace)
        cache.get_or_run(dense_baseline_config(), small_trace)
        assert cache.stats.misses == 2

    def test_different_sparsity_misses(self, small_trace):
        cache = ReportCache()
        cache.get_or_run(sqdm_config(), small_trace)
        changed = [
            [w.replace(channel_sparsity=np.zeros(w.in_channels)) for w in s] for s in small_trace
        ]
        cache.get_or_run(sqdm_config(), changed)
        assert cache.stats.misses == 2

    def test_lru_eviction(self, small_trace):
        cache = ReportCache(max_entries=1)
        cache.get_or_run(sqdm_config(), small_trace)
        cache.get_or_run(dense_baseline_config(), small_trace)
        assert len(cache) == 1
        cache.get_or_run(sqdm_config(), small_trace)  # evicted -> miss again
        assert cache.stats.misses == 3

    def test_clear(self, small_trace):
        cache = ReportCache()
        cache.get_or_run(sqdm_config(), small_trace)
        cache.clear()
        assert len(cache) == 0 and cache.stats.requests == 0

    def test_lru_eviction_order_respects_recency(self, small_trace):
        """A hit refreshes recency: the least-recently-*used* entry goes, not
        the least-recently-inserted one."""
        configs = [sqdm_config(sparsity_threshold=t) for t in (0.1, 0.2, 0.3)]
        cache = ReportCache(max_entries=3)
        for config in configs:
            cache.get_or_run(config, small_trace)
        assert cache.stats.misses == 3

        cache.get_or_run(configs[0], small_trace)  # refresh the oldest entry
        assert cache.stats.hits == 1

        # Inserting a fourth entry must now evict configs[1] (the LRU), not
        # configs[0] (oldest inserted but recently used).
        cache.get_or_run(sqdm_config(sparsity_threshold=0.4), small_trace)
        assert len(cache) == 3
        cache.get_or_run(configs[0], small_trace)
        assert cache.stats.misses == 4  # still cached -> hit
        cache.get_or_run(configs[1], small_trace)
        assert cache.stats.misses == 5  # evicted -> recomputed

    def test_concurrent_get_or_run_same_key_returns_one_report(self, small_trace):
        """Racing threads on one key all get the same object; stats balance."""
        cache = ReportCache()
        num_threads = 8
        barrier = threading.Barrier(num_threads, timeout=10)
        results: list = [None] * num_threads
        errors: list = []

        def worker(slot: int) -> None:
            try:
                barrier.wait()  # maximize lookup/insert overlap
                results[slot] = cache.get_or_run(sqdm_config(), small_trace)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        first = results[0]
        assert all(report is first for report in results)
        assert len(cache) == 1
        assert cache.stats.requests == num_threads
        assert cache.stats.hits + cache.stats.misses == num_threads
        assert 1 <= cache.stats.misses <= num_threads

    def test_concurrent_distinct_keys_all_cached(self, small_trace):
        """Racing threads on different keys never clobber each other."""
        cache = ReportCache()
        thresholds = [round(0.1 * i, 1) for i in range(1, 7)]
        barrier = threading.Barrier(len(thresholds), timeout=10)

        def worker(threshold: float) -> None:
            barrier.wait()
            cache.get_or_run(sqdm_config(sparsity_threshold=threshold), small_trace)

        threads = [threading.Thread(target=worker, args=(t,)) for t in thresholds]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(cache) == len(thresholds)
        assert cache.stats.misses == len(thresholds)
        for threshold in thresholds:
            cache.get_or_run(sqdm_config(sparsity_threshold=threshold), small_trace)
        assert cache.stats.hits == len(thresholds)


class TestFingerprints:
    def test_config_fingerprint_sensitive_to_fields(self):
        assert fingerprint_config(sqdm_config()) != fingerprint_config(dense_baseline_config())
        assert fingerprint_config(sqdm_config()) != fingerprint_config(
            sqdm_config(sparsity_threshold=0.5)
        )
        assert fingerprint_config(sqdm_config()) == fingerprint_config(sqdm_config())

    def test_energy_table_fingerprint(self):
        assert fingerprint_energy_table(EnergyTable()) == fingerprint_energy_table(EnergyTable())
        assert fingerprint_energy_table(EnergyTable()) != fingerprint_energy_table(
            EnergyTable(dram_pj_per_byte=99.0)
        )

    def test_trace_fingerprint_sensitive_to_content(self, small_trace):
        base = fingerprint_trace(small_trace)
        assert base == fingerprint_trace(
            [[w.replace() for w in step] for step in small_trace]
        )  # deep copy, same content
        retimed = [[w.replace(weight_bits=16) for w in step] for step in small_trace]
        assert base != fingerprint_trace(retimed)

    def test_trace_fingerprint_memoized_per_object(self, small_trace, monkeypatch):
        """Cache keys sharing the same trace object hash it only once: a
        server-planned sweep builds one request per grid point over one trace."""
        import repro.core.report_cache as rc

        hashes: list[int] = []
        original = fingerprint_trace

        def counting(trace):
            hashes.append(id(trace))
            return original(trace)

        monkeypatch.setattr(rc, "fingerprint_trace", counting)
        expected = original(small_trace)
        keys = [
            ReportCache.key(sqdm_config(sparsity_threshold=t), small_trace)
            for t in (0.1, 0.2, 0.3, 0.4)
        ]
        assert all(key[2] == expected for key in keys)
        assert len(hashes) <= 1  # 0 if an earlier test already memoized it

        # A content-equal but distinct object gets its own hash (identity key).
        clone = [[w.replace() for w in step] for step in small_trace]
        assert ReportCache.key(sqdm_config(), clone)[2] == expected
        assert rc.memoized_fingerprint_trace(clone) == expected


class TestPipelineCaching:
    def test_evaluate_hardware_reuses_shared_baselines(self, cifar_workload):
        """Repeated hardware evaluations of the same trace only simulate once."""
        from repro.core.pipeline import PipelineConfig, SQDMPipeline
        from repro.core.report_cache import DEFAULT_REPORT_CACHE

        pipeline = SQDMPipeline(
            workload=cifar_workload,
            config=PipelineConfig(
                num_sampling_steps=2, num_trace_samples=1, num_reference_samples=8
            ),
        )
        trace = pipeline.collect_trace(relu=True)
        before = DEFAULT_REPORT_CACHE.stats.hits
        first = pipeline.evaluate_hardware(trace=trace)
        second = pipeline.evaluate_hardware(trace=trace)
        assert DEFAULT_REPORT_CACHE.stats.hits >= before + 3  # all three reports reused
        assert second.sqdm_report is first.sqdm_report
