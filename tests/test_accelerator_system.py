"""System-level accelerator tests: workloads, controller, simulator and baseline comparisons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorSimulator,
    ConvLayerWorkload,
    compare_to_dense_baseline,
    conv_workload_from_layer,
    dense_baseline_config,
    random_workload,
    retime_trace_precision,
    sqdm_config,
)
from repro.accelerator.controller import AcceleratorController
from repro.nn.layers import Conv2d


class TestWorkloadDescriptor:
    def test_total_macs(self):
        w = ConvLayerWorkload(
            "l", in_channels=8, out_channels=16, kernel_size=3, out_height=4, out_width=4
        )
        assert w.total_macs == 8 * 16 * 9 * 16
        assert w.macs_per_input_channel == 16 * 9 * 16

    def test_default_sparsity_is_dense(self):
        w = ConvLayerWorkload("l", 4, 4, 3, 4, 4)
        assert w.average_sparsity == 0.0

    def test_sparsity_shape_validation(self):
        with pytest.raises(ValueError):
            ConvLayerWorkload("l", 4, 4, 3, 4, 4, channel_sparsity=np.zeros(5))
        with pytest.raises(ValueError):
            ConvLayerWorkload("l", 4, 4, 3, 4, 4, channel_sparsity=np.full(4, 1.5))

    def test_weight_and_output_bytes_scale_with_bits(self):
        w4 = ConvLayerWorkload("l", 4, 4, 3, 4, 4, weight_bits=4, act_bits=4)
        w16 = ConvLayerWorkload("l", 4, 4, 3, 4, 4, weight_bits=16, act_bits=16)
        assert w16.weight_bytes() == 4 * w4.weight_bytes()
        assert w16.output_bytes() == 4 * w4.output_bytes()

    def test_compressed_input_bytes_smaller_when_sparse(self):
        sparsity = np.full(8, 0.9)
        w = ConvLayerWorkload("l", 8, 8, 3, 8, 8, act_bits=4, channel_sparsity=sparsity)
        assert w.input_bytes(dense_only=False) < w.input_bytes(dense_only=True)

    def test_channel_mask_restricts_bytes(self):
        w = ConvLayerWorkload("l", 8, 8, 3, 8, 8, act_bits=8)
        mask = np.zeros(8, dtype=bool)
        mask[:4] = True
        assert w.input_bytes(channel_mask=mask) == pytest.approx(w.input_bytes() / 2)

    def test_random_workload_mean_sparsity(self):
        w = random_workload(in_channels=256, mean_sparsity=0.65, seed=0)
        assert abs(w.average_sparsity - 0.65) < 0.1

    def test_conv_workload_from_layer(self):
        conv = Conv2d(8, 16, kernel_size=3)
        w = conv_workload_from_layer("layer", conv, (8, 8), weight_bits=4, act_bits=4)
        assert w.in_channels == 8 and w.out_channels == 16
        assert w.total_macs == conv.macs((8, 8))


class TestController:
    def test_layer_result_accounts_all_channels(self):
        controller = AcceleratorController(sqdm_config())
        workload = random_workload(in_channels=32, mean_sparsity=0.6, seed=1)
        result = controller.execute_layer(workload)
        assert result.dense_channels + result.sparse_channels == 32
        assert result.total_macs == workload.total_macs
        assert result.cycles > 0

    def test_dense_baseline_treats_all_channels_dense(self):
        controller = AcceleratorController(dense_baseline_config())
        workload = random_workload(in_channels=32, mean_sparsity=0.9, seed=2)
        result = controller.execute_layer(workload)
        assert result.sparse_channels == 0
        assert result.executed_macs == pytest.approx(workload.total_macs)

    def test_sqdm_skips_macs_on_sparse_workload(self):
        controller = AcceleratorController(sqdm_config())
        workload = random_workload(in_channels=32, mean_sparsity=0.8, seed=3)
        result = controller.execute_layer(workload)
        assert result.executed_macs < workload.total_macs
        assert result.skipped_fraction > 0.2

    def test_energy_components_populated(self):
        controller = AcceleratorController(sqdm_config())
        result = controller.execute_layer(random_workload(seed=4))
        assert result.energy.mac_pj > 0
        assert result.energy.global_buffer_pj > 0
        assert result.energy.noc_pj > 0

    def test_load_imbalance_between_zero_and_one(self):
        controller = AcceleratorController(sqdm_config())
        result = controller.execute_layer(random_workload(seed=5))
        assert 0.0 <= result.load_imbalance <= 1.0

    def test_reset_clears_state(self):
        controller = AcceleratorController(sqdm_config())
        controller.execute_layer(random_workload(seed=6))
        controller.reset()
        assert controller.detector.updates_performed == 0
        assert controller.global_buffer.total_traffic_bytes == 0


class TestSimulator:
    def test_run_step_sums_layer_cycles(self, synthetic_trace):
        sim = AcceleratorSimulator(sqdm_config())
        step = sim.run_step(synthetic_trace[0])
        assert step.cycles == pytest.approx(sum(r.cycles for r in step.layer_results))

    def test_run_trace_aggregates_steps(self, synthetic_trace):
        sim = AcceleratorSimulator(sqdm_config())
        report = sim.run_trace(synthetic_trace)
        assert len(report.step_results) == len(synthetic_trace)
        assert report.total_cycles == pytest.approx(sum(s.cycles for s in report.step_results))
        assert report.total_energy.total_pj > 0

    def test_report_time_conversion(self, synthetic_trace):
        report = AcceleratorSimulator(sqdm_config(clock_ghz=2.0)).run_trace(synthetic_trace)
        assert report.total_time_ms == pytest.approx(report.total_cycles / 2e9 * 1e3)

    def test_mac_skip_fraction_bounds(self, synthetic_trace):
        report = AcceleratorSimulator(sqdm_config()).run_trace(synthetic_trace)
        assert 0.0 <= report.mac_skip_fraction <= 1.0

    def test_retime_trace_precision(self, synthetic_trace):
        fp16 = retime_trace_precision(synthetic_trace, 16, 16)
        assert all(w.weight_bits == 16 and w.act_bits == 16 for step in fp16 for w in step)
        # Sparsity pattern is preserved.
        assert np.allclose(fp16[0][0].channel_sparsity, synthetic_trace[0][0].channel_sparsity)


class TestPaperComparisons:
    def test_sparsity_speedup_in_paper_range(self, synthetic_trace):
        comparison = compare_to_dense_baseline(synthetic_trace)
        # Paper reports 1.83x average; the synthetic 65%-sparse trace should
        # land in the same regime.
        assert 1.3 < comparison.speedup < 2.6

    def test_energy_saving_in_paper_range(self, synthetic_trace):
        comparison = compare_to_dense_baseline(synthetic_trace)
        # Paper reports 51.5% system energy saving.
        assert 0.3 < comparison.energy_saving < 0.75

    def test_no_speedup_without_sparsity(self):
        trace = [
            [random_workload(mean_sparsity=0.02, sparsity_spread=0.01, seed=s) for s in range(2)]
            for _ in range(2)
        ]
        comparison = compare_to_dense_baseline(trace)
        assert comparison.speedup < 1.2

    def test_quantization_speedup_matches_precision_ratio(self, synthetic_trace):
        fp16_trace = retime_trace_precision(synthetic_trace, 16, 16)
        int4_trace = retime_trace_precision(synthetic_trace, 4, 4)
        baseline = dense_baseline_config()
        fp16_report = AcceleratorSimulator(baseline).run_trace(fp16_trace)
        int4_report = AcceleratorSimulator(baseline).run_trace(int4_trace)
        speedup = fp16_report.total_cycles / int4_report.total_cycles
        # The paper assumes 1 FP16 = 4 INT4 multiplies; pipeline overheads keep
        # the measured value slightly below 4.
        assert 3.0 < speedup <= 4.05

    def test_total_speedup_compounds(self, synthetic_trace):
        fp16_trace = retime_trace_precision(synthetic_trace, 16, 16)
        fp16_dense = AcceleratorSimulator(dense_baseline_config()).run_trace(fp16_trace)
        sqdm = AcceleratorSimulator(sqdm_config()).run_trace(synthetic_trace)
        total = fp16_dense.total_cycles / sqdm.total_cycles
        quant_only = (
            fp16_dense.total_cycles
            / AcceleratorSimulator(dense_baseline_config()).run_trace(synthetic_trace).total_cycles
        )
        assert total > quant_only  # sparsity adds on top of quantization

    def test_more_sparsity_more_speedup(self):
        low = [
            [random_workload(mean_sparsity=0.4, seed=s, name=f"l{s}") for s in range(2)]
            for _ in range(2)
        ]
        high = [
            [random_workload(mean_sparsity=0.8, seed=s, name=f"l{s}") for s in range(2)]
            for _ in range(2)
        ]
        assert compare_to_dense_baseline(high).speedup > compare_to_dense_baseline(low).speedup
