"""Tests for the persistent artifact store and the two-tier report cache."""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorSimulator,
    dense_baseline_config,
    random_workload,
    sqdm_config,
)
from repro.core import codec
from repro.core.artifacts import (
    _MAGIC_V1,
    ArtifactStore,
    artifact_store_at,
    default_artifact_store,
)
from repro.core.report_cache import (
    REPORT_ARTIFACT_KIND,
    ReportCache,
    artifact_key_for,
    simulate_cached,
)
from repro.serve.scheduler import SimulationRequest, run_batched


class _OpaqueLegacy:
    """Picklable (module-level) but carries no wire schema."""


def write_legacy_artifact(store: ArtifactStore, kind: str, key: str, obj) -> None:
    """Plant a version-1 (pickled) artifact, as written by older releases."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    blob = _MAGIC_V1 + hashlib.sha256(payload).digest() + payload
    path = store.path_for(kind, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "artifacts")


@pytest.fixture()
def small_trace():
    return [
        [
            random_workload(in_channels=16, spatial=4, seed=s * 3 + n, name=f"l{n}")
            for n in range(2)
        ]
        for s in range(2)
    ]


class TestArtifactStore:
    def test_roundtrip(self, store):
        key = ArtifactStore.key_for("some", "fingerprints")
        payload = {"cycles": 1.5, "array": np.arange(4.0)}
        store.put("report", key, payload)
        loaded = store.get("report", key)
        assert loaded["cycles"] == 1.5
        assert np.array_equal(loaded["array"], np.arange(4.0))
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_missing_is_default(self, store):
        assert store.get("report", "0" * 64) is None
        assert store.get("report", "0" * 64, default="fallback") == "fallback"
        assert store.stats.misses == 2 and store.stats.corrupt_discarded == 0

    def test_key_for_is_stable_and_unambiguous(self):
        assert ArtifactStore.key_for("a", "b") == ArtifactStore.key_for("a", "b")
        assert ArtifactStore.key_for("ab", "c") != ArtifactStore.key_for("a", "bc")
        with pytest.raises(ValueError):
            ArtifactStore.key_for()

    def test_rejects_path_escaping_names(self, store):
        with pytest.raises(ValueError):
            store.path_for("../evil", "a" * 64)
        with pytest.raises(ValueError):
            store.path_for("report", "../../etc/passwd")

    def test_overwrite_is_atomic_replace(self, store):
        key = ArtifactStore.key_for("x")
        store.put("report", key, "first")
        store.put("report", key, "second")
        assert store.get("report", key) == "second"
        assert store.count("report") == 1

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "garbage", "bad_magic", "bit_flip"],
    )
    def test_corrupt_file_recovers_as_miss(self, store, corruption):
        """A damaged artifact is a miss (recompute), never a crash."""
        key = ArtifactStore.key_for("doomed")
        store.put("report", key, {"value": 42})
        path = store.path_for("report", key)
        blob = path.read_bytes()
        if corruption == "truncate":
            path.write_bytes(blob[: len(blob) // 2])
        elif corruption == "garbage":
            path.write_bytes(b"not an artifact at all")
        elif corruption == "bad_magic":
            path.write_bytes(b"XXXX" + blob[4:])
        else:  # bit_flip in the payload
            mutated = bytearray(blob)
            mutated[-1] ^= 0xFF
            path.write_bytes(bytes(mutated))
        assert store.get("report", key) is None
        assert store.stats.corrupt_discarded == 1
        assert not path.exists()  # quarantined, so the next read is a clean miss

    def test_enumeration_and_wipe(self, store):
        for i in range(3):
            store.put("report", ArtifactStore.key_for(f"r{i}"), i)
        store.put("trace", ArtifactStore.key_for("t0"), "trace")
        assert store.kinds() == ["report", "trace"]
        assert store.count("report") == 3 and store.count() == 4
        assert len(store.keys("report")) == 3
        summary = store.summary()
        assert summary["total_artifacts"] == 4 and summary["total_bytes"] > 0
        assert store.wipe("report") == 3
        assert store.count() == 1
        assert store.wipe() == 1
        assert store.count() == 0

    def test_store_registry_shares_instances(self, tmp_path):
        a = artifact_store_at(tmp_path / "shared")
        b = artifact_store_at(tmp_path / "shared")
        assert a is b

    def test_default_store_follows_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        assert default_artifact_store() is None
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "env-store"))
        store = default_artifact_store()
        assert store is not None
        assert store.root == (tmp_path / "env-store").resolve()


class TestTypedFormatAndLegacy:
    def test_artifacts_are_schema_tagged_json_not_pickles(self, store):
        """The on-disk payload is a JSON header + binary sidecars."""
        key = ArtifactStore.key_for("typed")
        store.put("report", key, {"cycles": 2.0, "array": np.arange(3.0)})
        blob = store.path_for("report", key).read_bytes()
        assert blob.startswith(b"RPRO-ART2\n")
        assert b"$schema" in blob and b"value@1" in blob
        # the array's 24 raw bytes ride as a sidecar, not inline base64
        assert np.arange(3.0).tobytes() in blob

    def test_put_rejects_schema_less_objects(self, store):
        class NotWireSafe:
            pass

        with pytest.raises(codec.SchemaError, match="register"):
            store.put("report", ArtifactStore.key_for("bad"), NotWireSafe())
        assert store.count() == 0

    def test_legacy_pickle_read_requires_opt_in(self, tmp_path):
        key = ArtifactStore.key_for("legacy")
        locked = ArtifactStore(tmp_path / "s", legacy_pickle=False)
        write_legacy_artifact(locked, "report", key, {"value": 42})
        assert locked.get("report", key) is None
        assert locked.stats.legacy_skipped == 1
        assert locked.stats.corrupt_discarded == 0
        assert locked.contains("report", key), "legacy artifact must not be quarantined"

        permissive = ArtifactStore(tmp_path / "s", legacy_pickle=True)
        assert permissive.get("report", key) == {"value": 42}
        assert permissive.stats.hits == 1

    def test_legacy_env_var_opt_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_LEGACY_PICKLE", "1")
        assert ArtifactStore(tmp_path / "a").legacy_pickle is True
        monkeypatch.delenv("REPRO_ARTIFACT_LEGACY_PICKLE")
        assert ArtifactStore(tmp_path / "b").legacy_pickle is False

    def test_unknown_schema_version_is_miss_not_corruption(self, store):
        """Files written by newer code are refused, not deleted."""
        key = ArtifactStore.key_for("future")
        store.put("report", key, {"v": 1})
        path = store.path_for("report", key)
        blob = path.read_bytes()
        future = blob.replace(b"value@1", b"value@9")
        payload = future[len(b"RPRO-ART2\n") + 32 :]
        path.write_bytes(b"RPRO-ART2\n" + hashlib.sha256(payload).digest() + payload)
        assert store.get("report", key) is None
        assert store.stats.corrupt_discarded == 0
        assert path.exists()

    def test_migrate_legacy_rewrites_in_place(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", legacy_pickle=False)
        for i in range(3):
            write_legacy_artifact(store, "report", ArtifactStore.key_for(f"m{i}"), {"i": i})
        store.put("trace", ArtifactStore.key_for("fresh"), [1, 2, 3])

        result = store.migrate_legacy()
        assert result.migrated == 3
        assert result.already_current == 1
        assert result.failed == 0
        # readable without any pickle opt-in now, and stored as version 2
        for i in range(3):
            key = ArtifactStore.key_for(f"m{i}")
            assert store.get("report", key) == {"i": i}
            assert store.path_for("report", key).read_bytes().startswith(b"RPRO-ART2\n")

    def test_migrate_counts_unconvertible_artifacts_as_failed(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        write_legacy_artifact(store, "report", ArtifactStore.key_for("op"), _OpaqueLegacy())
        result = store.migrate_legacy()
        assert result.failed == 1 and result.migrated == 0
        assert store.contains("report", ArtifactStore.key_for("op"))

    def test_migrated_store_serves_reports_without_resimulation(self, store, small_trace):
        """Acceptance: after migration, a warm restart is 100% store-served."""
        report = AcceleratorSimulator(sqdm_config()).run_trace(small_trace)
        key = ReportCache.key(sqdm_config(), small_trace)
        write_legacy_artifact(store, REPORT_ARTIFACT_KIND, artifact_key_for(key), report)

        cold = ReportCache(store=store)
        assert cold.lookup_key(key) is None  # legacy payload refused by default
        assert store.stats.legacy_skipped == 1

        assert store.migrate_legacy().migrated == 1

        warm = ReportCache(store=store)
        loaded = warm.lookup_key(key)
        assert loaded is not None
        assert warm.stats.disk_hits == 1 and warm.stats.misses == 0
        assert loaded.total_cycles == report.total_cycles
        assert loaded.total_energy.total_pj == report.total_energy.total_pj

    def test_cli_cache_migrate(self, tmp_path, capsys):
        from repro.serve.cli import main as cli_main

        store = ArtifactStore(tmp_path / "cli-store")
        write_legacy_artifact(store, "report", ArtifactStore.key_for("x"), {"x": 1})
        assert cli_main(["cache", "migrate", "--artifact-dir", str(store.root)]) == 0
        assert "migrated 1 legacy artifact" in capsys.readouterr().out
        assert store.get("report", ArtifactStore.key_for("x")) == {"x": 1}


class TestMetadataLRU:
    def test_last_use_tracked_in_store_metadata_not_atime(self, store):
        """Eviction order must survive relatime/noatime mounts: frozen file
        atimes (even ones pointing far into the future) are ignored once a
        stamp exists."""
        old_key = ArtifactStore.key_for("old")
        new_key = ArtifactStore.key_for("new")
        store.put("report", old_key, os.urandom(2048))
        store.put("report", new_key, os.urandom(2048))
        store.touch("report", old_key, when=time.time() - 5000)
        store.touch("report", new_key, when=time.time())
        # simulate a filesystem whose atime says the opposite of the truth
        os.utime(store.path_for("report", old_key))
        far_past = time.time() - 9999
        os.utime(store.path_for("report", new_key), (far_past, far_past))

        per_artifact = store.total_bytes() // 2
        store.evict(max_bytes=per_artifact + per_artifact // 2)
        assert not store.contains("report", old_key)
        assert store.contains("report", new_key)

    def test_get_refreshes_metadata_stamp(self, store):
        key = ArtifactStore.key_for("refreshed")
        store.put("report", key, b"payload")
        store.touch("report", key, when=time.time() - 5000)
        stamp = store._stamp_path(store.path_for("report", key))
        before = stamp.stat().st_mtime
        assert store.get("report", key) == b"payload"
        assert stamp.stat().st_mtime > before

    def test_eviction_removes_stamp_files(self, store):
        key = ArtifactStore.key_for("stamped")
        store.put("report", key, b"x")
        stamp = store._stamp_path(store.path_for("report", key))
        assert stamp.exists()
        store.evict(max_bytes=1)
        assert not stamp.exists()
        # wipe() cleans stamps too
        key2 = ArtifactStore.key_for("stamped2")
        store.put("report", key2, b"y")
        store.wipe()
        assert not store._stamp_path(store.path_for("report", key2)).exists()

    def test_missing_stamp_falls_back_to_mtime(self, store):
        key = ArtifactStore.key_for("no-stamp")
        store.put("report", key, b"x")
        path = store.path_for("report", key)
        store._remove_stamp(path)
        stamp_time = store._last_used(path, path.stat())
        assert abs(stamp_time - path.stat().st_mtime) < 1e-6


class TestEviction:
    @staticmethod
    def _fill(store: ArtifactStore, count: int, payload_bytes: int = 2048) -> list[str]:
        keys = [ArtifactStore.key_for(f"artifact-{i}") for i in range(count)]
        for i, key in enumerate(keys):
            store.put("report", key, os.urandom(payload_bytes))
            # Distinct, strictly increasing last-use stamps (in the store's
            # own metadata, not filesystem atime) so LRU order is
            # deterministic regardless of filesystem timestamp granularity.
            store.touch("report", key, when=time.time() - 1000 + i)
        return keys

    def test_size_cap_evicts_least_recently_used_first(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        keys = self._fill(store, 6)
        cap = store.total_bytes() // 2
        result = store.evict(max_bytes=cap)
        assert result.removed > 0
        assert store.total_bytes() <= cap
        assert result.remaining_bytes == store.total_bytes()
        # the oldest artifacts went first; the newest are still here
        assert not store.contains("report", keys[0])
        assert store.contains("report", keys[-1])
        assert store.stats.evicted == result.removed
        assert store.stats.evicted_bytes == result.reclaimed_bytes

    def test_hit_refreshes_lru_position(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        keys = self._fill(store, 4)
        assert store.get("report", keys[0]) is not None  # touch the oldest
        per_artifact = store.total_bytes() // 4
        store.evict(max_bytes=2 * per_artifact + per_artifact // 2)
        assert store.contains("report", keys[0]), "touched artifact was evicted"
        assert not store.contains("report", keys[1])

    def test_ttl_expires_stale_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", ttl_seconds=60)
        keys = self._fill(store, 3)  # stamped ~1000s in the past
        fresh_key = ArtifactStore.key_for("fresh")
        store.put("report", fresh_key, b"fresh")
        result = store.evict()
        assert result.removed == 3
        assert store.contains("report", fresh_key)
        for key in keys:
            assert not store.contains("report", key)
        assert store.stats.evicted >= 3

    def test_put_triggers_ttl_eviction_after_throttle_window(self, tmp_path):
        """The write path runs TTL passes on its own (throttled to ttl/4)."""
        store = ArtifactStore(tmp_path / "s", ttl_seconds=0.05)
        old_key = ArtifactStore.key_for("old")
        store.put("report", old_key, b"old")
        time.sleep(0.2)  # > ttl and > the ttl/4 throttle window
        new_key = ArtifactStore.key_for("new")
        store.put("report", new_key, b"new")
        assert not store.contains("report", old_key)
        assert store.contains("report", new_key)

    def test_put_auto_evicts_to_size_cap(self, tmp_path):
        cap = 16 * 1024
        store = ArtifactStore(tmp_path / "s", max_bytes=cap)
        for i in range(20):
            store.put("report", ArtifactStore.key_for(f"auto-{i}"), os.urandom(2048))
        assert store.total_bytes() <= cap
        assert 0 < store.count() < 20

    def test_size_cap_under_concurrent_writers(self, tmp_path):
        """Acceptance: the store never exceeds its cap once eviction runs,
        even with many threads writing at once."""
        cap = 32 * 1024
        store = ArtifactStore(tmp_path / "s", max_bytes=cap)
        errors: list[Exception] = []

        def writer(worker: int) -> None:
            try:
                for i in range(10):
                    key = ArtifactStore.key_for(f"w{worker}", f"a{i}")
                    store.put("report", key, os.urandom(4096))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        store.evict()
        assert store.total_bytes() <= cap
        assert store.count() > 0

    def test_evicted_report_falls_back_to_resimulation(self, tmp_path, small_trace):
        """An evicted artifact is a miss, not an error: callers recompute."""
        store = ArtifactStore(tmp_path / "s")
        cache = ReportCache(store=store)
        before = cache.get_or_run(sqdm_config(), small_trace)
        assert store.count("report") == 1
        result = store.evict(max_bytes=1)  # evict everything
        assert result.removed == 1 and store.count("report") == 0

        fresh = ReportCache(store=store)  # fresh memory tier, post-eviction disk
        after = fresh.get_or_run(sqdm_config(), small_trace)
        assert fresh.stats.misses == 1 and fresh.stats.disk_hits == 0
        assert after.total_cycles == before.total_cycles
        assert store.count("report") == 1  # re-persisted for the next process

    def test_env_var_defaults(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_MAX_BYTES", "4096")
        monkeypatch.setenv("REPRO_ARTIFACT_TTL", "60.5")
        store = ArtifactStore(tmp_path / "env")
        assert store.max_bytes == 4096
        assert store.ttl_seconds == 60.5
        monkeypatch.setenv("REPRO_ARTIFACT_MAX_BYTES", "a-lot")
        with pytest.raises(ValueError, match="REPRO_ARTIFACT_MAX_BYTES"):
            ArtifactStore(tmp_path / "env2")

    def test_invalid_caps_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ArtifactStore(tmp_path / "bad", max_bytes=0)
        with pytest.raises(ValueError, match="ttl_seconds"):
            ArtifactStore(tmp_path / "bad", ttl_seconds=-1)

    def test_evict_without_policy_is_a_no_op(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        self._fill(store, 2)
        result = store.evict()
        assert result.removed == 0
        assert result.remaining_artifacts == 2


class TestTwoTierReportCache:
    def test_disk_tier_survives_new_cache_instance(self, store, small_trace):
        first = ReportCache(store=store)
        report = first.get_or_run(sqdm_config(), small_trace)
        assert first.stats.misses == 1

        second = ReportCache(store=store)  # fresh memory tier, same disk
        loaded = second.get_or_run(sqdm_config(), small_trace)
        assert second.stats.disk_hits == 1 and second.stats.misses == 0
        assert loaded.total_cycles == report.total_cycles
        # promoted to memory: the next lookup does not touch the disk tier
        second.get_or_run(sqdm_config(), small_trace)
        assert second.stats.hits == 1

    def test_corrupt_report_artifact_recomputes(self, store, small_trace):
        cache = ReportCache(store=store)
        cache.get_or_run(sqdm_config(), small_trace)
        (artifact_path,) = [store.path_for("report", k) for k in store.keys("report")]
        artifact_path.write_bytes(b"garbage" * 100)

        fresh = ReportCache(store=store)
        report = fresh.get_or_run(sqdm_config(), small_trace)
        assert fresh.stats.misses == 1 and fresh.stats.disk_hits == 0
        assert store.stats.corrupt_discarded == 1
        direct = AcceleratorSimulator(sqdm_config()).run_trace(small_trace)
        assert report.total_cycles == direct.total_cycles

    def test_simulate_cached_respects_explicit_empty_cache(self, store, small_trace):
        """Regression: an empty ReportCache is falsy, but must still be used."""
        cache = ReportCache(store=store)
        simulate_cached(sqdm_config(), small_trace, cache=cache)
        assert cache.stats.misses == 1

    def test_invalid_store_spec_rejected(self):
        with pytest.raises(ValueError, match="'auto'"):
            ReportCache(store="yes-please")


class TestCrossProcessReuse:
    def test_second_process_rerun_hits_store_without_resimulating(self, store, small_trace):
        """Acceptance: a re-run from a fresh process gets >=90% artifact-store
        hits and performs zero simulations."""
        configs = [sqdm_config(sparsity_threshold=t) for t in (0.1, 0.2, 0.3, 0.4, 0.5)]
        requests = [SimulationRequest(c, small_trace) for c in configs] + [
            SimulationRequest(dense_baseline_config(), small_trace)
        ]

        first_process = ReportCache(store=store)
        first_reports = run_batched(requests, cache=first_process)
        assert first_process.stats.misses == len(requests)

        # A "second process": fresh memory cache, fresh store instance over
        # the same directory, and any attempt to simulate is an error.
        second_store = ArtifactStore(store.root)
        second_process = ReportCache(store=second_store)

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("re-run should not simulate anything")

        original_trace, original_traces = (
            AcceleratorSimulator.run_trace,
            AcceleratorSimulator.run_traces,
        )
        AcceleratorSimulator.run_trace = forbidden
        AcceleratorSimulator.run_traces = forbidden
        try:
            second_reports = run_batched(
                [SimulationRequest(c, small_trace) for c in configs]
                + [SimulationRequest(dense_baseline_config(), small_trace)],
                cache=second_process,
            )
        finally:
            AcceleratorSimulator.run_trace = original_trace
            AcceleratorSimulator.run_traces = original_traces

        stats = second_process.stats
        assert stats.misses == 0
        assert (stats.disk_hits + stats.hits) / stats.requests >= 0.9
        for before, after in zip(first_reports, second_reports):
            assert after.total_cycles == before.total_cycles
            assert after.total_energy.total_pj == before.total_energy.total_pj
