"""Tests for the persistent artifact store and the two-tier report cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorSimulator,
    dense_baseline_config,
    random_workload,
    sqdm_config,
)
from repro.core.artifacts import (
    ArtifactStore,
    artifact_store_at,
    default_artifact_store,
)
from repro.core.report_cache import ReportCache, simulate_cached
from repro.serve.scheduler import SimulationRequest, run_batched


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "artifacts")


@pytest.fixture()
def small_trace():
    return [
        [random_workload(in_channels=16, spatial=4, seed=s * 3 + l, name=f"l{l}") for l in range(2)]
        for s in range(2)
    ]


class TestArtifactStore:
    def test_roundtrip(self, store):
        key = ArtifactStore.key_for("some", "fingerprints")
        payload = {"cycles": 1.5, "array": np.arange(4.0)}
        store.put("report", key, payload)
        loaded = store.get("report", key)
        assert loaded["cycles"] == 1.5
        assert np.array_equal(loaded["array"], np.arange(4.0))
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_missing_is_default(self, store):
        assert store.get("report", "0" * 64) is None
        assert store.get("report", "0" * 64, default="fallback") == "fallback"
        assert store.stats.misses == 2 and store.stats.corrupt_discarded == 0

    def test_key_for_is_stable_and_unambiguous(self):
        assert ArtifactStore.key_for("a", "b") == ArtifactStore.key_for("a", "b")
        assert ArtifactStore.key_for("ab", "c") != ArtifactStore.key_for("a", "bc")
        with pytest.raises(ValueError):
            ArtifactStore.key_for()

    def test_rejects_path_escaping_names(self, store):
        with pytest.raises(ValueError):
            store.path_for("../evil", "a" * 64)
        with pytest.raises(ValueError):
            store.path_for("report", "../../etc/passwd")

    def test_overwrite_is_atomic_replace(self, store):
        key = ArtifactStore.key_for("x")
        store.put("report", key, "first")
        store.put("report", key, "second")
        assert store.get("report", key) == "second"
        assert store.count("report") == 1

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "garbage", "bad_magic", "bit_flip"],
    )
    def test_corrupt_file_recovers_as_miss(self, store, corruption):
        """A damaged artifact is a miss (recompute), never a crash."""
        key = ArtifactStore.key_for("doomed")
        store.put("report", key, {"value": 42})
        path = store.path_for("report", key)
        blob = path.read_bytes()
        if corruption == "truncate":
            path.write_bytes(blob[: len(blob) // 2])
        elif corruption == "garbage":
            path.write_bytes(b"not an artifact at all")
        elif corruption == "bad_magic":
            path.write_bytes(b"XXXX" + blob[4:])
        else:  # bit_flip in the payload
            mutated = bytearray(blob)
            mutated[-1] ^= 0xFF
            path.write_bytes(bytes(mutated))
        assert store.get("report", key) is None
        assert store.stats.corrupt_discarded == 1
        assert not path.exists()  # quarantined, so the next read is a clean miss

    def test_enumeration_and_wipe(self, store):
        for i in range(3):
            store.put("report", ArtifactStore.key_for(f"r{i}"), i)
        store.put("trace", ArtifactStore.key_for("t0"), "trace")
        assert store.kinds() == ["report", "trace"]
        assert store.count("report") == 3 and store.count() == 4
        assert len(store.keys("report")) == 3
        summary = store.summary()
        assert summary["total_artifacts"] == 4 and summary["total_bytes"] > 0
        assert store.wipe("report") == 3
        assert store.count() == 1
        assert store.wipe() == 1
        assert store.count() == 0

    def test_store_registry_shares_instances(self, tmp_path):
        a = artifact_store_at(tmp_path / "shared")
        b = artifact_store_at(tmp_path / "shared")
        assert a is b

    def test_default_store_follows_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        assert default_artifact_store() is None
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "env-store"))
        store = default_artifact_store()
        assert store is not None
        assert store.root == (tmp_path / "env-store").resolve()


class TestTwoTierReportCache:
    def test_disk_tier_survives_new_cache_instance(self, store, small_trace):
        first = ReportCache(store=store)
        report = first.get_or_run(sqdm_config(), small_trace)
        assert first.stats.misses == 1

        second = ReportCache(store=store)  # fresh memory tier, same disk
        loaded = second.get_or_run(sqdm_config(), small_trace)
        assert second.stats.disk_hits == 1 and second.stats.misses == 0
        assert loaded.total_cycles == report.total_cycles
        # promoted to memory: the next lookup does not touch the disk tier
        second.get_or_run(sqdm_config(), small_trace)
        assert second.stats.hits == 1

    def test_corrupt_report_artifact_recomputes(self, store, small_trace):
        cache = ReportCache(store=store)
        cache.get_or_run(sqdm_config(), small_trace)
        (artifact_path,) = [store.path_for("report", k) for k in store.keys("report")]
        artifact_path.write_bytes(b"garbage" * 100)

        fresh = ReportCache(store=store)
        report = fresh.get_or_run(sqdm_config(), small_trace)
        assert fresh.stats.misses == 1 and fresh.stats.disk_hits == 0
        assert store.stats.corrupt_discarded == 1
        direct = AcceleratorSimulator(sqdm_config()).run_trace(small_trace)
        assert report.total_cycles == direct.total_cycles

    def test_simulate_cached_respects_explicit_empty_cache(self, store, small_trace):
        """Regression: an empty ReportCache is falsy, but must still be used."""
        cache = ReportCache(store=store)
        simulate_cached(sqdm_config(), small_trace, cache=cache)
        assert cache.stats.misses == 1

    def test_invalid_store_spec_rejected(self):
        with pytest.raises(ValueError, match="'auto'"):
            ReportCache(store="yes-please")


class TestCrossProcessReuse:
    def test_second_process_rerun_hits_store_without_resimulating(self, store, small_trace):
        """Acceptance: a re-run from a fresh process gets >=90% artifact-store
        hits and performs zero simulations."""
        configs = [sqdm_config(sparsity_threshold=t) for t in (0.1, 0.2, 0.3, 0.4, 0.5)]
        requests = [SimulationRequest(c, small_trace) for c in configs] + [
            SimulationRequest(dense_baseline_config(), small_trace)
        ]

        first_process = ReportCache(store=store)
        first_reports = run_batched(requests, cache=first_process)
        assert first_process.stats.misses == len(requests)

        # A "second process": fresh memory cache, fresh store instance over
        # the same directory, and any attempt to simulate is an error.
        second_store = ArtifactStore(store.root)
        second_process = ReportCache(store=second_store)

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("re-run should not simulate anything")

        original_trace, original_traces = (
            AcceleratorSimulator.run_trace,
            AcceleratorSimulator.run_traces,
        )
        AcceleratorSimulator.run_trace = forbidden
        AcceleratorSimulator.run_traces = forbidden
        try:
            second_reports = run_batched(
                [SimulationRequest(c, small_trace) for c in configs]
                + [SimulationRequest(dense_baseline_config(), small_trace)],
                cache=second_process,
            )
        finally:
            AcceleratorSimulator.run_trace = original_trace
            AcceleratorSimulator.run_traces = original_traces

        stats = second_process.stats
        assert stats.misses == 0
        assert (stats.disk_hits + stats.hits) / stats.requests >= 0.9
        for before, after in zip(first_reports, second_reports):
            assert after.total_cycles == before.total_cycles
            assert after.total_energy.total_pj == before.total_energy.total_pj
