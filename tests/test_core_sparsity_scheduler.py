"""Tests for temporal sparsity tracing and the threshold/update scheduling analyses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.workload import random_workload
from repro.core.policy import mixed_precision_policy
from repro.core.scheduler import (
    analyze_threshold,
    analyze_update_period,
    best_threshold,
    detection_overhead_fraction,
)
from repro.core.sparsity import (
    collect_sparsity_trace,
    sparsity_map,
    trace_to_workloads,
    traced_layers_for_model,
)
from repro.diffusion.edm import EDMDenoiser
from repro.diffusion.sampler import SamplerConfig
from repro.diffusion.schedule import ScheduleConfig
from repro.workloads.models import load_workload


@pytest.fixture(scope="module")
def relu_workload():
    wl = load_workload("cifar10", resolution=8, activation="relu")
    return wl


@pytest.fixture(scope="module")
def trace(relu_workload):
    denoiser = EDMDenoiser(relu_workload.unet, prior=relu_workload.dataset.prior)
    return collect_sparsity_trace(
        denoiser,
        relu_workload.image_shape,
        SamplerConfig(schedule=ScheduleConfig(num_steps=5)),
        num_samples=2,
        zero_tolerance_rel=1.0 / 30.0,
    )


class TestSparsityTrace:
    def test_traced_layers_are_block_convs(self, relu_workload):
        layers = traced_layers_for_model(relu_workload.unet)
        assert len(layers) == 2 * len(relu_workload.unet.block_infos())
        assert all(layer.name.endswith(("conv0", "conv1")) for layer in layers)

    def test_trace_has_one_record_per_step(self, trace):
        assert trace.num_steps == 5
        for step in trace.steps:
            assert set(step) == set(trace.layer_names())

    def test_sparsity_matrix_shape(self, trace):
        name = trace.layer_names()[0]
        matrix = trace.sparsity_matrix(name)
        assert matrix.shape == (trace.layer(name).in_channels, 5)
        assert np.all((matrix >= 0) & (matrix <= 1))

    def test_relu_model_average_sparsity_in_paper_range(self, trace):
        # Paper: ~65% average activation sparsity for the ReLU-based model.
        assert 0.45 < trace.average_sparsity() < 0.9

    def test_per_layer_average_keys(self, trace):
        per_layer = trace.per_layer_average()
        assert set(per_layer) == set(trace.layer_names())

    def test_channels_differ_in_sparsity(self, trace):
        # Per-channel sparsity must have spread (some dense, some sparse channels).
        name = trace.layer_names()[1]
        matrix = trace.sparsity_matrix(name)
        assert matrix.std() > 0.05

    def test_sparsity_evolves_over_time(self, trace):
        # The temporal aspect: at least one layer's channel classification changes.
        rates = [trace.channel_switch_rate(name, 0.3) for name in trace.layer_names()]
        assert max(rates) > 0.0

    def test_unknown_layer_raises(self, trace):
        with pytest.raises(KeyError):
            trace.layer("unet.enc.64x64_block0.conv0")

    def test_sparsity_map_binary(self, trace):
        name = trace.layer_names()[0]
        binary = sparsity_map(trace, name, threshold=0.5)
        assert set(np.unique(binary)).issubset({0, 1})

    def test_trace_to_workloads_structure(self, trace, relu_workload):
        policy = mixed_precision_policy(relu_workload.unet, relu=True)
        workload_trace = trace_to_workloads(trace, policy)
        assert len(workload_trace) == trace.num_steps
        assert len(workload_trace[0]) == len(trace.layers)
        # Conv blocks assigned by the policy carry 4- or 8-bit precision.
        assert all(w.weight_bits in (4, 8) for w in workload_trace[0])

    def test_trace_to_workloads_default_bits(self, trace):
        workload_trace = trace_to_workloads(trace, policy=None, default_bits=16)
        assert all(w.weight_bits == 16 for w in workload_trace[0])

    def test_silu_trace_less_sparse_than_relu(self, relu_workload, trace):
        silu_wl = load_workload("cifar10", resolution=8, activation="silu")
        denoiser = EDMDenoiser(silu_wl.unet, prior=silu_wl.dataset.prior)
        silu_trace = collect_sparsity_trace(
            denoiser,
            silu_wl.image_shape,
            SamplerConfig(schedule=ScheduleConfig(num_steps=3)),
            num_samples=1,
            zero_tolerance_rel=1.0 / 30.0,
        )
        assert silu_trace.average_sparsity() < trace.average_sparsity()


class TestSchedulerAnalyses:
    @pytest.fixture(scope="class")
    def synthetic_hw_trace(self):
        return [
            [
                random_workload(in_channels=48, mean_sparsity=0.65, seed=7 * t + n, name=f"l{n}")
                for n in range(2)
            ]
            for t in range(4)
        ]

    def test_threshold_sweep_returns_all_points(self, synthetic_hw_trace):
        points = analyze_threshold(synthetic_hw_trace, thresholds=[0.1, 0.3, 0.6, 0.9])
        assert [p.threshold for p in points] == [0.1, 0.3, 0.6, 0.9]

    def test_sparse_fraction_decreases_with_threshold(self, synthetic_hw_trace):
        points = analyze_threshold(synthetic_hw_trace, thresholds=[0.1, 0.5, 0.9])
        fractions = [p.sparse_fraction for p in points]
        assert fractions[0] >= fractions[1] >= fractions[2]

    def test_sparse_group_sparsity_increases_with_threshold(self, synthetic_hw_trace):
        points = analyze_threshold(synthetic_hw_trace, thresholds=[0.1, 0.5, 0.8])
        sparsities = [p.sparse_group_sparsity for p in points]
        assert sparsities[0] <= sparsities[1] <= sparsities[2]

    def test_best_threshold_is_moderate(self, synthetic_hw_trace):
        points = analyze_threshold(synthetic_hw_trace, thresholds=[0.05, 0.2, 0.3, 0.5, 0.8, 0.95])
        best = best_threshold(points)
        # The paper picks 30%; extreme thresholds should not win.
        assert 0.05 < best.threshold < 0.95
        assert best.speedup >= points[0].speedup or best.speedup >= points[-1].speedup

    def test_best_threshold_empty_raises(self):
        with pytest.raises(ValueError):
            best_threshold([])

    def test_update_period_speedup_non_increasing(self, trace, relu_workload):
        policy = mixed_precision_policy(relu_workload.unet, relu=True)
        hw_trace = trace_to_workloads(trace, policy)
        points = analyze_update_period(hw_trace, periods=[1, 2, 4])
        speedups = [p.speedup for p in points]
        assert speedups[0] >= speedups[-1] - 1e-9

    def test_update_period_counts_updates(self, synthetic_hw_trace):
        points = analyze_update_period(synthetic_hw_trace, periods=[1, 4])
        assert points[0].updates_performed > points[1].updates_performed

    def test_detection_overhead_negligible(self, synthetic_hw_trace):
        # The paper hides detection behind compute because its cost is negligible.
        assert detection_overhead_fraction(synthetic_hw_trace) < 0.02
