"""Tests for the layer module system (repro.nn.layers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    Activation,
    Conv2d,
    Downsample,
    GroupNorm,
    Linear,
    SelfAttention2d,
    Sequential,
    Upsample,
)
from repro.quant import int4_spec, int8_spec, mxint8_spec


class TestModuleSystem:
    def test_named_modules_includes_children(self):
        seq = Sequential([Conv2d(3, 4, name="c1"), Activation("relu", name="a1")], name="seq")
        names = [name for name, _ in seq.named_modules()]
        assert "seq" in names and "seq.c1" in names and "seq.a1" in names

    def test_parameters_collects_weights(self):
        conv = Conv2d(3, 4, name="conv")
        params = conv.parameters()
        assert any(key.endswith(".weight") for key in params)
        assert any(key.endswith(".bias") for key in params)

    def test_parameter_count(self):
        conv = Conv2d(2, 3, kernel_size=3, name="c")
        assert conv.parameter_count() == 3 * 2 * 9 + 3

    def test_recording_toggles_for_children(self, rng):
        seq = Sequential([Conv2d(2, 2, name="c"), Activation("relu", name="a")], name="s")
        seq.set_recording(True)
        seq(rng.normal(size=(1, 2, 4, 4)))
        assert all(m.last_output is not None for _, m in seq.named_modules())
        seq.set_recording(False)
        assert all(m.last_output is None for _, m in seq.named_modules())

    def test_base_forward_not_implemented(self):
        from repro.nn.layers import Module

        with pytest.raises(NotImplementedError):
            Module()(np.zeros(1))


class TestConvLinearQuant:
    def test_conv_output_shape(self, rng):
        conv = Conv2d(3, 8, kernel_size=3)
        assert conv(rng.normal(size=(2, 3, 8, 8))).shape == (2, 8, 8, 8)

    def test_conv_1x1_no_padding(self, rng):
        conv = Conv2d(4, 2, kernel_size=1, padding=0)
        assert conv(rng.normal(size=(1, 4, 6, 6))).shape == (1, 2, 6, 6)

    def test_conv_macs(self):
        conv = Conv2d(4, 8, kernel_size=3)
        assert conv.macs((16, 16)) == 8 * 4 * 9 * 256

    def test_weight_quantization_changes_output(self, rng):
        conv = Conv2d(4, 4, rng=rng)
        x = rng.normal(size=(1, 4, 8, 8))
        reference = conv(x)
        conv.weight_spec = int4_spec()
        quantized = conv(x)
        assert not np.allclose(reference, quantized)
        assert np.linalg.norm(reference - quantized) / np.linalg.norm(reference) < 0.5

    def test_act_quantization_changes_output(self, rng):
        conv = Conv2d(4, 4, rng=rng)
        x = rng.normal(size=(1, 4, 8, 8))
        reference = conv(x)
        conv.act_spec = int8_spec()
        assert not np.allclose(reference, conv(x))

    def test_mxint8_quantization_small_error(self, rng):
        conv = Conv2d(8, 8, rng=rng)
        x = rng.normal(size=(1, 8, 8, 8))
        reference = conv(x)
        conv.weight_spec = mxint8_spec()
        conv.act_spec = mxint8_spec()
        out = conv(x)
        assert np.linalg.norm(out - reference) / np.linalg.norm(reference) < 0.05

    def test_linear_shape_and_macs(self, rng):
        lin = Linear(6, 3)
        assert lin(rng.normal(size=(5, 6))).shape == (5, 3)
        assert lin.macs(5) == 5 * 6 * 3

    def test_linear_quantization(self, rng):
        lin = Linear(16, 16, rng=rng)
        x = rng.normal(size=(2, 16))
        reference = lin(x)
        lin.weight_spec = int4_spec()
        lin.act_spec = int4_spec()
        assert not np.allclose(reference, lin(x))


class TestOtherLayers:
    def test_group_norm_layer_adjusts_groups(self):
        norm = GroupNorm(num_channels=6, num_groups=4)
        assert 6 % norm.num_groups == 0

    def test_group_norm_forward(self, rng):
        norm = GroupNorm(8)
        out = norm(rng.normal(size=(1, 8, 4, 4)))
        assert out.shape == (1, 8, 4, 4)

    def test_activation_invalid_kind(self):
        with pytest.raises(ValueError):
            Activation("swishx")

    def test_activation_relu_sparsifies(self, rng):
        act = Activation("relu")
        out = act(rng.normal(size=(1, 4, 8, 8)))
        assert np.mean(out == 0) > 0.3

    def test_activation_silu_no_exact_zeros(self, rng):
        act = Activation("silu")
        out = act(rng.normal(size=(1, 4, 8, 8)))
        assert np.mean(out == 0) < 0.01

    def test_down_up_sample_layers(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        assert Downsample()(x).shape == (1, 2, 4, 4)
        assert Upsample()(x).shape == (1, 2, 16, 16)

    def test_attention_preserves_shape(self, rng):
        attn = SelfAttention2d(8, rng=rng)
        x = rng.normal(size=(1, 8, 4, 4))
        assert attn(x).shape == x.shape

    def test_attention_is_residual(self, rng):
        attn = SelfAttention2d(8, rng=rng)
        attn.proj.weight = np.zeros_like(attn.proj.weight)
        attn.proj.bias = np.zeros_like(attn.proj.bias)
        x = rng.normal(size=(1, 8, 4, 4))
        assert np.allclose(attn(x), x)

    def test_attention_invalid_heads(self):
        with pytest.raises(ValueError):
            SelfAttention2d(6, num_heads=4)

    def test_attention_macs_positive(self, rng):
        attn = SelfAttention2d(8, rng=rng)
        assert attn.macs((4, 4)) > 0

    def test_sequential_applies_in_order(self, rng):
        seq = Sequential([Activation("relu"), Activation("relu")])
        x = rng.normal(size=(1, 2, 4, 4))
        assert np.allclose(seq(x), np.maximum(x, 0))
