"""Setup shim so `pip install -e .` works on environments without the wheel package.

All metadata lives in setup.cfg (kept out of pyproject.toml deliberately: a
pyproject.toml with a [build-system] table forces pip onto the PEP 517 path,
which requires the `wheel` package that minimal environments lack, whereas
the setup.py/setup.cfg legacy path installs everywhere).
"""
from setuptools import setup

setup()
