"""Fleet evaluation: job submission, coalesced batching and persistent artifacts.

Demonstrates the unified execution API end to end, the workflow a fleet
operator uses to serve evaluation traffic:

1. open a :class:`~repro.core.execution.ServiceExecutor` (the evaluation
   service behind the ``Executor`` protocol) as a context manager and submit
   a burst of typed simulation specs for design points sharing a hardware
   configuration — the service coalesces them into cross-trace batched
   NumPy passes, and every submission comes back as a uniform ``JobHandle``;
2. re-submit the same traffic against a fresh in-memory cache backed by the
   same artifact directory — everything is served from disk with zero
   re-simulation (what a second worker process or a re-started job sees).

The same flows are available from the command line::

    repro sweep --workload cifar10 --param sparsity_threshold=0.1,0.3,0.5 \
        --artifact-dir /tmp/repro-artifacts
    repro cache stats --artifact-dir /tmp/repro-artifacts

Usage::

    python examples/fleet_evaluation.py
"""

from __future__ import annotations

import tempfile

from repro.accelerator import dense_baseline_config, random_workload, sqdm_config
from repro.analysis.tables import format_speedup, format_table
from repro.core.artifacts import ArtifactStore
from repro.core.execution import ServiceExecutor
from repro.core.report_cache import ReportCache
from repro.serve import SimulateJobSpec


def build_fleet_traces(num_traces: int = 12, steps: int = 5, layers: int = 6):
    """Synthetic evaluation traffic: one trace per workload variant."""
    return [
        [
            [
                random_workload(
                    in_channels=64,
                    spatial=12,
                    mean_sparsity=0.45 + 0.04 * (seed % 11),
                    seed=seed * 1000 + 10 * step + layer,
                    name=f"layer{layer}",
                )
                for layer in range(layers)
            ]
            for step in range(steps)
        ]
        for seed in range(num_traces)
    ]


def submit_fleet(executor: ServiceExecutor, traces) -> list:
    """One sweep's worth of traffic: every trace on SQ-DM and on the baseline.

    Specs in, ``JobHandle`` futures out — the same two lines would drive a
    ``RemoteExecutor`` pointed at a ``repro serve`` endpoint.
    """
    specs, labels = [], []
    for index, trace in enumerate(traces):
        specs.append(SimulateJobSpec(config=sqdm_config(), trace=trace))
        labels.append(f"sqdm[{index}]")
        specs.append(SimulateJobSpec(config=dense_baseline_config(), trace=trace))
        labels.append(f"dense[{index}]")
    return executor.map(specs, labels=labels)


def main() -> None:
    traces = build_fleet_traces()

    with tempfile.TemporaryDirectory(prefix="repro-artifacts-") as root:
        store = ArtifactStore(root)

        print("== First process: cold cache, batched simulation ==")
        cache = ReportCache(store=store)
        with ServiceExecutor(cache=cache) as executor:
            handles = submit_fleet(executor, traces)
            reports = [handle.result() for handle in handles]
        rows = [
            [f"trace {i}",
             format_speedup(reports[2 * i + 1].total_cycles / reports[2 * i].total_cycles)]
            for i in range(0, len(traces), 4)
        ]
        print(format_table(["Workload variant", "SQ-DM speed-up vs dense"], rows))
        print(
            f"cache: {cache.stats.misses} simulated, {cache.stats.hits} memory hits; "
            f"store now holds {store.count()} artifacts\n"
        )

        print("== Second process: fresh memory cache over the same artifact dir ==")
        rerun_cache = ReportCache(store=ArtifactStore(root))
        with ServiceExecutor(cache=rerun_cache) as executor:
            handles = submit_fleet(executor, traces)
            rerun_reports = [handle.result() for handle in handles]
        identical = all(
            a.total_cycles == b.total_cycles for a, b in zip(reports, rerun_reports)
        )
        print(
            f"re-run: {rerun_cache.stats.misses} simulated, "
            f"{rerun_cache.stats.disk_hits} disk hits "
            f"({rerun_cache.stats.hit_rate:.0%} hit rate); identical reports: {identical}"
        )


if __name__ == "__main__":
    main()
