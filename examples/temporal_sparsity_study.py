"""Temporal per-channel sparsity study (Fig. 5/6/7 and Fig. 11).

Shows why replacing SiLU with ReLU makes the model both quantization-friendly
and sparse, visualizes the temporal per-channel sparsity pattern, and sweeps
the sparsity threshold / update period of the temporal sparsity detector.

Usage::

    python examples/temporal_sparsity_study.py
"""

from __future__ import annotations

import copy

from repro.analysis.distributions import (
    compare_activation_distributions,
    measure_model_sparsity,
    silu_vs_relu_level_utilization,
)
from repro.analysis.tables import format_percentage, format_speedup, format_table, render_ascii_map
from repro.core.pipeline import PipelineConfig, SQDMPipeline
from repro.core.policy import mixed_precision_policy
from repro.core.scheduler import analyze_threshold, analyze_update_period
from repro.core.sparsity import sparsity_map, trace_to_workloads


def main() -> None:
    pipeline = SQDMPipeline("cifar10", PipelineConfig(num_sampling_steps=6, num_trace_samples=1))
    silu_model = pipeline.workload.unet
    relu_model = copy.deepcopy(silu_model)
    relu_model.set_activation("relu")

    print("== SiLU vs ReLU activations (Fig. 5 / Fig. 6) ==")
    silu_summary, relu_summary = compare_activation_distributions(silu_model, relu_model)
    silu_util, relu_util = silu_vs_relu_level_utilization()
    print(
        format_table(
            ["Activation", "min", "negative frac", "exact-zero frac", "4-bit levels used"],
            [
                [
                    "SiLU",
                    silu_summary.minimum,
                    silu_summary.negative_fraction,
                    silu_summary.zero_fraction,
                    f"{silu_util.levels_used}/{silu_util.levels_available} (INT4)",
                ],
                [
                    "ReLU",
                    relu_summary.minimum,
                    relu_summary.negative_fraction,
                    relu_summary.zero_fraction,
                    f"{relu_util.levels_used}/{relu_util.levels_available} (UINT4)",
                ],
            ],
        )
    )
    print(
        "model-wide activation sparsity:",
        f"SiLU {format_percentage(measure_model_sparsity(silu_model))},",
        f"ReLU {format_percentage(measure_model_sparsity(relu_model))} (paper: ~10% vs ~65%)",
    )

    print("\n== Temporal per-channel sparsity pattern (Fig. 7) ==")
    trace = pipeline.collect_trace(relu=True)
    layer = max(trace.layer_names(), key=lambda n: trace.channel_switch_rate(n, 0.3))
    print(f"layer {layer} ('#' = mostly-zero channel, '.' = dense channel; columns = time steps)")
    print(render_ascii_map(sparsity_map(trace, layer, threshold=0.5)))
    print("average sparsity across layers and steps:", format_percentage(trace.average_sparsity()))

    print("\n== Detector threshold and update schedule (Fig. 11) ==")
    policy = mixed_precision_policy(pipeline.workload.unet, relu=True)
    hw_trace = trace_to_workloads(trace, policy)
    threshold_rows = [
        [p.threshold, format_percentage(p.sparse_group_sparsity), format_speedup(p.speedup)]
        for p in analyze_threshold(hw_trace, thresholds=[0.1, 0.3, 0.5, 0.7, 0.9])
    ]
    print(format_table(["Threshold", "Sparse-group sparsity", "Speed-up vs dense"], threshold_rows))
    period_rows = [
        [p.update_period, format_speedup(p.speedup)]
        for p in analyze_update_period(hw_trace, periods=[1, 2, 4])
    ]
    print(format_table(["Update period (steps)", "Speed-up vs dense"], period_rows))


if __name__ == "__main__":
    main()
