"""Quickstart: quantize a diffusion model with SQ-DM and run it on the accelerator.

Runs the full SQ-DM flow on the CIFAR-10 workload at a small evaluation scale:

1. evaluate the FP32 baseline and the paper's MP+ReLU 4-bit scheme (proxy FID);
2. trace the temporal per-channel activation sparsity during sampling;
3. simulate the heterogeneous dense/sparse accelerator against the dense
   baseline and report the speed-up / energy-saving numbers of Fig. 12.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.tables import format_percentage, format_speedup, format_table
from repro.core.pipeline import PipelineConfig, SQDMPipeline


def main() -> None:
    config = PipelineConfig(
        num_fid_samples=12,
        num_reference_samples=256,
        num_sampling_steps=6,
        num_trace_samples=1,
    )
    pipeline = SQDMPipeline("cifar10", config)

    print("== Step 1: generation quality (proxy FID, lower is better) ==")
    baseline = pipeline.evaluate_format("FP32")
    int4_vsq = pipeline.evaluate_format("INT4-VSQ")
    ours = pipeline.evaluate_mixed_precision(relu=True)
    print(
        format_table(
            ["Scheme", "Proxy FID", "Compute saving", "Memory saving"],
            [
                ["FP32 baseline", baseline.fid, "-", "-"],
                [
                    "INT4-VSQ",
                    int4_vsq.fid,
                    format_percentage(int4_vsq.compute_saving),
                    format_percentage(int4_vsq.memory_saving),
                ],
                [
                    "Ours (MP+ReLU)",
                    ours.fid,
                    format_percentage(ours.compute_saving),
                    format_percentage(ours.memory_saving),
                ],
            ],
        )
    )

    print("\n== Step 2: temporal per-channel sparsity ==")
    trace = pipeline.collect_trace(relu=True)
    print(
        f"average activation sparsity of the ReLU model: {trace.average_sparsity():.2f}"
        " (paper: ~0.65)"
    )

    print("\n== Step 3: accelerator simulation ==")
    hardware = pipeline.evaluate_hardware(trace=trace)
    print(
        format_table(
            ["Metric", "Value", "Paper"],
            [
                [
                    "speed-up from temporal sparsity (vs dense 2-DPE)",
                    format_speedup(hardware.sparsity_speedup),
                    "1.83x",
                ],
                [
                    "system energy saving",
                    format_percentage(hardware.sparsity_energy_saving),
                    "51.5%",
                ],
                [
                    "speed-up from 4-bit quantization (vs FP16)",
                    format_speedup(hardware.quantization_speedup),
                    "3.78x",
                ],
                ["total speed-up vs FP16 dense", format_speedup(hardware.total_speedup), "6.91x"],
            ],
        )
    )


if __name__ == "__main__":
    main()
