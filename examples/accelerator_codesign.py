"""Accelerator co-design exploration (Fig. 9 / Fig. 12 style).

Uses the accelerator simulator directly — without running the neural network —
to explore hardware design points on synthetic workload traces: PE sizing,
dense-vs-heterogeneous organizations and the effect of workload sparsity.
This is the workflow a hardware architect would use to scale the design "to
meet specific latency and power requirements" (Sec. IV-D).

Design-point evaluations are independent, so the sparsity and PE-scaling
studies fan out through the declarative sweep runner
(:func:`repro.core.experiments.run_sweep`) over one shared
:class:`~repro.core.execution.PoolExecutor` opened as a context manager —
the same sweeps would run on a :class:`~repro.core.execution.ServiceExecutor`
or a remote endpoint by swapping that one object.  The organization study
goes through the batching scheduler (:func:`repro.serve.run_batched`), which
coalesces the two dense-baseline traces into one cross-trace batched pass
and caches every report.

Usage::

    python examples/accelerator_codesign.py
"""

from __future__ import annotations

from repro.accelerator import (
    AcceleratorConfig,
    AcceleratorSimulator,
    PEConfig,
    dense_baseline_config,
    random_workload,
    retime_trace_precision,
    sqdm_config,
)
from repro.analysis.tables import format_percentage, format_speedup, format_table
from repro.core.execution import PoolExecutor
from repro.core.experiments import SweepSpec, run_sweep
from repro.serve import SimulationRequest, run_batched


def build_trace(mean_sparsity: float, steps: int = 6, layers: int = 8):
    """A synthetic EDM-like trace: per-step conv layers with per-channel sparsity."""
    return [
        [
            random_workload(
                in_channels=64,
                out_channels=64,
                spatial=16,
                mean_sparsity=mean_sparsity,
                weight_bits=4,
                act_bits=4,
                seed=100 * step + layer,
                name=f"layer{layer}",
            )
            for layer in range(layers)
        ]
        for step in range(steps)
    ]


def main() -> None:
    trace = build_trace(mean_sparsity=0.65)
    fp16_trace = retime_trace_precision(trace, 16, 16)

    print("== Organization study: dense baseline vs heterogeneous DPE+SPE ==")
    fp16_dense, int4_dense, int4_sqdm = run_batched(
        [
            SimulationRequest(dense_baseline_config(), fp16_trace),
            SimulationRequest(dense_baseline_config(), trace),
            SimulationRequest(sqdm_config(), trace),
        ]
    )
    rows = [
        ["FP16, dense 2xDPE (baseline)", fp16_dense.total_time_ms, format_speedup(1.0), "-"],
        ["INT4, dense 2xDPE", int4_dense.total_time_ms,
         format_speedup(fp16_dense.total_cycles / int4_dense.total_cycles), "-"],
        ["INT4, 1xDPE + 1xSPE (SQ-DM)", int4_sqdm.total_time_ms,
         format_speedup(fp16_dense.total_cycles / int4_sqdm.total_cycles),
         format_percentage(1 - int4_sqdm.total_energy.total_pj / int4_dense.total_energy.total_pj)],
    ]
    print(
        format_table(
            [
                "Configuration",
                "Latency (ms)",
                "Speed-up vs FP16 dense",
                "Energy saving vs INT4 dense",
            ],
            rows,
        )
    )

    print("\n== Sensitivity to workload sparsity ==")

    def sparsity_point(mean_sparsity: float) -> list[str]:
        t = build_trace(mean_sparsity=mean_sparsity, steps=3)
        dense = AcceleratorSimulator(dense_baseline_config()).run_trace(t)
        hetero = AcceleratorSimulator(sqdm_config()).run_trace(t)
        return [
            format_percentage(mean_sparsity),
            format_speedup(dense.total_cycles / hetero.total_cycles),
            format_percentage(1 - hetero.total_energy.total_pj / dense.total_energy.total_pj),
        ]

    # One thread pool, context-managed, serves both studies below.
    pool = PoolExecutor("thread")

    with pool:
        sweep = run_sweep(
            sparsity_point,
            SweepSpec(name="sparsity-sensitivity", grid={"mean_sparsity": [0.3, 0.5, 0.65, 0.8]}),
            executor=pool,
        )
        print(
            format_table(
                ["Avg activation sparsity", "Speed-up vs dense", "Energy saving"], sweep.values()
            )
        )

        print("\n== Scaling the PE array ==")

        def scaling_point(multipliers: int) -> list:
            config = AcceleratorConfig(
                name=f"sqdm-{multipliers}",
                num_dpe=1,
                num_spe=1,
                pe=PEConfig(multipliers=multipliers),
            )
            report = AcceleratorSimulator(config).run_trace(trace)
            return [multipliers, report.total_time_ms, f"{report.total_energy.total_uj:.1f}"]

        sweep = run_sweep(
            scaling_point,
            SweepSpec(name="pe-scaling", grid={"multipliers": [64, 128, 256, 512]}),
            executor=pool,
        )
        print(format_table(["Multipliers per PE", "Latency (ms)", "Energy (uJ)"], sweep.values()))
    print(
        "\n(The architecture 'is scalable to meet specific latency and power requirements'"
        " — Sec. IV-D.)"
    )


if __name__ == "__main__":
    main()
