"""Mixed-precision quantization study (Table I / Table II / Fig. 3 style).

Explores the quantization design space on one workload:

* uniform data formats (FP16, INT8, MXINT8, INT4, INT4-VSQ);
* block-wise sensitivity (which blocks must stay at 8-bit);
* the SQ-DM mixed-precision policies (MP-only and MP+ReLU).

Usage::

    python examples/mixed_precision_study.py [workload]

where ``workload`` is one of cifar10, afhqv2, ffhq, imagenet (default cifar10).
"""

from __future__ import annotations

import sys

from repro.analysis.sensitivity import block_sensitivity_sweep
from repro.analysis.tables import format_percentage, format_table
from repro.core.costs import high_precision_cost_fraction
from repro.core.pipeline import PipelineConfig, SQDMPipeline
from repro.core.policy import mixed_precision_policy, sensitive_block_names


def main(workload: str = "cifar10") -> None:
    config = PipelineConfig(num_fid_samples=8, num_reference_samples=256, num_sampling_steps=5)
    pipeline = SQDMPipeline(workload, config)

    print(f"== Uniform formats on {pipeline.workload.label} ==")
    rows = []
    for fmt in ["FP32", "FP16", "INT8", "MXINT8", "INT4", "INT4-VSQ"]:
        evaluation = pipeline.evaluate_format(fmt)
        rows.append([fmt, evaluation.fid, format_percentage(evaluation.compute_saving)])
    print(format_table(["Format", "Proxy FID", "Compute saving"], rows))

    print("\n== Block-wise quantization sensitivity (Fig. 3) ==")
    report = block_sensitivity_sweep(pipeline)
    rows = [[b.block_name, b.fid_delta] for b in sorted(report.blocks, key=lambda b: b.order)]
    print(format_table(["Block", "FID increase when 4-bit"], rows))
    print(
        "most sensitive blocks:",
        ", ".join(b.block_name for b in report.most_sensitive(top_k=2)),
    )

    print("\n== SQ-DM mixed-precision policies (Table II) ==")
    model = pipeline.workload.unet
    policy = mixed_precision_policy(model, relu=True)
    print("blocks kept at MXINT8:", sorted(sensitive_block_names(model)))
    print(
        "fraction of compute left above 4-bit:",
        format_percentage(high_precision_cost_fraction(model, policy)),
        "(paper: ~5% for the full-size EDM)",
    )
    rows = []
    for relu in (False, True):
        evaluation = pipeline.evaluate_mixed_precision(relu=relu)
        rows.append(
            [evaluation.scheme, evaluation.fid, format_percentage(evaluation.compute_saving),
             format_percentage(evaluation.memory_saving)]
        )
    print(format_table(["Scheme", "Proxy FID", "Compute saving", "Memory saving"], rows))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "cifar10")
