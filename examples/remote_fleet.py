"""Remote fleet evaluation: an HTTP server, two clients, one artifact store.

Demonstrates the `repro.serve.http` front end end to end, the deployment
shape of a fleet evaluation service:

1. start an :class:`EvaluationHTTPServer` over an artifact directory (in a
   real deployment this is ``repro serve --port 8035 --artifact-dir ...`` on
   a beefy machine);
2. run two concurrent clients submitting the *same* sweep through
   :class:`~repro.core.execution.RemoteExecutor` (the unified execution API
   over HTTP) — the server's single-flight scheduler coalesces their
   identical requests, so each unique (config, trace) pair is simulated
   exactly once;
3. restart the server over the same artifact directory and re-run the
   sweep — everything is served from disk with zero re-simulation;
4. submit one *grid description* (:class:`~repro.serve.specs.SweepJobSpec`)
   and let the server plan, coalesce and batch the design points.

The client code is executor-agnostic: swap ``RemoteExecutor(endpoint)`` for
a ``ServiceExecutor`` (or ``InlineExecutor``) and the same specs, handles
and results flow through an in-process backend instead.

Everything crosses the wire as versioned, schema-tagged JSON — no pickles —
so any HTTP client (curl included) could drive the same flows.

The same flows are available from the command line::

    repro serve --port 8035 --artifact-dir /tmp/repro-artifacts &
    repro sweep --workload cifar10 --endpoint http://127.0.0.1:8035
    repro cache evict --artifact-dir /tmp/repro-artifacts --max-bytes 100000000

Usage::

    python examples/remote_fleet.py
"""

from __future__ import annotations

import tempfile
import threading

from repro.accelerator import dense_baseline_config, random_workload, sqdm_config
from repro.core.artifacts import ArtifactStore
from repro.core.execution import RemoteExecutor
from repro.core.report_cache import ReportCache
from repro.serve import (
    EvaluationService,
    SimulateJobSpec,
    SweepJobSpec,
    start_http_server,
)


def build_traces(num_traces: int = 6, steps: int = 4, layers: int = 4):
    return [
        [
            [
                random_workload(
                    in_channels=48,
                    spatial=10,
                    mean_sparsity=0.5,
                    seed=seed * 1000 + 10 * step + layer,
                    name=f"layer{layer}",
                )
                for layer in range(layers)
            ]
            for step in range(steps)
        ]
        for seed in range(num_traces)
    ]


def client_sweep(name: str, endpoint: str, traces) -> list:
    """One remote client's traffic: every trace on SQ-DM and the dense baseline."""
    specs, labels = [], []
    for index, trace in enumerate(traces):
        specs.append(SimulateJobSpec(config=sqdm_config(), trace=trace))
        labels.append(f"{name}-sqdm[{index}]")
        specs.append(SimulateJobSpec(config=dense_baseline_config(), trace=trace))
        labels.append(f"{name}-dense[{index}]")
    with RemoteExecutor(endpoint=endpoint) as executor:
        handles = executor.map(specs, labels=labels)
        return [handle.result(timeout=600) for handle in handles]


def main() -> None:
    traces = build_traces()

    with tempfile.TemporaryDirectory(prefix="repro-remote-") as root:
        print("== Cold server: two concurrent clients, coalesced on the server ==")
        service = EvaluationService(cache=ReportCache(store=ArtifactStore(root)))
        server = start_http_server(service, port=0)
        results: dict[str, list] = {}
        workers = [
            threading.Thread(
                target=lambda n=n: results.update({n: client_sweep(n, server.endpoint, traces)})
            )
            for n in ("client-a", "client-b")
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stats = service.cache.stats
        unique = 2 * len(traces)
        print(
            f"two clients submitted {2 * unique} jobs over {unique} unique keys: "
            f"{stats.misses} simulated, "
            f"{service.service_stats()['coalesced_attached']} coalesced in flight\n"
        )
        server.close()
        service.close()

        print("== Restarted server over the same artifact dir: warm traffic ==")
        service = EvaluationService(cache=ReportCache(store=ArtifactStore(root)))
        server = start_http_server(service, port=0)
        warm = client_sweep("client-c", server.endpoint, traces)
        stats = service.cache.stats
        identical = all(
            a.total_cycles == b.total_cycles for a, b in zip(results["client-a"], warm)
        )
        print(
            f"warm re-run: {stats.misses} simulated, {stats.disk_hits} disk hits "
            f"({stats.hit_rate:.0%} hit rate); identical reports: {identical}\n"
        )

        print("== Server-side sweep planning: one grid spec, N design points ==")
        spec = SweepJobSpec(
            base=sqdm_config(),
            grid={"sparsity_threshold": [0.1, 0.3, 0.5]},
            trace=traces[0],
            baseline=dense_baseline_config(),
            name="threshold-grid",
        )
        with RemoteExecutor(endpoint=server.endpoint) as executor:
            outcome = executor.submit(spec).result(timeout=600)
        for params, report in zip(outcome.params, outcome.reports):
            speedup = outcome.baseline.total_cycles / report.total_cycles
            print(f"  {params}: {report.total_time_ms:.3f} ms ({speedup:.2f}x vs dense)")
        print(
            f"one sweep job -> {len(outcome.reports)} planned cases; "
            f"{service.cache.stats.misses} simulated this restart"
        )
        server.close()
        service.close()


if __name__ == "__main__":
    main()
