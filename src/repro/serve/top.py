"""``repro top`` — a live terminal view of one evaluation server.

Polls ``GET /metrics`` (Prometheus text) and ``GET /jobs`` on a ``repro
serve`` endpoint and renders a refreshing dashboard: queue depth, inflight
keys, coalescing ratio, cache hit rates, throughput counters and p50/p95/p99
job latency estimated from the histogram buckets.  ``--once`` prints a
single snapshot and exits (scripts and tests); otherwise the screen
refreshes every ``--interval`` seconds until interrupted.

The module is also the reference consumer of the exposition format:
:func:`parse_prometheus` understands exactly what
:meth:`~repro.core.telemetry.MetricsRegistry.render_prometheus` emits
(``# HELP``/``# TYPE`` comments, labeled samples, histogram ``_bucket`` /
``_sum`` / ``_count`` series).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from typing import Any, Iterable, Mapping

from ..core.telemetry import quantile_from_buckets

#: Sample name -> list of (labels, value) pairs.
Samples = dict[str, list[tuple[dict[str, str], float]]]


def parse_prometheus(text: str) -> Samples:
    """Parse Prometheus text exposition format into name -> samples.

    Handles the subset our renderer emits: ``# HELP`` / ``# TYPE`` comments
    (skipped), bare samples, and ``name{key="value",...} value`` lines with
    backslash-escaped label values.
    """
    samples: Samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, _, value_text = rest.rpartition("}")
            labels = _parse_labels(label_text)
        else:
            name, _, value_text = line.rpartition(" ")
            labels = {}
        try:
            value = float(value_text.strip())
        except ValueError:
            continue  # tolerate foreign lines rather than failing the view
        samples.setdefault(name.strip(), []).append((labels, value))
    return samples


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    index = 0
    while index < len(text):
        eq = text.find("=", index)
        if eq < 0:
            break
        key = text[index:eq].strip().lstrip(",").strip()
        # Value is a double-quoted string with backslash escapes.
        start = text.find('"', eq)
        if start < 0:
            break
        chars: list[str] = []
        pos = start + 1
        while pos < len(text):
            ch = text[pos]
            if ch == "\\" and pos + 1 < len(text):
                nxt = text[pos + 1]
                chars.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                pos += 2
                continue
            if ch == '"':
                break
            chars.append(ch)
            pos += 1
        labels[key] = "".join(chars)
        index = pos + 1
    return labels


def sample_total(samples: Samples, name: str, **match: str) -> float:
    """Sum of one sample series, optionally filtered on label values."""
    total = 0.0
    for labels, value in samples.get(name, []):
        if all(labels.get(key) == wanted for key, wanted in match.items()):
            total += value
    return total


def histogram_quantiles(
    samples: Samples, base_name: str, quantiles: Iterable[float]
) -> list[float | None]:
    """Estimate quantiles of one histogram, aggregated across label sets.

    Cumulative ``_bucket`` counts sharing an ``le`` bound are summed (so a
    per-kind histogram collapses into one distribution), then interpolated
    exactly like :meth:`Histogram.quantile`.  Returns None per quantile when
    the histogram has no observations.
    """
    by_bound: dict[float, float] = {}
    has_inf = False
    inf_total = 0.0
    for labels, value in samples.get(f"{base_name}_bucket", []):
        bound_text = labels.get("le", "")
        if bound_text == "+Inf":
            has_inf = True
            inf_total += value
            continue
        try:
            bound = float(bound_text)
        except ValueError:
            continue
        by_bound[bound] = by_bound.get(bound, 0.0) + value
    uppers = sorted(by_bound)
    cumulative = [by_bound[upper] for upper in uppers]
    cumulative.append(inf_total if has_inf else (cumulative[-1] if cumulative else 0.0))
    count = cumulative[-1]
    if count <= 0:
        return [None for _ in quantiles]
    return [quantile_from_buckets(uppers, cumulative, q) for q in quantiles]


# -- snapshot ---------------------------------------------------------------------


def fetch_text(url: str, timeout: float = 10.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def fetch_json(url: str, timeout: float = 10.0) -> Any:
    return json.loads(fetch_text(url, timeout=timeout))


def build_snapshot(metrics_text: str, jobs_payload: Mapping[str, Any]) -> dict[str, Any]:
    """Digest one /metrics + /jobs poll into the numbers the view renders."""
    samples = parse_prometheus(metrics_text)

    memory_hits = sample_total(samples, "repro_cache_memory_hits_total")
    disk_hits = sample_total(samples, "repro_cache_disk_hits_total")
    misses = sample_total(samples, "repro_cache_misses_total")
    lookups = memory_hits + disk_hits + misses
    attached = sample_total(samples, "repro_service_coalesced_attached_total")

    p50, p95, p99 = histogram_quantiles(
        samples, "repro_service_job_duration_seconds", (0.50, 0.95, 0.99)
    )
    jobs = list(jobs_payload.get("jobs", []))
    by_status: dict[str, int] = {}
    for job in jobs:
        by_status[job.get("status", "?")] = by_status.get(job.get("status", "?"), 0) + 1

    return {
        # Fleet numbers are None (and the fleet line hidden) on servers that
        # dispatch to their in-process pool instead of pull workers.
        "fleet": (
            {
                "workers_alive": sample_total(samples, "repro_fleet_workers_alive"),
                "fleet_queue_depth": sample_total(samples, "repro_fleet_queue_depth"),
                "leases_expired": sample_total(samples, "repro_fleet_leases_expired_total"),
                "tasks_requeued": sample_total(samples, "repro_fleet_jobs_requeued_total"),
                "tasks_completed": sample_total(
                    samples, "repro_fleet_tasks_completed_total", outcome="accepted"
                ),
                "completions_rejected": sample_total(
                    samples, "repro_fleet_tasks_completed_total", outcome="rejected"
                ),
            }
            if "repro_fleet_workers_alive" in samples
            else None
        ),
        "queue_depth": sample_total(samples, "repro_service_queue_depth"),
        "inflight_keys": sample_total(samples, "repro_service_inflight_keys"),
        "submitted": sample_total(samples, "repro_service_jobs_submitted_total"),
        "completed": sample_total(samples, "repro_service_jobs_completed_total"),
        "cancelled": sample_total(samples, "repro_service_cancelled_total"),
        "coalesced_attached": attached,
        # Fraction of simulation demand served by attaching to an identical
        # in-flight batch instead of entering the cache/kernel path at all.
        "coalescing_ratio": attached / (attached + lookups) if (attached + lookups) else 0.0,
        "cache_memory_hits": memory_hits,
        "cache_disk_hits": disk_hits,
        "cache_misses": misses,
        "cache_hit_rate": (memory_hits + disk_hits) / lookups if lookups else 0.0,
        "kernel_calls": sample_total(samples, "repro_scheduler_kernel_calls_total"),
        "traces_simulated": sample_total(samples, "repro_scheduler_traces_simulated_total"),
        "job_latency_p50_s": p50,
        "job_latency_p95_s": p95,
        "job_latency_p99_s": p99,
        "jobs_by_status": by_status,
        "recent_jobs": jobs[-8:],
    }


def _seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 1.0:
        return f"{value * 1000:.1f}ms"
    return f"{value:.2f}s"


def render_snapshot(snapshot: Mapping[str, Any], endpoint: str) -> str:
    """One dashboard frame as plain text (no terminal control codes)."""
    lines = [
        f"repro top — {endpoint}",
        "",
        (
            f"queue depth {snapshot['queue_depth']:.0f}   "
            f"inflight keys {snapshot['inflight_keys']:.0f}   "
            f"submitted {snapshot['submitted']:.0f}   "
            f"completed {snapshot['completed']:.0f}   "
            f"cancelled {snapshot['cancelled']:.0f}"
        ),
        (
            f"coalescing ratio {snapshot['coalescing_ratio']:.1%} "
            f"({snapshot['coalesced_attached']:.0f} attached)   "
            f"kernel calls {snapshot['kernel_calls']:.0f}   "
            f"traces simulated {snapshot['traces_simulated']:.0f}"
        ),
        (
            f"cache hit rate {snapshot['cache_hit_rate']:.1%} "
            f"(memory {snapshot['cache_memory_hits']:.0f}, "
            f"disk {snapshot['cache_disk_hits']:.0f}, "
            f"misses {snapshot['cache_misses']:.0f})"
        ),
        (
            f"job latency p50 {_seconds(snapshot['job_latency_p50_s'])}   "
            f"p95 {_seconds(snapshot['job_latency_p95_s'])}   "
            f"p99 {_seconds(snapshot['job_latency_p99_s'])}"
        ),
    ]
    fleet = snapshot.get("fleet")
    if fleet is not None:
        lines.append(
            f"fleet: {fleet['workers_alive']:.0f} workers alive   "
            f"queued {fleet['fleet_queue_depth']:.0f}   "
            f"completed {fleet['tasks_completed']:.0f}   "
            f"leases expired {fleet['leases_expired']:.0f}   "
            f"requeued {fleet['tasks_requeued']:.0f}   "
            f"rejected {fleet['completions_rejected']:.0f}"
        )
    if snapshot["jobs_by_status"]:
        counts = "   ".join(
            f"{status} {count}" for status, count in sorted(snapshot["jobs_by_status"].items())
        )
        lines.append(f"jobs: {counts}")
    recent = snapshot.get("recent_jobs") or []
    if recent:
        lines.append("")
        lines.append(f"{'ID':10s} {'KIND':11s} {'STATUS':10s} {'QUEUED':>9s} {'RUN':>9s}  LABEL")
        for job in recent:
            queued = job.get("queued_seconds")
            running = job.get("running_seconds")
            lines.append(
                f"{str(job.get('id', '?')):10s} "
                f"{str(job.get('kind', '?')):11s} "
                f"{str(job.get('status', '?')):10s} "
                f"{_seconds(queued):>9s} "
                f"{_seconds(running):>9s}  "
                f"{str(job.get('label', ''))[:40]}"
            )
    return "\n".join(lines)


def run_top(
    endpoint: str,
    interval: float = 2.0,
    once: bool = False,
    iterations: int | None = None,
    stream: Any = None,
) -> int:
    """Poll and render until interrupted (or ``once`` / ``iterations`` runs out)."""
    endpoint = endpoint.rstrip("/")
    out = stream if stream is not None else sys.stdout
    rendered = 0
    while True:
        try:
            metrics_text = fetch_text(f"{endpoint}/metrics")
            jobs_payload = fetch_json(f"{endpoint}/jobs")
        except OSError as exc:
            print(f"repro top: cannot reach {endpoint}: {exc}", file=sys.stderr)
            return 1
        frame = render_snapshot(build_snapshot(metrics_text, jobs_payload), endpoint)
        if not once and stream is None and out.isatty():
            out.write("\x1b[2J\x1b[H")  # clear screen, home cursor
        out.write(frame + "\n")
        out.flush()
        rendered += 1
        if once or (iterations is not None and rendered >= iterations):
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
