"""Fleet evaluation service: turn the pipeline into something you submit jobs to.

The paper's headline results are sweeps over many (workload, policy,
architecture) points; at fleet scale those sweeps arrive as *evaluation
traffic*, not as one script.  This package provides the service layer:

``repro.serve.jobs``
    The job model — submit / status / result with thread-safe completion
    events.
``repro.serve.scheduler``
    Request coalescing: queued simulation requests sharing an energy table
    and backend are fused into one batched pass — cross-trace
    (:meth:`VectorizedBackend.run_traces`) for a single configuration,
    cross-config (:meth:`VectorizedBackend.run_config_traces`) for a whole
    sweep grid — behind the two-tier report cache.
``repro.serve.service``
    :class:`EvaluationService` — the job queue itself: a coalescing scheduler
    thread, a thread pool for simulation-bound work (NumPy releases the GIL)
    and a ``ProcessPoolExecutor`` for sampling-bound work (FID generation,
    which is GIL-limited).
``repro.serve.specs``
    The typed wire job specs — ``simulate_spec`` / ``quality_spec`` /
    ``sweep_spec`` / ``callable_spec`` — resolved server-side, plus the
    wire-function registry.  Sweeps are *planned on the server*: clients
    submit one grid, the scheduler expands and coalesces it.
``repro.serve.workers``
    Module-level job functions for the process pool, registered as wire
    functions so clients can invoke them by name.
``repro.serve.fleet``
    :class:`WorkerFleet` — the lease-tracking dispatch queue behind
    ``repro serve --dispatch workers``: pull-based workers register, claim
    tasks under heartbeat-renewed leases, and a missed heartbeat requeues
    the task for another worker.
``repro.serve.worker``
    :class:`WorkerRuntime` (the ``repro worker`` pull loop) and
    :class:`WorkerPoolExecutor` (the fleet as a self-contained
    ``--executor worker-pool`` backend).
``repro.serve.http``
    :class:`EvaluationHTTPServer` — the stdlib REST front end: remote
    clients POST typed job specs as plain, versioned JSON (no pickles on
    the wire), poll results, and share the server's single-flight scheduler
    and artifact store.
``repro.serve.client``
    :class:`RemoteEvaluationClient` — urllib-based client mirroring the
    service surface, with jittered retry/backoff and polling job handles.

Both the service and the client also speak the unified execution API of
:mod:`repro.core.execution` (re-exported here): ``service.as_executor()`` /
``client.as_executor()`` — or ``ServiceExecutor`` / ``RemoteExecutor``
directly — give the uniform ``submit(spec) -> JobHandle`` surface shared
with the inline and pool backends.
``repro.serve.top``
    The ``repro top`` dashboard: polls ``GET /metrics`` (Prometheus text)
    and ``GET /jobs`` and renders queue depth, coalescing ratio, cache hit
    rates and p50/p95/p99 job latency.
``repro.serve.cli``
    The ``repro`` console script: ``repro sweep``, ``repro evaluate``,
    ``repro cache``, ``repro serve``, ``repro top``.
"""

from . import workers as _workers  # noqa: F401 - registers the wire functions
from ..core.execution import (
    Executor,
    InlineExecutor,
    JobHandle,
    LocalCallSpec,
    PoolExecutor,
    RemoteExecutor,
    ServiceExecutor,
    register_executor,
    resolve_executor,
)
from .client import RemoteEvaluationClient, RemoteJob, RemoteServiceError
from .fleet import FleetTask, WorkerFleet, WorkerInfo
from .http import EvaluationHTTPServer, start_http_server
from .jobs import Job, JobFailedError, JobKind, JobStatus
from .worker import WorkerPoolExecutor, WorkerRuntime, run_worker
from .scheduler import BatchStats, SimulationRequest, coalesce_requests, run_batched
from .service import EvaluationService
from .specs import (
    CallableJobSpec,
    QualityJobSpec,
    SimulateJobSpec,
    SweepJobResult,
    SweepJobSpec,
    register_wire_function,
)

__all__ = [
    "BatchStats",
    "CallableJobSpec",
    "EvaluationHTTPServer",
    "EvaluationService",
    "Executor",
    "FleetTask",
    "InlineExecutor",
    "Job",
    "JobFailedError",
    "JobHandle",
    "JobKind",
    "JobStatus",
    "LocalCallSpec",
    "PoolExecutor",
    "QualityJobSpec",
    "RemoteEvaluationClient",
    "RemoteExecutor",
    "RemoteJob",
    "RemoteServiceError",
    "ServiceExecutor",
    "SimulateJobSpec",
    "SimulationRequest",
    "SweepJobResult",
    "SweepJobSpec",
    "WorkerFleet",
    "WorkerInfo",
    "WorkerPoolExecutor",
    "WorkerRuntime",
    "coalesce_requests",
    "register_executor",
    "register_wire_function",
    "resolve_executor",
    "run_batched",
    "run_worker",
    "start_http_server",
]
