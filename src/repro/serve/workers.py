"""Process-pool job functions for sampling-bound evaluation work.

FID generation runs the NumPy U-Net sampler layer by layer from Python, so —
unlike the vectorized simulator — it holds the GIL for most of its runtime
and gains nothing from threads.  The evaluation service therefore routes
sampling-bound jobs to a ``ProcessPoolExecutor``, which requires the job
functions to live at module level (picklable by reference) and to exchange
only plain, picklable values: workload names and knob dicts in, result dicts
out.  Each worker process builds its own pipeline; the persistent artifact
store (``REPRO_ARTIFACT_DIR`` or the explicit ``artifact_dir`` argument)
is what lets workers share FID reference statistics and sparsity traces
instead of recomputing them.

Both entry points are registered as *wire functions* (see
:func:`repro.serve.specs.register_wire_function`), so remote clients can
invoke them by name through a ``callable_spec`` — the server resolves the
name to these functions; no code crosses the wire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .specs import register_wire_function

if TYPE_CHECKING:
    from ..core.pipeline import SQDMPipeline


def _build_pipeline(
    workload: str,
    resolution: int | None = None,
    pipeline_overrides: dict[str, Any] | None = None,
    artifact_dir: str | None = None,
) -> "SQDMPipeline":
    from ..core.pipeline import PipelineConfig, SQDMPipeline
    from ..workloads.models import load_workload

    config = PipelineConfig(**(pipeline_overrides or {}))
    loaded = load_workload(workload, resolution=resolution)
    artifacts: Any = "auto"
    if artifact_dir:
        from ..core.artifacts import artifact_store_at

        artifacts = artifact_store_at(artifact_dir)
    return SQDMPipeline(workload=loaded, config=config, artifacts=artifacts)


def evaluate_quality(
    workload: str,
    scheme: str,
    resolution: int | None = None,
    pipeline_overrides: dict[str, Any] | None = None,
    artifact_dir: str | None = None,
) -> dict[str, Any]:
    """Generate images under one Table I/II scheme and score them with FID.

    ``scheme`` is a Table I format name ("FP32", "INT8", "MXINT8",
    "INT4-VSQ", ...) or one of the mixed-precision schemes ``"MP-only"`` /
    ``"MP+ReLU"``.  Returns a plain dict so results cross the process
    boundary without dragging model objects along.
    """
    pipeline = _build_pipeline(workload, resolution, pipeline_overrides, artifact_dir)
    if scheme in ("MP-only", "MP+ReLU"):
        evaluation = pipeline.evaluate_mixed_precision(relu=scheme == "MP+ReLU")
    else:
        evaluation = pipeline.evaluate_format(scheme)
    return {
        "workload": evaluation.workload,
        "scheme": evaluation.scheme,
        "fid": evaluation.fid,
        "compute_saving": evaluation.compute_saving,
        "memory_saving": evaluation.memory_saving,
        "relu_based": evaluation.relu_based,
    }


def evaluate_hardware(
    workload: str,
    resolution: int | None = None,
    pipeline_overrides: dict[str, Any] | None = None,
    artifact_dir: str | None = None,
) -> dict[str, Any]:
    """Run the Fig. 12 hardware comparison for one workload, returning summary numbers."""
    pipeline = _build_pipeline(workload, resolution, pipeline_overrides, artifact_dir)
    evaluation = pipeline.evaluate_hardware()
    return {
        "workload": evaluation.workload,
        "average_sparsity": evaluation.average_sparsity,
        "sparsity_speedup": evaluation.sparsity_speedup,
        "sparsity_energy_saving": evaluation.sparsity_energy_saving,
        "quantization_speedup": evaluation.quantization_speedup,
        "total_speedup": evaluation.total_speedup,
        "sqdm_cycles": evaluation.sqdm_report.total_cycles,
        "sqdm_energy_pj": evaluation.sqdm_report.total_energy.total_pj,
        "sqdm_time_ms": evaluation.sqdm_report.total_time_ms,
    }


register_wire_function("evaluate_quality", evaluate_quality)
register_wire_function("evaluate_hardware", evaluate_hardware)
