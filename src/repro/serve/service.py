"""The evaluation service: a job queue over the batched simulation scheduler.

:class:`EvaluationService` is the in-process fleet front end.  Clients submit
jobs (simulations, sampling runs, arbitrary callables) and get
:class:`~repro.serve.jobs.Job` handles back immediately; a scheduler thread
drains the queue, *coalesces* simulation jobs that share an accelerator
configuration into single cross-trace batched passes
(:func:`~repro.serve.scheduler.run_batched`), and routes work to the right
pool:

* **simulation / callable jobs → threads.**  The batched NumPy engine
  releases the GIL for its array work, so a thread pool scales and shares the
  in-process report cache.
* **sampling jobs → processes.**  FID generation runs the Python-level U-Net
  sampler and is GIL-bound; those jobs execute module-level functions from
  :mod:`repro.serve.workers` in a ``ProcessPoolExecutor`` (created lazily on
  first use).  Payloads are pickle-checked at submit time so an unpicklable
  job fails fast with an actionable message instead of a pool traceback.

Because submission batches naturally (callers enqueue a sweep's worth of jobs
before blocking on results), coalescing needs no artificial delay: the
scheduler grabs everything queued at each wakeup.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Mapping

from ..accelerator.config import AcceleratorConfig
from ..accelerator.energy import EnergyTable
from ..accelerator.simulator import WorkloadTrace
from ..core.experiments import ensure_picklable
from ..core.report_cache import DEFAULT_REPORT_CACHE, ReportCache
from .jobs import Job, JobKind, JobStatus
from .scheduler import SimulationRequest, coalesce_requests, run_batched


class EvaluationService:
    """Job-queue front end over the cached, batched evaluation pipeline.

    Parameters
    ----------
    cache:
        Report cache shared by all simulation jobs (process default if None);
        give it an :class:`~repro.core.artifacts.ArtifactStore` to persist
        results across processes.
    max_workers:
        Thread-pool size for simulation/callable jobs (library default if
        None).
    process_workers:
        Process-pool size for sampling jobs (library default if None).  The
        pool is only created when the first sampling job arrives.
    history_limit:
        How many *completed* jobs the service keeps addressable by id.  A
        long-lived service would otherwise pin every result (reports included)
        forever; beyond the limit the oldest terminal jobs are forgotten.
        Job handles returned by ``submit_*`` keep working regardless — only
        id-based lookup of old jobs ages out.

    Use as a context manager, or call :meth:`close`; shutdown cancels jobs
    still queued and waits for running ones.
    """

    def __init__(
        self,
        cache: ReportCache | None = None,
        max_workers: int | None = None,
        process_workers: int | None = None,
        history_limit: int = 1024,
    ):
        if history_limit < 0:
            raise ValueError("history_limit must be >= 0")
        self.history_limit = history_limit
        # Explicit None check: an empty ReportCache is falsy (it has __len__).
        self.cache = DEFAULT_REPORT_CACHE if cache is None else cache
        self._threads = ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="repro-serve")
        self._process_workers = process_workers
        self._process_pool: ProcessPoolExecutor | None = None
        self._jobs: dict[str, Job] = {}
        self._queue: list[tuple[Job, Any]] = []
        self._condition = threading.Condition()
        self._closed = False
        self._ids = itertools.count(1)
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-scheduler", daemon=True
        )
        self._scheduler.start()

    # -- submission -------------------------------------------------------------

    def _new_job(self, kind: JobKind, label: str) -> Job:
        return Job(id=f"job-{next(self._ids):04d}", kind=kind, label=label)

    def _retire_completed_locked(self) -> None:
        """Forget the oldest terminal jobs beyond ``history_limit`` (lock held)."""
        terminal = [job_id for job_id, job in self._jobs.items() if job.done]
        for job_id in terminal[: max(0, len(terminal) - self.history_limit)]:
            del self._jobs[job_id]

    def _enqueue(self, job: Job, payload: Any) -> Job:
        with self._condition:
            if self._closed:
                raise RuntimeError("evaluation service is closed")
            self._jobs[job.id] = job
            self._retire_completed_locked()
            self._queue.append((job, payload))
            self._condition.notify()
        return job

    def submit_simulation(
        self,
        config: AcceleratorConfig,
        trace: WorkloadTrace,
        energy_table: EnergyTable | None = None,
        backend: str | None = None,
        label: str = "",
    ) -> Job:
        """Queue one trace simulation; requests sharing a config get batched."""
        request = SimulationRequest(
            config=config, trace=trace, energy_table=energy_table, backend=backend
        )
        job = self._new_job(JobKind.SIMULATION, label or f"simulate:{config.name}")
        return self._enqueue(job, request)

    def submit_sampling(
        self,
        fn: Callable[..., Any],
        args: Iterable[Any] = (),
        kwargs: Mapping[str, Any] | None = None,
        label: str = "",
    ) -> Job:
        """Queue a sampling-bound job for the process pool.

        ``fn`` must be a module-level function and the arguments plain data
        (see :mod:`repro.serve.workers`); both are verified here so mistakes
        fail at submission, not deep inside the executor.
        """
        payload = (fn, tuple(args), dict(kwargs or {}))
        ensure_picklable(
            payload,
            "sampling jobs execute in worker processes, so the function and its "
            "arguments must be picklable: pass a module-level function (e.g. from "
            "repro.serve.workers) and plain-data arguments, not lambdas, bound "
            "methods or live model objects",
        )
        job = self._new_job(JobKind.SAMPLING, label or f"sampling:{getattr(fn, '__name__', fn)}")
        return self._enqueue(job, payload)

    def submit_callable(
        self,
        fn: Callable[..., Any],
        args: Iterable[Any] = (),
        kwargs: Mapping[str, Any] | None = None,
        label: str = "",
    ) -> Job:
        """Queue an arbitrary callable on the thread pool."""
        payload = (fn, tuple(args), dict(kwargs or {}))
        job = self._new_job(JobKind.CALLABLE, label or f"call:{getattr(fn, '__name__', fn)}")
        return self._enqueue(job, payload)

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Job:
        """Convenience form of :meth:`submit_callable`."""
        return self.submit_callable(fn, args=args, kwargs=kwargs)

    # -- inspection -------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        with self._condition:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> list[Job]:
        with self._condition:
            return list(self._jobs.values())

    def status(self, job_id: str) -> JobStatus:
        return self.job(job_id).status

    def result(self, job_id: str, timeout: float | None = None) -> Any:
        """Block for one job's result (raises on failure; see :meth:`Job.result`)."""
        return self.job(job_id).result(timeout)

    def wait_all(self, jobs: Iterable[Job] | None = None, timeout: float | None = None) -> bool:
        """Wait for the given jobs (default: all submitted); False on timeout."""
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        for job in list(jobs) if jobs is not None else self.jobs():
            remaining = None if deadline is None else max(0.0, deadline - _time.monotonic())
            if not job.wait(remaining):
                return False
        return True

    # -- scheduler --------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._closed:
                    self._condition.wait()
                if self._closed and not self._queue:
                    return
                drained, self._queue = self._queue, []
            try:
                self._dispatch(drained)
            except Exception as exc:  # pragma: no cover - defensive; _dispatch guards itself
                for job, _ in drained:
                    if not job.done:
                        job.mark_failed(exc)

    def _dispatch(self, drained: list[tuple[Job, Any]]) -> None:
        simulations: list[tuple[Job, SimulationRequest]] = []
        for job, payload in drained:
            if job.kind is JobKind.SIMULATION:
                simulations.append((job, payload))
            elif job.kind is JobKind.SAMPLING:
                self._dispatch_pool_job(job, payload, self._processes())
            else:
                self._dispatch_pool_job(job, payload, self._threads)

        # Coalesce the simulation jobs drained together: each config/energy/
        # backend group becomes one batched thread-pool task, so groups run in
        # parallel while traces inside a group share a single NumPy pass.
        requests_by_id = {id(request): job for job, request in simulations}
        for group in coalesce_requests([request for _, request in simulations]):
            group_jobs = [requests_by_id[id(request)] for request in group]
            self._threads.submit(self._run_simulation_group, group_jobs, group)

    def _run_simulation_group(self, jobs: list[Job], requests: list[SimulationRequest]) -> None:
        for job in jobs:
            job.mark_running()
        try:
            reports = run_batched(requests, cache=self.cache)
        except Exception as exc:  # noqa: BLE001 - a bad group fails its own jobs only
            for job in jobs:
                job.mark_failed(exc)
            return
        for job, report in zip(jobs, reports):
            job.mark_done(report)

    def _dispatch_pool_job(self, job: Job, payload: Any, pool: Any) -> None:
        fn, args, kwargs = payload

        def complete(future: Future) -> None:
            error = future.exception()
            if error is not None:
                job.mark_failed(error)
            else:
                job.mark_done(future.result())

        job.mark_running()
        try:
            future = pool.submit(fn, *args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - e.g. submitting to a broken pool
            job.mark_failed(exc)
            return
        future.add_done_callback(complete)

    def _processes(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(max_workers=self._process_workers)
        return self._process_pool

    # -- lifecycle --------------------------------------------------------------

    def close(self, cancel_queued: bool = False) -> None:
        """Shut the service down, waiting for in-flight work.

        ``cancel_queued=True`` marks still-queued jobs CANCELLED instead of
        running them.
        """
        with self._condition:
            if self._closed:
                return
            self._closed = True
            if cancel_queued:
                for job, _ in self._queue:
                    job.mark_cancelled("cancelled at service shutdown")
                self._queue = []
            self._condition.notify_all()
        self._scheduler.join()
        self._threads.shutdown(wait=True)
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
