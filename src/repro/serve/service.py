"""The evaluation service: a job queue over the batched simulation scheduler.

:class:`EvaluationService` is the in-process fleet front end.  Clients submit
jobs (simulations, sampling runs, arbitrary callables) and get
:class:`~repro.serve.jobs.Job` handles back immediately; a scheduler thread
drains the queue, *coalesces* simulation jobs that share an accelerator
configuration into single cross-trace batched passes
(:func:`~repro.serve.scheduler.run_batched`), and routes work to the right
pool:

* **simulation / callable jobs → threads.**  The batched NumPy engine
  releases the GIL for its array work, so a thread pool scales and shares the
  in-process report cache.
* **sampling jobs → processes.**  FID generation runs the Python-level U-Net
  sampler and is GIL-bound; those jobs execute module-level functions from
  :mod:`repro.serve.workers` in a ``ProcessPoolExecutor`` (created lazily on
  first use).  Payloads are pickle-checked at submit time so an unpicklable
  job fails fast with an actionable message instead of a pool traceback.

Because submission batches naturally (callers enqueue a sweep's worth of jobs
before blocking on results), coalescing needs no artificial delay: the
scheduler grabs everything queued at each wakeup.

Two properties matter once several *clients* (threads, or remote HTTP
clients via :mod:`repro.serve.http`) share one service:

* **Single-flight simulation.**  Identical simulation requests arriving in
  different scheduler drains attach to the in-flight batch for their cache
  key instead of re-simulating, so N clients submitting the same sweep cost
  one simulation per unique key — deterministically, not just when their
  submissions happen to land in one drain.
* **Cancellation.**  :meth:`EvaluationService.cancel` cancels a job that has
  not started.  The race against dispatch is resolved by the per-job
  transition lock: a job cancelled after the scheduler drained it but before
  a worker claimed it reports ``CANCELLED`` and its work is skipped.
"""

from __future__ import annotations

import itertools
import threading
from collections import Counter
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Mapping

from ..accelerator.config import AcceleratorConfig
from ..accelerator.energy import EnergyTable
from ..accelerator.simulator import WorkloadTrace
from ..core import telemetry
from ..core.columnar import ensure_report
from ..core.execution import ensure_picklable
from ..core.report_cache import CacheKey, DEFAULT_REPORT_CACHE, ReportCache
from .fleet import WorkerFleet
from .jobs import Job, JobKind, JobStatus
from .scheduler import (
    BatchStats,
    SimulationRequest,
    _config_partitions,
    coalesce_requests,
    run_batched,
)
from .specs import (
    CallableJobSpec,
    QualityJobSpec,
    SimulateJobSpec,
    SweepJobResult,
    SweepJobSpec,
)


class _JobSink:
    """Completion adapter: one plain simulation job behind one request."""

    __slots__ = ("job",)

    def __init__(self, job: Job) -> None:
        self.job = job

    def claim(self) -> bool:
        return self.job.mark_running()

    def deliver(self, report: Any) -> None:
        # Batches stay columnar through the scheduler and cache; a plain
        # simulation job's caller asked for one report, so materialize here
        # (memoized on the batch — repeat deliveries of the same entry are
        # dict lookups).
        self.job.mark_done(ensure_report(report))

    def fail(self, error: BaseException) -> None:
        self.job.mark_failed(error)

    def trace_mark(self, phase: str, **fields: Any) -> None:
        self.job.trace.mark(phase, **fields)


class _SweepAggregate:
    """Collects a planned sweep's per-request reports into one result.

    The sweep job completes when every expanded request has delivered —
    whether its report came from this batch, the cache, or another client's
    in-flight batch it attached to as a follower.
    """

    def __init__(self, job: Job, spec: SweepJobSpec, num_requests: int) -> None:
        self.job = job
        self.spec = spec
        self._reports: list[Any] = [None] * num_requests
        self._remaining = num_requests
        self._lock = threading.Lock()

    def deliver(self, index: int, report: Any) -> None:
        with self._lock:
            if self._reports[index] is None:
                self._reports[index] = report
                self._remaining -= 1
            finished = self._remaining == 0
        if finished:
            num_cases = self.spec.num_cases
            self.job.mark_done(
                SweepJobResult(
                    name=self.spec.name,
                    params=self.spec.cases(),
                    reports=self._reports[:num_cases],
                    baseline=self._reports[num_cases] if self.spec.baseline is not None else None,
                )
            )

    def fail(self, error: BaseException) -> None:
        self.job.mark_failed(error)  # first failure wins; later marks no-op


class _SweepSink:
    """Completion adapter: one expanded sweep case feeding its aggregate."""

    __slots__ = ("aggregate", "index")

    def __init__(self, aggregate: _SweepAggregate, index: int) -> None:
        self.aggregate = aggregate
        self.index = index

    def claim(self) -> bool:
        # The sweep job is RUNNING as a whole; a case only becomes dead work
        # once the job reached a terminal state (e.g. another case failed it).
        return not self.aggregate.job.done

    def deliver(self, report: Any) -> None:
        self.aggregate.deliver(self.index, report)

    def fail(self, error: BaseException) -> None:
        self.aggregate.fail(error)

    def trace_mark(self, phase: str, **fields: Any) -> None:
        self.aggregate.job.trace.mark(phase, case=self.index, **fields)


class EvaluationService:
    """Job-queue front end over the cached, batched evaluation pipeline.

    Parameters
    ----------
    cache:
        Report cache shared by all simulation jobs (process default if None);
        give it an :class:`~repro.core.artifacts.ArtifactStore` to persist
        results across processes.
    max_workers:
        Thread-pool size for simulation/callable jobs (library default if
        None).
    process_workers:
        Process-pool size for sampling jobs (library default if None).  The
        pool is only created when the first sampling job arrives.
    history_limit:
        How many *completed* jobs the service keeps addressable by id.  A
        long-lived service would otherwise pin every result (reports included)
        forever; beyond the limit the oldest terminal jobs are forgotten.
        Job handles returned by ``submit_*`` keep working regardless — only
        id-based lookup of old jobs ages out.
    worker_fleet:
        ``True`` dispatches simulation work to pull-based remote workers (a
        :class:`~repro.serve.fleet.WorkerFleet` with lease/heartbeat
        liveness) instead of the in-process thread pool.  Cache hits are
        still served locally, so warm restarts and single-flight coalescing
        work fleet-wide; only misses ship to workers, one task per
        configuration partition so a sweep scales across the fleet.
    lease_seconds:
        Default worker lease length when ``worker_fleet`` is enabled.

    Use as a context manager, or call :meth:`close`; shutdown cancels jobs
    still queued and waits for running ones.
    """

    def __init__(
        self,
        cache: ReportCache | None = None,
        max_workers: int | None = None,
        process_workers: int | None = None,
        history_limit: int = 1024,
        worker_fleet: bool = False,
        lease_seconds: float = 30.0,
    ) -> None:
        if history_limit < 0:
            raise ValueError("history_limit must be >= 0")
        self.history_limit = history_limit
        # Explicit None check: an empty ReportCache is falsy (it has __len__).
        self.cache = DEFAULT_REPORT_CACHE if cache is None else cache
        self._threads = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._process_workers = process_workers
        self._process_pool: ProcessPoolExecutor | None = None
        self._jobs: dict[str, Job] = {}  #: guarded by _condition
        self._queue: list[tuple[Job, Any]] = []
        self._condition = threading.Condition()
        self._closed = False
        self._ids = itertools.count(1)
        self._submitted: Counter[str] = Counter()  #: guarded by _condition
        # Single-flight registry: cache key of every simulation batch currently
        # in flight -> follower sinks attached to it (completed with the batch).
        self._inflight: dict[CacheKey, list[Any]] = {}
        self._inflight_lock = threading.Lock()
        #: Pull-based dispatch: when set, simulation misses become fleet tasks
        #: that registered workers claim over HTTP (see repro.serve.fleet).
        self.fleet: WorkerFleet | None = (
            WorkerFleet(
                lease_seconds=lease_seconds,
                prepare=self._claim_group,
                deliver=self._complete_fleet_group,
            )
            if worker_fleet
            else None
        )
        self.coalesced_attached = 0
        self.cancelled_count = 0
        #: How the scheduler carved the simulation traffic into kernel calls
        #: (shared across worker threads; see ``service_stats()["scheduler"]``).
        #: A derived view over the process-wide telemetry registry.
        self.batch_stats = BatchStats()
        # Telemetry: counters/histograms are process-wide (they aggregate
        # across services, like any Prometheus exporter); the queue-depth and
        # inflight gauges read from THIS service at collection time, so the
        # last-constructed service owns them (cleared again at close).
        registry = telemetry.get_registry()
        self._jobs_submitted_metric = registry.counter(
            "repro_service_jobs_submitted_total", "Jobs accepted, by kind.", labels=("kind",)
        )
        self._jobs_completed_metric = registry.counter(
            "repro_service_jobs_completed_total",
            "Jobs reaching a terminal state, by kind and status.",
            labels=("kind", "status"),
        )
        self._coalesced_metric = registry.counter(
            "repro_service_coalesced_attached_total",
            "Simulation requests attached to an in-flight identical batch.",
        )
        self._cancelled_metric = registry.counter(
            "repro_service_cancelled_total", "Jobs cancelled by client request."
        )
        self._queue_wait_metric = registry.histogram(
            "repro_service_queue_wait_seconds",
            "Monotonic queue wait (submitted -> dispatched), by job kind.",
            labels=("kind",),
        )
        self._run_duration_metric = registry.histogram(
            "repro_service_job_duration_seconds",
            "Monotonic run duration (dispatched -> finished), by job kind.",
            labels=("kind",),
        )
        self._queue_gauge = registry.gauge(
            "repro_service_queue_depth", "Jobs waiting in the service queue."
        )
        self._inflight_gauge = registry.gauge(
            "repro_service_inflight_keys", "Simulation cache keys with a batch in flight."
        )
        self._queue_gauge_fn = lambda: float(len(self._queue))
        self._inflight_gauge_fn = lambda: float(len(self._inflight))
        self._queue_gauge.set_function(self._queue_gauge_fn)
        self._inflight_gauge.set_function(self._inflight_gauge_fn)
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-scheduler", daemon=True
        )
        self._scheduler.start()

    # -- submission -------------------------------------------------------------

    def _new_job(self, kind: JobKind, label: str) -> Job:
        return Job(id=f"job-{next(self._ids):04d}", kind=kind, label=label)

    def _retire_completed_locked(self) -> None:
        """Forget the oldest terminal jobs beyond ``history_limit`` (lock held)."""
        terminal = [job_id for job_id, job in self._jobs.items() if job.done]
        for job_id in terminal[: max(0, len(terminal) - self.history_limit)]:
            del self._jobs[job_id]

    def _enqueue(self, job: Job, payload: Any) -> Job:
        with self._condition:
            if self._closed:
                raise RuntimeError("evaluation service is closed")
            self._jobs[job.id] = job
            self._submitted[job.kind.value] += 1
            self._retire_completed_locked()
            self._queue.append((job, payload))
            self._condition.notify()
        self._jobs_submitted_metric.inc(kind=job.kind.value)
        job.trace.mark("submitted", kind=job.kind.value, label=job.label)
        job.add_done_callback(self._observe_completion)
        return job

    def _observe_completion(self, job: Job) -> None:
        """Feed one finished job's lifecycle timing into the registry."""
        self._jobs_completed_metric.inc(kind=job.kind.value, status=job.status.value)
        if job.started_at_monotonic is not None:
            self._queue_wait_metric.observe(job.queued_seconds, kind=job.kind.value)
        running = job.running_seconds
        if running is not None:
            self._run_duration_metric.observe(running, kind=job.kind.value)

    def submit_simulation(
        self,
        config: AcceleratorConfig,
        trace: WorkloadTrace,
        energy_table: EnergyTable | None = None,
        backend: str | None = None,
        label: str = "",
    ) -> Job:
        """Queue one trace simulation; requests sharing a config get batched."""
        request = SimulationRequest(
            config=config, trace=trace, energy_table=energy_table, backend=backend
        )
        job = self._new_job(JobKind.SIMULATION, label or f"simulate:{config.name}")
        return self._enqueue(job, request)

    def submit_sweep(self, spec: SweepJobSpec, label: str = "") -> Job:
        """Queue one server-planned sweep: the grid is expanded here, every
        case joins the coalescing/single-flight scheduler, and the job
        completes with a :class:`~repro.serve.specs.SweepJobResult`.

        Invalid grids (unknown fields, values the config rejects) raise
        :class:`ValueError` at submission, before anything is queued.
        """
        requests = spec.plan()
        job = self._new_job(JobKind.SWEEP, label or spec.default_label())
        return self._enqueue(job, (spec, requests))

    def submit_quality(self, spec: QualityJobSpec, label: str = "") -> Job:
        """Queue one declarative quality (FID) evaluation on the process pool.

        The spec is resolved server-side to
        :func:`repro.serve.workers.evaluate_quality`; nothing callable is
        taken from the client.
        """
        from .workers import evaluate_quality

        return self.submit_sampling(
            evaluate_quality, kwargs=spec.worker_kwargs(), label=label or spec.default_label()
        )

    def submit_spec(self, spec: Any, label: str = "") -> Job:
        """Queue one typed job spec (the HTTP front end's single entry point)."""
        if isinstance(spec, SimulateJobSpec):
            return self.submit_simulation(
                spec.config,
                spec.trace,
                energy_table=spec.energy_table,
                backend=spec.backend,
                label=label or spec.default_label(),
            )
        if isinstance(spec, SweepJobSpec):
            return self.submit_sweep(spec, label)
        if isinstance(spec, QualityJobSpec):
            return self.submit_quality(spec, label)
        if isinstance(spec, CallableJobSpec):
            fn = spec.resolve()  # raises ValueError for unregistered names
            submit = self.submit_sampling if spec.pool == "process" else self.submit_callable
            return submit(
                fn, args=spec.args, kwargs=spec.kwargs, label=label or spec.default_label()
            )
        raise TypeError(
            f"not a job spec: {type(spec).__name__} (expected one of "
            "SimulateJobSpec, SweepJobSpec, QualityJobSpec, CallableJobSpec)"
        )

    def submit_sampling(
        self,
        fn: Callable[..., Any],
        args: Iterable[Any] = (),
        kwargs: Mapping[str, Any] | None = None,
        label: str = "",
    ) -> Job:
        """Queue a sampling-bound job for the process pool.

        ``fn`` must be a module-level function and the arguments plain data
        (see :mod:`repro.serve.workers`); both are verified here so mistakes
        fail at submission, not deep inside the executor.
        """
        payload = (fn, tuple(args), dict(kwargs or {}))
        ensure_picklable(
            payload,
            "sampling jobs execute in worker processes, so the function and its "
            "arguments must be picklable: pass a module-level function (e.g. from "
            "repro.serve.workers) and plain-data arguments, not lambdas, bound "
            "methods or live model objects",
        )
        job = self._new_job(JobKind.SAMPLING, label or f"sampling:{getattr(fn, '__name__', fn)}")
        return self._enqueue(job, payload)

    def submit_callable(
        self,
        fn: Callable[..., Any],
        args: Iterable[Any] = (),
        kwargs: Mapping[str, Any] | None = None,
        label: str = "",
    ) -> Job:
        """Queue an arbitrary callable on the thread pool."""
        payload = (fn, tuple(args), dict(kwargs or {}))
        job = self._new_job(JobKind.CALLABLE, label or f"call:{getattr(fn, '__name__', fn)}")
        return self._enqueue(job, payload)

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Job:
        """Convenience form of :meth:`submit_callable`."""
        return self.submit_callable(fn, args=args, kwargs=kwargs)

    def as_executor(self) -> "Any":
        """This service behind the unified :class:`~repro.core.execution.Executor`
        protocol (``submit(spec) -> JobHandle``).  The executor borrows the
        service — closing it leaves the service running."""
        from ..core.execution import ServiceExecutor

        return ServiceExecutor(service=self)

    # -- inspection -------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        with self._condition:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self, status: "JobStatus | str | None" = None, limit: int | None = None) -> list[Job]:
        """Known jobs in submission order, optionally filtered and capped.

        ``status`` keeps only jobs in that state; ``limit`` keeps the most
        recently submitted matches (mirrored by ``GET /jobs?status=&limit=``
        and :meth:`RemoteEvaluationClient.list_jobs`).
        """
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        with self._condition:
            listing = list(self._jobs.values())
        if status is not None:
            wanted = JobStatus(status)
            listing = [job for job in listing if job.status is wanted]
        if limit is not None:
            listing = listing[len(listing) - min(limit, len(listing)) :]
        return listing

    def status(self, job_id: str) -> JobStatus:
        return self.job(job_id).status

    def result(self, job_id: str, timeout: float | None = None) -> Any:
        """Block for one job's result (raises on failure; see :meth:`Job.result`)."""
        return self.job(job_id).result(timeout)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started running.

        Returns True when the job was cancelled (it will report
        ``CANCELLED`` and its work is skipped), False when it already
        started, completed, or was cancelled before.  Raises :class:`KeyError`
        for unknown ids.  The per-job transition lock makes the race against
        the dispatcher safe: a job cancelled after the scheduler drained it
        but before a worker claimed it still cancels cleanly.
        """
        with self._condition:
            job = self.job(job_id)
            cancelled = job.mark_cancelled("cancelled by client request")
            if cancelled:
                self._queue = [(j, p) for j, p in self._queue if j is not job]
                self.cancelled_count += 1
        if cancelled:
            self._cancelled_metric.inc()
        return cancelled

    def service_stats(self) -> dict[str, Any]:
        """Counters for health endpoints: traffic by kind, queue and coalescing."""
        with self._condition:
            submitted = dict(self._submitted)
            queued = len(self._queue)
            status_counts = Counter(job.status.value for job in self._jobs.values())
            closed = self._closed
        with self._inflight_lock:
            attached = self.coalesced_attached
            inflight = len(self._inflight)
        return {
            "submitted": submitted,
            "queued": queued,
            "jobs_by_status": dict(status_counts),
            "coalesced_attached": attached,
            "inflight_keys": inflight,
            "cancelled": self.cancelled_count,
            "closed": closed,
            "scheduler": self.batch_stats.as_dict(),
            "cache": self.cache.summary(),
            "fleet": self.fleet.summary() if self.fleet is not None else None,
        }

    def wait_all(self, jobs: Iterable[Job] | None = None, timeout: float | None = None) -> bool:
        """Wait for the given jobs (default: all submitted); False on timeout."""
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        for job in list(jobs) if jobs is not None else self.jobs():
            remaining = None if deadline is None else max(0.0, deadline - _time.monotonic())
            if not job.wait(remaining):
                return False
        return True

    # -- scheduler --------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._closed:
                    self._condition.wait()
                if self._closed and not self._queue:
                    return
                drained, self._queue = self._queue, []
            try:
                self._dispatch(drained)
            except Exception as exc:  # pragma: no cover - defensive; _dispatch guards itself
                for job, _ in drained:
                    if not job.done:
                        job.mark_failed(exc)

    def _dispatch(self, drained: list[tuple[Job, Any]]) -> None:
        simulations: list[tuple[Any, SimulationRequest]] = []
        for job, payload in drained:
            if job.kind is JobKind.SIMULATION:
                simulations.append((_JobSink(job), payload))
            elif job.kind is JobKind.SWEEP:
                simulations.extend(self._expand_sweep(job, payload))
            elif job.kind is JobKind.SAMPLING:
                self._dispatch_process_job(job, payload)
            else:
                self._dispatch_thread_job(job, payload)
        if not simulations:
            return

        # Single-flight: requests whose cache key already has a batch in
        # flight (from an earlier drain, e.g. another client submitting the
        # same sweep) attach as followers and are completed with that batch.
        # Everything else becomes a leader and registers its key.  A "sink"
        # is the completion target of one request — a whole simulation job,
        # or one expanded case of a sweep job.
        leaders: list[tuple[Any, SimulationRequest]] = []
        with self._inflight_lock:
            for sink, request in simulations:
                followers = self._inflight.get(request.key())
                if followers is not None:
                    followers.append(sink)
                    self.coalesced_attached += 1
                    self._coalesced_metric.inc()
                    sink.trace_mark("attached")
                else:
                    self._inflight[request.key()] = []
                    leaders.append((sink, request))
                    sink.trace_mark("coalesced")

        # Coalesce the leaders drained together: each config/energy/backend
        # group becomes one batched thread-pool task, so groups run in
        # parallel while traces inside a group share a single NumPy pass.
        sinks_by_request = {id(request): sink for sink, request in leaders}
        for group in coalesce_requests([request for _, request in leaders]):
            group_sinks = [sinks_by_request[id(request)] for request in group]
            if self.fleet is not None:
                self._dispatch_fleet_group(group_sinks, group)
            else:
                self._threads.submit(self._run_simulation_group, group_sinks, group)

    def _expand_sweep(self, job: Job, payload: Any) -> list[tuple[Any, SimulationRequest]]:
        """Turn one queued sweep job into per-case sinks for the scheduler.

        The job is claimed here (server-side planning *is* its execution
        starting), so cancellation remains possible only while it sits in
        the service queue — the same contract as every other kind.
        """
        spec, requests = payload
        if not job.mark_running():  # cancelled while queued
            return []
        aggregate = _SweepAggregate(job, spec, len(requests))
        return [(_SweepSink(aggregate, index), request) for index, request in enumerate(requests)]

    def _claim_group(
        self, sinks: list[Any], requests: list[SimulationRequest]
    ) -> tuple[list[Any | None], list[SimulationRequest]]:
        """Claim each leader sink; a sink whose job was cancelled between
        coalescing and this point is skipped.  Its key stays registered only
        if followers already attached (they still need the result) —
        otherwise it is unregistered so later identical requests simulate
        freshly."""
        live_sinks: list[Any | None] = []
        live_requests: list[SimulationRequest] = []
        with self._inflight_lock:
            for sink, request in zip(sinks, requests):
                if sink.claim():
                    live_sinks.append(sink)
                    live_requests.append(request)
                elif self._inflight.get(request.key()):
                    live_sinks.append(None)
                    live_requests.append(request)
                else:
                    self._inflight.pop(request.key(), None)
        return live_sinks, live_requests

    def _dispatch_fleet_group(
        self, sinks: list[Any], requests: list[SimulationRequest]
    ) -> None:
        """Route one coalesced group to the pull-worker fleet.

        Cache hits complete immediately on the server — fleet dispatch must
        not cost a round trip for work a warm restart already has.  Misses
        are split per configuration partition so a sweep's grid spreads
        across however many workers are polling, not onto one.
        """
        assert self.fleet is not None
        miss_sinks: dict[int, Any] = {}
        misses: list[SimulationRequest] = []
        for sink, request in zip(sinks, requests):
            cached = self.cache.lookup_key(request.key(), materialize=False)
            if cached is not None:
                live = sink.claim()
                self._finish_group([sink if live else None], [request], reports=[cached])
            else:
                miss_sinks[id(request)] = sink
                misses.append(request)
        for partition in _config_partitions(misses):
            self.fleet.offer([miss_sinks[id(r)] for r in partition], partition)

    def _complete_fleet_group(
        self,
        sinks: list[Any | None],
        requests: list[SimulationRequest],
        reports: list[Any] | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Fleet completion hook: land worker results in the shared cache
        (artifact store included — warm restarts see fleet work), then
        complete the sinks and any coalesced followers."""
        if error is not None:
            self._finish_group(sinks, requests, error=error)
            return
        assert reports is not None
        canonical = [
            self.cache.insert_key(request.key(), report)
            for request, report in zip(requests, reports)
        ]
        self.batch_stats.record_group(
            num_configs=len({request.key()[0] for request in requests}),
            num_traces=len(requests),
        )
        self._finish_group(sinks, requests, reports=canonical)

    def _run_simulation_group(self, sinks: list[Any], requests: list[SimulationRequest]) -> None:
        live_sinks, live_requests = self._claim_group(sinks, requests)
        if not live_requests:
            return
        for sink in live_sinks:
            if sink is not None:
                sink.trace_mark("kernel", batch=len(live_requests))
        try:
            with telemetry.span("scheduler.batch", requests=len(live_requests)):
                reports = run_batched(
                    live_requests, cache=self.cache, stats=self.batch_stats, materialize=False
                )
        except Exception as exc:  # noqa: BLE001 - a bad group fails its own jobs only
            self._finish_group(live_sinks, live_requests, error=exc)
            return
        self._finish_group(live_sinks, live_requests, reports=reports)

    def _finish_group(
        self,
        sinks: list[Any | None],
        requests: list[SimulationRequest],
        reports: list[Any] | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Complete a batch's leader sinks and every follower attached to its keys."""
        with self._inflight_lock:
            followers = {
                key: self._inflight.pop(key, []) for key in {r.key() for r in requests}
            }
        if error is not None:
            for sink in sinks:
                if sink is not None:
                    sink.fail(error)
            for attached in followers.values():
                for sink in attached:
                    sink.fail(error)
            return
        assert reports is not None
        reports_by_key = {
            request.key(): report for request, report in zip(requests, reports)
        }
        for sink, report in zip(sinks, reports):
            if sink is not None:
                sink.deliver(report)
        for key, attached in followers.items():
            for sink in attached:
                sink.deliver(reports_by_key[key])

    def _dispatch_thread_job(self, job: Job, payload: Any) -> None:
        fn, args, kwargs = payload
        try:
            self._threads.submit(self._run_thread_job, job, fn, args, kwargs)
        except Exception as exc:  # noqa: BLE001 - e.g. submitting to a broken pool
            job.mark_failed(exc)

    def _run_thread_job(self, job: Job, fn: Callable[..., Any], args: tuple, kwargs: dict) -> None:
        if not job.mark_running():  # cancelled while waiting for a worker
            return
        try:
            result = fn(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - recorded on the job
            job.mark_failed(exc)
        else:
            job.mark_done(result)

    def _dispatch_process_job(self, job: Job, payload: Any) -> None:
        fn, args, kwargs = payload

        def complete(future: Future) -> None:
            error = future.exception()
            if error is not None:
                job.mark_failed(error)
            else:
                job.mark_done(future.result())

        # Process-pool payloads must be picklable, so the cancellation check
        # happens here (closures cannot cross the process boundary): sampling
        # jobs are cancellable only while still in the service queue.
        if not job.mark_running():
            return
        try:
            future = self._processes().submit(fn, *args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - e.g. submitting to a broken pool
            job.mark_failed(exc)
            return
        future.add_done_callback(complete)

    def _processes(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(max_workers=self._process_workers)
        return self._process_pool

    # -- lifecycle --------------------------------------------------------------

    def close(self, cancel_queued: bool = False) -> None:
        """Shut the service down, waiting for in-flight work.

        ``cancel_queued=True`` marks still-queued jobs CANCELLED instead of
        running them.
        """
        with self._condition:
            if self._closed:
                return
            self._closed = True
            if cancel_queued:
                for job, _ in self._queue:
                    job.mark_cancelled("cancelled at service shutdown")
                self._queue = []
            self._condition.notify_all()
        self._scheduler.join()
        if self.fleet is not None:
            # After the scheduler drained, no new tasks can be offered; fail
            # whatever the fleet still holds so no job waits forever.
            self.fleet.close()
        self._threads.shutdown(wait=True)
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
        # Release the live gauges only if this service still owns them (a
        # newer service may have claimed them since).
        self._queue_gauge.clear_function(self._queue_gauge_fn)
        self._inflight_gauge.clear_function(self._inflight_gauge_fn)

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
