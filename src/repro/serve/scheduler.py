"""Coalescing scheduler: fuse queued simulation requests into batched passes.

A fleet sweep produces many :class:`SimulationRequest`\\ s, most of which
share an accelerator configuration (the same SQ-DM design point evaluated on
many traces, or shared FP16/dense baselines).  :func:`run_batched` is the
functional core the evaluation service and the pipeline both use:

1. deduplicate requests by cache key and look each unique key up in the
   two-tier :class:`~repro.core.report_cache.ReportCache`;
2. group the misses by (config, energy table, backend) fingerprint and
   dispatch each group through one
   :meth:`~repro.accelerator.simulator.AcceleratorSimulator.run_traces` call —
   on the vectorized backend that is a single cross-trace batched NumPy pass;
3. insert the fresh reports into both cache tiers and return everything in
   request order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accelerator.config import AcceleratorConfig
from ..accelerator.energy import EnergyTable
from ..accelerator.simulator import AcceleratorSimulator, SimulationReport, WorkloadTrace
from ..core.report_cache import DEFAULT_REPORT_CACHE, CacheKey, ReportCache


@dataclass
class SimulationRequest:
    """One trace to simulate on one accelerator configuration."""

    config: AcceleratorConfig
    trace: WorkloadTrace
    energy_table: EnergyTable | None = None
    backend: str | None = None
    #: Cache key, computed once on first use (fingerprinting a big trace is
    #: not free; the scheduler touches each request's key several times).
    _key: CacheKey | None = field(default=None, repr=False, compare=False)

    def key(self) -> CacheKey:
        if self._key is None:
            self._key = ReportCache.key(self.config, self.trace, self.energy_table, self.backend)
        return self._key


def coalesce_requests(
    requests: list[SimulationRequest],
) -> list[list[SimulationRequest]]:
    """Group requests that can share one batched ``run_traces`` call.

    Requests coalesce when their config, energy table and backend
    fingerprints all match; within a group, duplicate traces are kept (the
    cache layer deduplicates them before simulation).  Groups come back in
    first-seen order, so dispatch stays deterministic.
    """
    groups: dict[tuple[str, str, str], list[SimulationRequest]] = {}
    for request in requests:
        config_fp, energy_fp, _, backend_name = request.key()
        groups.setdefault((config_fp, energy_fp, backend_name), []).append(request)
    return list(groups.values())


def run_batched(
    requests: list[SimulationRequest],
    cache: ReportCache | None = None,
) -> list[SimulationReport]:
    """Serve simulation requests through the cache, batching the misses.

    Returns one report per request, in request order.  Every unique key costs
    at most one cache lookup and (on a miss) exactly one simulated trace;
    misses sharing a configuration run as a single cross-trace batched pass.
    """
    # Explicit None check: an empty ReportCache is falsy (it has __len__).
    cache = DEFAULT_REPORT_CACHE if cache is None else cache
    reports: dict[CacheKey, SimulationReport] = {}

    pending: list[SimulationRequest] = []
    seen_pending: set[CacheKey] = set()
    for request in requests:
        key = request.key()
        if key in reports or key in seen_pending:
            continue
        cached = cache.lookup_key(key)
        if cached is not None:
            reports[key] = cached
        else:
            seen_pending.add(key)
            pending.append(request)

    for group in coalesce_requests(pending):
        batch = group
        first = batch[0]
        simulator = AcceleratorSimulator(
            first.config, first.energy_table, backend=first.backend
        )
        batch_reports = simulator.run_traces([request.trace for request in batch])
        for request, report in zip(batch, batch_reports):
            reports[request.key()] = cache.insert_key(request.key(), report)

    return [reports[request.key()] for request in requests]
