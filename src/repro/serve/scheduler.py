"""Coalescing scheduler: fuse queued simulation requests into batched passes.

A fleet sweep produces many :class:`SimulationRequest`\\ s — typically a grid
of accelerator configurations evaluated on a shared trace set, plus repeated
FP16/dense baselines.  :func:`run_batched` is the functional core the
evaluation service and the pipeline both use:

1. deduplicate requests by cache key and look each unique key up in the
   two-tier :class:`~repro.core.report_cache.ReportCache`;
2. group the misses into *compatibility groups* — requests sharing an energy
   table and backend, regardless of configuration — and dispatch each group
   through one batched simulator call: single-config groups take the
   cross-trace ``run_traces`` fast path, multi-config groups on the
   vectorized backend fuse into one cross-config ``run_config_traces``
   NumPy pass covering the whole (config x trace) grid;
3. insert the fresh reports into both cache tiers and return everything in
   request order.

Pass a :class:`BatchStats` to observe how the scheduler carved a workload
into kernel calls (the service exposes this as ``service_stats()`` ->
``"scheduler"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accelerator.config import AcceleratorConfig
from ..accelerator.energy import EnergyTable
from ..accelerator.simulator import AcceleratorSimulator, SimulationReport, WorkloadTrace
from ..core.columnar import ensure_report
from ..core.report_cache import DEFAULT_REPORT_CACHE, CacheKey, ReportCache
from ..core.telemetry import MetricsRegistry, get_registry


@dataclass
class SimulationRequest:
    """One trace to simulate on one accelerator configuration."""

    config: AcceleratorConfig
    trace: WorkloadTrace
    energy_table: EnergyTable | None = None
    backend: str | None = None
    #: Cache key, computed once on first use (fingerprinting a big trace is
    #: not free; the scheduler touches each request's key several times).
    _key: CacheKey | None = field(default=None, repr=False, compare=False)

    def key(self) -> CacheKey:
        if self._key is None:
            self._key = ReportCache.key(self.config, self.trace, self.energy_table, self.backend)
        return self._key


class BatchStats:
    """How the scheduler carved a request stream into simulation kernel calls.

    A *derived view* over the telemetry registry, not a parallel set of
    counters: :meth:`record_group` increments the process-wide
    ``repro_scheduler_*`` metrics (the same ones ``GET /metrics`` exposes),
    and every read subtracts the baseline captured at construction — so each
    instance still reports only the traffic it witnessed, while the registry
    stays the single source of truth.  Thread-safe: metric updates take the
    registry lock, and :meth:`as_dict` snapshots all counters under that one
    lock, so concurrent worker threads can never produce a torn snapshot.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else get_registry()
        self._kernel_calls = self._registry.counter(
            "repro_scheduler_kernel_calls_total",
            "Batched simulator invocations, by single- vs cross-config mode.",
            labels=("mode",),
        )
        self._configs = self._registry.counter(
            "repro_scheduler_configs_simulated_total",
            "Distinct (config, group) pairs simulated, summed over kernel calls.",
        )
        self._traces = self._registry.counter(
            "repro_scheduler_traces_simulated_total",
            "Traces simulated (cache misses actually executed).",
        )
        with self._registry.locked():
            self._base = self._raw()

    def _raw(self) -> dict[str, float]:
        """Current registry totals (call under the registry lock for consistency)."""
        return {
            "cross": self._kernel_calls.value(mode="cross_config"),
            "single": self._kernel_calls.value(mode="single_config"),
            "configs": self._configs.value(),
            "traces": self._traces.value(),
        }

    def record_group(self, num_configs: int, num_traces: int) -> None:
        mode = "cross_config" if num_configs > 1 else "single_config"
        with self._registry.locked():
            self._kernel_calls.inc(mode=mode)
            self._configs.inc(num_configs)
            self._traces.inc(num_traces)

    # -- derived, per-instance counters -----------------------------------------

    @property
    def cross_config_calls(self) -> int:
        """Kernel calls that fused several configurations into one pass."""
        return int(self._kernel_calls.value(mode="cross_config") - self._base["cross"])

    @property
    def single_config_calls(self) -> int:
        """Kernel calls that took the single-config ``run_traces`` fast path."""
        return int(self._kernel_calls.value(mode="single_config") - self._base["single"])

    @property
    def kernel_calls(self) -> int:
        """Batched simulator invocations: one per group with >= 1 cache miss."""
        with self._registry.locked():
            return self.cross_config_calls + self.single_config_calls

    @property
    def configs_simulated(self) -> int:
        return int(self._configs.value() - self._base["configs"])

    @property
    def traces_simulated(self) -> int:
        return int(self._traces.value() - self._base["traces"])

    def as_dict(self) -> dict[str, int]:
        with self._registry.locked():  # one lock: a consistent snapshot
            raw = self._raw()
        return {
            "kernel_calls": int(
                (raw["cross"] - self._base["cross"]) + (raw["single"] - self._base["single"])
            ),
            "cross_config_calls": int(raw["cross"] - self._base["cross"]),
            "single_config_calls": int(raw["single"] - self._base["single"]),
            "configs_simulated": int(raw["configs"] - self._base["configs"]),
            "traces_simulated": int(raw["traces"] - self._base["traces"]),
        }


def coalesce_requests(
    requests: list[SimulationRequest],
) -> list[list[SimulationRequest]]:
    """Group requests that can share one batched simulation pass.

    Requests coalesce into a *compatibility group* when their energy-table
    and backend fingerprints match — configurations may differ, because the
    cross-config kernel stacks per-config scalars into arrays.  (Configs with
    different energy tables or backend overrides still land in separate
    groups, today's behavior.)  Within a group, duplicate traces are kept
    (the cache layer deduplicates them before simulation).  Groups come back
    in first-seen order, so dispatch stays deterministic.
    """
    groups: dict[tuple[str, str], list[SimulationRequest]] = {}
    for request in requests:
        _, energy_fp, _, backend_name = request.key()
        groups.setdefault((energy_fp, backend_name), []).append(request)
    return list(groups.values())


def _config_partitions(
    group: list[SimulationRequest],
) -> list[list[SimulationRequest]]:
    """Split a compatibility group by config fingerprint, first-seen order."""
    partitions: dict[str, list[SimulationRequest]] = {}
    for request in group:
        partitions.setdefault(request.key()[0], []).append(request)
    return list(partitions.values())


def run_batched(
    requests: list[SimulationRequest],
    cache: ReportCache | None = None,
    stats: BatchStats | None = None,
    materialize: bool = True,
) -> list[SimulationReport]:
    """Serve simulation requests through the cache, batching the misses.

    Returns one result per request, in request order.  Every unique key costs
    at most one cache lookup and (on a miss) exactly one simulated trace;
    misses sharing an energy table and backend run as a single batched pass —
    cross-config on the vectorized backend, per-config otherwise.

    On columnar backends the kernel returns one
    :class:`~repro.core.columnar.ColumnarReportBatch` for the whole group,
    which is sliced (pure array copies, no objects) into per-key single-trace
    batches for the cache.  With ``materialize=True`` (the default) every
    returned result is a :class:`SimulationReport`; ``materialize=False``
    returns raw cache entries — reports or single-trace batches — for callers
    that keep sweep results columnar until someone indexes a specific report.
    """
    # Explicit None check: an empty ReportCache is falsy (it has __len__).
    cache = DEFAULT_REPORT_CACHE if cache is None else cache
    results: dict[CacheKey, object] = {}

    pending: list[SimulationRequest] = []
    seen_pending: set[CacheKey] = set()
    for request in requests:
        key = request.key()
        if key in results or key in seen_pending:
            continue
        cached = cache.lookup_key(key, materialize=False)
        if cached is not None:
            results[key] = cached
        else:
            seen_pending.add(key)
            pending.append(request)

    for group in coalesce_requests(pending):
        partitions = _config_partitions(group)
        first = group[0]
        simulator = AcceleratorSimulator(first.config, first.energy_table, backend=first.backend)
        entries = [
            (partition[0].config, [request.trace for request in partition])
            for partition in partitions
        ]
        if stats is not None:
            stats.record_group(num_configs=len(partitions), num_traces=len(group))
        batch = simulator.run_config_traces_columnar(entries)
        if batch is not None:
            # Columnar fast path: one kernel call for the whole group (also
            # for single-config groups — the kernel's cross-trace and
            # cross-config flattening coincide there), then per-key slices.
            # _segment_sums keeps every slice bit-identical to a solo run.
            flat = 0
            for partition in partitions:
                for request in partition:
                    results[request.key()] = cache.insert_key(
                        request.key(), batch.slice_trace(flat)
                    )
                    flat += 1
            continue
        # Eager fallback for backends without the columnar entry point
        # (notably the reference oracle, which carries per-PE results).
        if len(partitions) == 1:
            batch_reports = [simulator.run_traces([request.trace for request in partitions[0]])]
        else:
            batch_reports = simulator.run_config_traces(entries)
        for partition, partition_reports in zip(partitions, batch_reports):
            for request, report in zip(partition, partition_reports):
                results[request.key()] = cache.insert_key(request.key(), report)

    if materialize:
        return [ensure_report(results[request.key()]) for request in requests]
    return [results[request.key()] for request in requests]
