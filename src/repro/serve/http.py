"""REST front end for the evaluation service, on the standard library only.

:class:`EvaluationHTTPServer` wraps an
:class:`~repro.serve.service.EvaluationService` in a
:class:`http.server.ThreadingHTTPServer`, turning the in-process job queue
into something remote workers submit to — the shape large acquisition
systems converge on: a batching scheduler behind a small network protocol,
with clients submitting jobs and polling results.

Endpoints (all JSON):

========  ==================  ==================================================
Method    Path                Meaning
========  ==================  ==================================================
POST      ``/jobs``           Submit a job; returns its summary (id, status).
GET       ``/jobs``           List known jobs.
GET       ``/jobs/<id>``      One job's status; ``?result=1`` attaches the
                              pickled result once the job is done.
DELETE    ``/jobs/<id>``      Cancel a job that has not started.
GET       ``/cache/stats``    Report-cache, artifact-store and service stats.
POST      ``/cache/evict``    Run the artifact store's eviction policy.
GET       ``/healthz``        Liveness probe with traffic counters.
========  ==================  ==================================================

Rich payloads (accelerator configs, workload traces, simulation reports,
callables) cross the wire as base64-encoded pickles inside the JSON
envelope — the same representation the process pool already uses.  Pickle
deserialization executes arbitrary code by design, so the server trusts its
clients: bind to loopback or a private fleet network, never the open
internet.  Simulation jobs submitted by any number of clients coalesce
through the service's single-flight scheduler and share one artifact store.

Because every simulation job is served through the shared
:class:`~repro.core.report_cache.ReportCache`, a server restarted over the
same artifact directory serves warm traffic entirely from disk — zero
re-simulation — which is exactly what the CI smoke stage asserts.
"""

from __future__ import annotations

import base64
import json
import pickle
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from ..core.artifacts import ArtifactStore
from .jobs import Job, JobKind
from .service import EvaluationService


def encode_payload(obj: Any) -> str:
    """Pickle an object into a JSON-safe base64 string."""
    return base64.b64encode(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_payload(text: str) -> Any:
    """Inverse of :func:`encode_payload` (trusted input only; see module docs)."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class _HTTPError(Exception):
    """Internal: maps a handler failure to an HTTP status + JSON error body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class EvaluationHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one evaluation service (and its store)."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: EvaluationService,
        store: ArtifactStore | None = None,
    ):
        super().__init__(address, _EvaluationRequestHandler)
        self.service = service
        self.store = store if store is not None else service.cache.store
        self._thread: threading.Thread | None = None

    @property
    def endpoint(self) -> str:
        """The base URL clients should use (resolves ``port=0`` to the real port)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> "EvaluationHTTPServer":
        """Serve from a daemon thread (tests and embedded use); returns self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (the service is left running)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "EvaluationHTTPServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def start_http_server(
    service: EvaluationService,
    host: str = "127.0.0.1",
    port: int = 0,
    store: ArtifactStore | None = None,
) -> EvaluationHTTPServer:
    """Start an :class:`EvaluationHTTPServer` on a background thread."""
    return EvaluationHTTPServer((host, port), service, store=store).start_background()


class _EvaluationRequestHandler(BaseHTTPRequestHandler):
    server: EvaluationHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002 - stdlib signature
        pass  # per-request logging is noise for a job server; stats cover it

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        try:
            parsed = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HTTPError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(parsed, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return parsed

    def _dispatch(self, handler: Any, *args: Any) -> None:
        try:
            status, payload = handler(*args)
            self._send_json(status, payload)
        except _HTTPError as exc:
            self._send_json(exc.status, {"error": str(exc)})
        except KeyError as exc:
            self._send_json(404, {"error": str(exc.args[0]) if exc.args else "not found"})
        except Exception as exc:  # noqa: BLE001 - one bad request must not kill the server
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- routing ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["healthz"]:
            self._dispatch(self._get_healthz)
        elif parts == ["jobs"]:
            self._dispatch(self._get_jobs)
        elif len(parts) == 2 and parts[0] == "jobs":
            query = parse_qs(parsed.query)
            with_result = query.get("result", ["0"])[-1] not in ("0", "", "false")
            self._dispatch(self._get_job, parts[1], with_result)
        elif parts == ["cache", "stats"]:
            self._dispatch(self._get_cache_stats)
        else:
            self._send_json(404, {"error": f"unknown path {parsed.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if parts == ["jobs"]:
            self._dispatch(self._post_job)
        elif parts == ["cache", "evict"]:
            self._dispatch(self._post_cache_evict)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib handler naming
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            self._dispatch(self._delete_job, parts[1])
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # -- handlers ---------------------------------------------------------------

    def _get_healthz(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "status": "ok",
            "service": self.server.service.service_stats(),
            "store": str(self.server.store.root) if self.server.store is not None else None,
        }

    def _get_jobs(self) -> tuple[int, dict[str, Any]]:
        return 200, {"jobs": [job.summary() for job in self.server.service.jobs()]}

    def _get_job(self, job_id: str, with_result: bool) -> tuple[int, dict[str, Any]]:
        job = self.server.service.job(job_id)
        payload = job.summary()
        if with_result and job.ok:
            payload["result"] = encode_payload(job.result_value)
        return 200, payload

    def _post_job(self) -> tuple[int, dict[str, Any]]:
        body = self._read_json()
        kind = body.get("kind")
        label = str(body.get("label") or "")
        try:
            payload = decode_payload(body["payload"])
        except KeyError:
            raise _HTTPError(400, "job submission needs a 'payload' field") from None
        except Exception as exc:  # noqa: BLE001 - undecodable pickle is a client error
            raise _HTTPError(400, f"cannot decode job payload: {exc}") from None
        job = self._submit(kind, payload, label)
        return 201, job.summary()

    def _submit(self, kind: Any, payload: Any, label: str) -> Job:
        service = self.server.service
        try:
            if kind == JobKind.SIMULATION.value:
                return service.submit_simulation(
                    config=payload["config"],
                    trace=payload["trace"],
                    energy_table=payload.get("energy_table"),
                    backend=payload.get("backend"),
                    label=label,
                )
            if kind == JobKind.SAMPLING.value:
                fn, args, kwargs = payload
                return service.submit_sampling(fn, args=args, kwargs=kwargs, label=label)
            if kind == JobKind.CALLABLE.value:
                fn, args, kwargs = payload
                return service.submit_callable(fn, args=args, kwargs=kwargs, label=label)
        except (TypeError, ValueError, KeyError) as exc:
            # KeyError included: a payload missing e.g. 'config' is the
            # client's malformed request (400), not a missing resource (404).
            raise _HTTPError(400, f"bad {kind} job payload: {exc!r}") from None
        raise _HTTPError(400, f"unknown job kind {kind!r}")

    def _delete_job(self, job_id: str) -> tuple[int, dict[str, Any]]:
        cancelled = self.server.service.cancel(job_id)
        payload = self.server.service.job(job_id).summary()
        payload["cancelled"] = cancelled
        return 200, payload

    def _get_cache_stats(self) -> tuple[int, dict[str, Any]]:
        cache = self.server.service.cache
        payload: dict[str, Any] = {
            "cache": {
                "memory_hits": cache.stats.hits,
                "disk_hits": cache.stats.disk_hits,
                "misses": cache.stats.misses,
                "hit_rate": cache.stats.hit_rate,
                "entries": len(cache),
            },
            "service": self.server.service.service_stats(),
            "store": self.server.store.summary() if self.server.store is not None else None,
        }
        return 200, payload

    def _post_cache_evict(self) -> tuple[int, dict[str, Any]]:
        store = self.server.store
        if store is None:
            raise _HTTPError(409, "no artifact store configured on this server")
        body = self._read_json()
        result = store.evict(
            max_bytes=body.get("max_bytes"),
            ttl_seconds=body.get("ttl_seconds"),
        )
        return 200, result.summary()
