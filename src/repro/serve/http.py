"""REST front end for the evaluation service, on the standard library only.

:class:`EvaluationHTTPServer` wraps an
:class:`~repro.serve.service.EvaluationService` in a
:class:`http.server.ThreadingHTTPServer`, turning the in-process job queue
into something remote workers submit to — the shape large acquisition
systems converge on: a batching scheduler behind a small network protocol,
with clients submitting jobs and polling results.

Endpoints (all JSON):

========  ==================  ==================================================
Method    Path                Meaning
========  ==================  ==================================================
POST      ``/jobs``           Submit a typed job spec; returns its summary.
GET       ``/jobs``           List known jobs (``?status=``, ``?limit=``).
GET       ``/jobs/<id>``      One job's status; ``?result=1`` attaches the
                              schema-encoded result once the job is done.
DELETE    ``/jobs/<id>``      Cancel a job that has not started.
GET       ``/schemas``        Wire version + registered schema versions.
GET       ``/cache/stats``    Report-cache, artifact-store and service stats.
POST      ``/cache/evict``    Run the artifact store's eviction policy.
GET       ``/healthz``        Liveness probe with traffic counters.
GET       ``/metrics``        Telemetry registry, Prometheus text format.
========  ==================  ==================================================

``GET /metrics`` is the one non-JSON endpoint: it serves the process-wide
telemetry registry (:mod:`repro.core.telemetry`) as Prometheus text
exposition format 0.0.4 and skips JSON content negotiation, since scrapers
advertise text Accept headers.  Access logging is structured and opt-in:
enable ``REPRO_LOG=info`` (or ``repro serve --log-level info``) to get one
JSON line per request (method, path, status, duration, request bytes); by
default the server stays quiet.

**Everything on the wire is plain, versioned JSON** — no pickles, in either
direction.  A job submission is a typed spec envelope
(:mod:`repro.serve.specs`)::

    {"spec": {"$schema": "sweep_spec@1",
              "base": {"$schema": "accelerator_config@1", ...},
              "grid": {"sparsity_threshold": [0.2, 0.4]},
              "trace": {"$schema": "workload_trace@1", "steps": [[...]]}},
     "label": "nightly-sweep"}

and results come back as self-describing envelopes
(``{"$schema": "simulation_report@1", ...}``), so any HTTP client — curl
included — can submit work and read results without running this codebase.
Unknown schema names or versions are rejected with 400 before any work is
queued; clients can probe compatibility via ``GET /schemas``.

Negotiation and limits: requests with a body must be
``application/json`` (else 415); an ``Accept`` header that excludes JSON is
refused with 406, as is an ``X-Repro-Wire-Version`` header naming an
unsupported protocol version; bodies beyond the server's
``max_request_bytes`` are refused with 413 *before* being read, so an
oversized submission cannot exhaust server memory.

Simulation and sweep jobs submitted by any number of clients coalesce
through the service's single-flight scheduler and share one artifact store.
Because every simulation is served through the shared
:class:`~repro.core.report_cache.ReportCache`, a server restarted over the
same artifact directory serves warm traffic entirely from disk — zero
re-simulation — which is exactly what the CI smoke stage asserts.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from ..core import codec, telemetry
from ..core.artifacts import ArtifactStore
from .jobs import JobStatus
from .service import EvaluationService
from .specs import JOB_SPEC_TYPES, QualityJobSpec

#: Upper bound on accepted request bodies (satellite guard against a single
#: oversized POST exhausting server memory).  Generous enough for real
#: traces; override per server via ``max_request_bytes``.
DEFAULT_MAX_REQUEST_BYTES = 64 * 1024 * 1024

_HTTP_REQUESTS = telemetry.get_registry().counter(
    "repro_http_requests_total",
    "HTTP requests served, by method and response status.",
    labels=("method", "status"),
)


class _HTTPError(Exception):
    """Internal: maps a handler failure to an HTTP status + JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class EvaluationHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one evaluation service (and its store)."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: EvaluationService,
        store: ArtifactStore | None = None,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ) -> None:
        if max_request_bytes <= 0:
            raise ValueError("max_request_bytes must be positive")
        super().__init__(address, _EvaluationRequestHandler)
        self.service = service
        self.store = store if store is not None else service.cache.store
        self.max_request_bytes = max_request_bytes
        self._thread: threading.Thread | None = None

    @property
    def endpoint(self) -> str:
        """The base URL clients should use (resolves ``port=0`` to the real port)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> "EvaluationHTTPServer":
        """Serve from a daemon thread (tests and embedded use); returns self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (the service is left running)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "EvaluationHTTPServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def start_http_server(
    service: EvaluationService,
    host: str = "127.0.0.1",
    port: int = 0,
    store: ArtifactStore | None = None,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
) -> EvaluationHTTPServer:
    """Start an :class:`EvaluationHTTPServer` on a background thread."""
    return EvaluationHTTPServer(
        (host, port), service, store=store, max_request_bytes=max_request_bytes
    ).start_background()


class _EvaluationRequestHandler(BaseHTTPRequestHandler):
    server: EvaluationHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------------

    def parse_request(self) -> bool:
        self._request_began = time.monotonic()
        return super().parse_request()

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002 - stdlib signature
        pass  # replaced by the structured access log in log_request

    def log_request(self, code: "int | str" = "-", size: "int | str" = "-") -> None:
        """Structured, opt-in access logging (one JSON line per request).

        Off by default — the job server stays quiet — and enabled with
        ``REPRO_LOG=info`` / ``repro serve --log-level info``.  The request
        counter is always recorded.
        """
        status = str(code)
        _HTTP_REQUESTS.inc(method=self.command or "-", status=status)
        log = telemetry.event_log()
        if not log.enabled("info"):
            return
        began = getattr(self, "_request_began", None)
        log.emit(
            "http.access",
            method=self.command or "-",
            path=self.path,
            status=int(status) if status.isdigit() else status,
            duration_s=None if began is None else time.monotonic() - began,
            request_bytes=int(self.headers.get("Content-Length") or 0),
        )

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("X-Repro-Wire-Version", str(codec.WIRE_VERSION))
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _negotiate(self) -> None:
        """Refuse clients this server cannot talk to, before any work happens.

        * ``Accept`` must allow ``application/json`` (absent counts as
          ``*/*``) — a client demanding e.g. a pickle media type gets 406.
        * ``X-Repro-Wire-Version``, when sent, must match this server's
          :data:`~repro.core.codec.WIRE_VERSION` — envelope markers are not
          stable across wire versions, so a mismatch is an error, not a
          guess.
        """
        accept = self.headers.get("Accept")
        if accept is not None:
            media_types = {
                part.split(";", 1)[0].strip().lower() for part in accept.split(",")
            }
            if media_types and not media_types & {"application/json", "application/*", "*/*"}:
                raise _HTTPError(
                    406, f"this server only produces application/json, not {accept!r}"
                )
        wire_version = self.headers.get("X-Repro-Wire-Version")
        if wire_version is not None and wire_version.strip() != str(codec.WIRE_VERSION):
            raise _HTTPError(
                406,
                f"unsupported wire version {wire_version.strip()!r}; "
                f"this server speaks version {codec.WIRE_VERSION}",
            )

    def _read_json(self) -> dict[str, Any]:
        content_type = (self.headers.get("Content-Type") or "").split(";", 1)[0].strip().lower()
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.server.max_request_bytes:
            # Refused before reading a byte: Content-Length is the guard.
            raise _HTTPError(
                413,
                f"request body of {length} bytes exceeds this server's limit of "
                f"{self.server.max_request_bytes} bytes",
            )
        if length <= 0:
            return {}
        if content_type and content_type != "application/json":
            raise _HTTPError(
                415, f"request bodies must be application/json, not {content_type!r}"
            )
        try:
            parsed = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HTTPError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(parsed, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return parsed

    def _dispatch(self, handler: Any, *args: Any) -> None:
        try:
            self._negotiate()
            status, payload = handler(*args)
            self._send_json(status, payload)
        except _HTTPError as exc:
            if exc.status in (406, 413, 415):
                # These refusals happen before the request body is read, so
                # the only way to keep a keep-alive byte stream coherent is
                # to close the connection after responding — otherwise the
                # unread body would be parsed as the next request line.
                self.close_connection = True
            self._send_json(exc.status, {"error": str(exc)})
        except KeyError as exc:
            self._send_json(404, {"error": str(exc.args[0]) if exc.args else "not found"})
        # repro: allow[REP009] error is returned to the client as the HTTP 500 body
        except Exception as exc:  # noqa: BLE001 - one bad request must not kill the server
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- routing ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["metrics"]:
            # Prometheus scrapers send text Accept headers, so this endpoint
            # bypasses the JSON negotiation entirely.
            self._get_metrics()
        elif parts == ["healthz"]:
            self._dispatch(self._get_healthz)
        elif parts == ["schemas"]:
            self._dispatch(self._get_schemas)
        elif parts == ["jobs"]:
            self._dispatch(self._get_jobs, parse_qs(parsed.query))
        elif len(parts) == 2 and parts[0] == "jobs":
            query = parse_qs(parsed.query)
            with_result = query.get("result", ["0"])[-1] not in ("0", "", "false")
            self._dispatch(self._get_job, parts[1], with_result)
        elif parts == ["cache", "stats"]:
            self._dispatch(self._get_cache_stats)
        elif parts == ["workers"]:
            self._dispatch(self._get_workers)
        else:
            self._send_json(404, {"error": f"unknown path {parsed.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if parts == ["jobs"]:
            self._dispatch(self._post_job)
        elif parts == ["cache", "evict"]:
            self._dispatch(self._post_cache_evict)
        elif parts == ["workers", "register"]:
            self._dispatch(self._post_worker_register)
        elif len(parts) == 3 and parts[0] == "workers" and parts[2] == "claim":
            self._dispatch(self._post_worker_claim, parts[1])
        elif len(parts) == 3 and parts[0] == "workers" and parts[2] == "heartbeat":
            self._dispatch(self._post_worker_heartbeat, parts[1])
        elif len(parts) == 3 and parts[0] == "workers" and parts[2] == "complete":
            self._dispatch(self._post_worker_complete, parts[1])
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib handler naming
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            self._dispatch(self._delete_job, parts[1])
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # -- handlers ---------------------------------------------------------------

    def _get_metrics(self) -> None:
        """The telemetry registry in Prometheus text exposition format 0.0.4."""
        body = telemetry.render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _get_healthz(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "status": "ok",
            "wire_version": codec.WIRE_VERSION,
            "service": self.server.service.service_stats(),
            "store": str(self.server.store.root) if self.server.store is not None else None,
        }

    def _get_schemas(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "wire_version": codec.WIRE_VERSION,
            "schemas": codec.registered_schemas(),
        }

    def _get_jobs(self, query: dict[str, list[str]]) -> tuple[int, dict[str, Any]]:
        status = query.get("status", [None])[-1]
        if status is not None:
            try:
                status = JobStatus(status)
            except ValueError:
                known = [s.value for s in JobStatus]
                raise _HTTPError(400, f"unknown status {status!r}; one of {known}") from None
        limit = query.get("limit", [None])[-1]
        if limit is not None:
            try:
                limit = int(limit)
            except ValueError:
                raise _HTTPError(400, f"limit must be an integer, got {limit!r}") from None
            if limit < 0:
                raise _HTTPError(400, "limit must be >= 0")
        jobs = self.server.service.jobs(status=status, limit=limit)
        return 200, {"jobs": [job.summary() for job in jobs]}

    def _get_job(self, job_id: str, with_result: bool) -> tuple[int, dict[str, Any]]:
        job = self.server.service.job(job_id)
        payload = job.summary()
        if with_result and job.ok:
            payload["result"] = codec.encode(job.result_value)
        return 200, payload

    def _post_job(self) -> tuple[int, dict[str, Any]]:
        body = self._read_json()
        if "spec" not in body:
            raise _HTTPError(
                400,
                "job submission needs a 'spec' field holding a typed job-spec "
                "envelope (simulate_spec, sweep_spec, quality_spec or callable_spec)",
            )
        label = str(body.get("label") or "")
        try:
            spec = codec.decode(body["spec"])
        except codec.SchemaError as exc:
            # Covers unknown schema names/versions and malformed payloads.
            raise _HTTPError(400, str(exc)) from None
        if not isinstance(spec, JOB_SPEC_TYPES):
            names = sorted(cls.__name__ for cls in JOB_SPEC_TYPES)
            raise _HTTPError(
                400,
                f"{type(spec).__name__} is not a job spec; submit one of {names}",
            )
        if isinstance(spec, QualityJobSpec):
            # Remote clients do not get to name server-side filesystem paths:
            # quality jobs always run against THIS server's artifact store
            # (which is also what makes their FID statistics shareable).
            store = self.server.store
            spec = dataclasses.replace(
                spec, artifact_dir=str(store.root) if store is not None else None
            )
        try:
            job = self.server.service.submit_spec(spec, label=label)
        except (TypeError, ValueError, KeyError) as exc:
            # e.g. an unregistered wire function or a config the spec's own
            # validation only catches at planning time: the client's error.
            raise _HTTPError(400, f"cannot submit {type(spec).__name__}: {exc}") from None
        return 201, job.summary()

    def _delete_job(self, job_id: str) -> tuple[int, dict[str, Any]]:
        cancelled = self.server.service.cancel(job_id)
        payload = self.server.service.job(job_id).summary()
        payload["cancelled"] = cancelled
        return 200, payload

    def _get_cache_stats(self) -> tuple[int, dict[str, Any]]:
        cache = self.server.service.cache
        payload: dict[str, Any] = {
            "cache": {
                "memory_hits": cache.stats.hits,
                "disk_hits": cache.stats.disk_hits,
                "misses": cache.stats.misses,
                "hit_rate": cache.stats.hit_rate,
                "entries": len(cache),
            },
            "service": self.server.service.service_stats(),
            "store": self.server.store.summary() if self.server.store is not None else None,
        }
        return 200, payload

    # -- worker fleet -----------------------------------------------------------

    def _fleet(self) -> Any:
        fleet = getattr(self.server.service, "fleet", None)
        if fleet is None:
            raise _HTTPError(
                409,
                "this server dispatches to its in-process pool, not to pull "
                "workers; restart it with `repro serve --dispatch workers`",
            )
        return fleet

    def _post_worker_register(self) -> tuple[int, dict[str, Any]]:
        fleet = self._fleet()
        body = self._read_json()
        name = str(body.get("name") or "")
        if not name:
            raise _HTTPError(400, "worker registration needs a non-empty 'name'")
        lease = body.get("lease_seconds")
        try:
            worker = fleet.register(
                name,
                concurrency=int(body.get("concurrency") or 1),
                lease_seconds=None if lease is None else float(lease),
            )
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, f"cannot register worker: {exc}") from None
        return 201, {
            "worker_id": worker.id,
            "name": worker.name,
            "lease_seconds": worker.lease_seconds,
            # The contract, not a suggestion: heartbeat at least this often.
            "heartbeat_seconds": worker.lease_seconds / 3.0,
            "wire_version": codec.WIRE_VERSION,
        }

    def _post_worker_claim(self, worker_id: str) -> tuple[int, dict[str, Any]]:
        fleet = self._fleet()
        body = self._read_json()
        try:
            tasks = fleet.claim(
                worker_id,
                max_tasks=int(body.get("max_tasks") or 1),
                wait_seconds=float(body.get("wait_seconds") or 0.0),
            )
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, f"bad claim request: {exc}") from None
        return 200, {"tasks": tasks}

    def _post_worker_heartbeat(self, worker_id: str) -> tuple[int, dict[str, Any]]:
        return 200, self._fleet().heartbeat(worker_id)

    def _post_worker_complete(self, worker_id: str) -> tuple[int, dict[str, Any]]:
        fleet = self._fleet()
        body = self._read_json()
        task_id = str(body.get("task_id") or "")
        if not task_id:
            raise _HTTPError(400, "completion needs a 'task_id'")
        error = body.get("error")
        reports = None
        if error is None:
            encoded = body.get("reports")
            if not isinstance(encoded, list):
                raise _HTTPError(400, "completion needs 'reports' (a list) or 'error'")
            try:
                reports = [codec.decode(item) for item in encoded]
            except codec.SchemaError as exc:
                raise _HTTPError(400, f"malformed report envelope: {exc}") from None
        try:
            accepted = fleet.complete(
                worker_id, task_id, reports=reports, error=None if error is None else str(error)
            )
        except ValueError as exc:
            raise _HTTPError(400, str(exc)) from None
        return 200, {"task_id": task_id, "accepted": accepted}

    def _get_workers(self) -> tuple[int, dict[str, Any]]:
        return 200, self._fleet().summary()

    def _post_cache_evict(self) -> tuple[int, dict[str, Any]]:
        store = self.server.store
        if store is None:
            raise _HTTPError(409, "no artifact store configured on this server")
        body = self._read_json()
        result = store.evict(
            max_bytes=body.get("max_bytes"),
            ttl_seconds=body.get("ttl_seconds"),
        )
        return 200, result.summary()
