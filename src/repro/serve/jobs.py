"""Job model of the evaluation service: submit, watch, collect.

A :class:`Job` is one unit of evaluation traffic — a simulation request, a
sampling run, or an arbitrary callable — owned by an
:class:`~repro.serve.service.EvaluationService`.  Jobs move through
``QUEUED -> RUNNING -> DONE | FAILED`` (or ``CANCELLED``, either at service
shutdown or through :meth:`EvaluationService.cancel`); completion is
signalled through a :class:`threading.Event`, so any number of client threads
can block on :meth:`Job.wait` without polling.

State transitions are serialized by a per-job lock, so a cancellation racing
the dispatcher resolves deterministically: whichever of
:meth:`Job.mark_cancelled` and :meth:`Job.mark_running` runs first wins, and
the loser observes it.  A job cancelled in that window reports ``CANCELLED``
and its work is skipped instead of executed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

# The lifecycle vocabulary is shared with every other execution backend
# through the unified execution API; re-exported here for compatibility.
from ..core.execution import JobFailedError, JobStatus
from ..core.telemetry import Trace, event_log

__all__ = ["Job", "JobFailedError", "JobKind", "JobStatus"]


class JobKind(str, Enum):
    """Worker-routing class of a job.

    ``SIMULATION`` jobs are coalesced by accelerator config and dispatched to
    the thread pool (batched NumPy releases the GIL); ``SWEEP`` jobs are
    server-planned grids whose expanded cases join the same coalescing
    machinery; ``SAMPLING`` jobs (FID generation and other Python-bound
    sampling work) go to the process pool; ``CALLABLE`` jobs run a resolved
    function on the thread pool.
    """

    SIMULATION = "simulation"
    SWEEP = "sweep"
    SAMPLING = "sampling"
    CALLABLE = "callable"


@dataclass
class Job:
    """One queued evaluation, with its eventual result or error."""

    id: str
    kind: JobKind
    label: str = ""
    status: JobStatus = JobStatus.QUEUED
    result_value: Any = None
    error: BaseException | None = None
    #: Wall-clock timestamps, for display only.  ``time.time()`` can jump
    #: (NTP slews, DST, manual adjustment), so all duration math uses the
    #: monotonic counterparts below.
    submitted_at: float = field(default_factory=time.time)  # repro: allow[REP002] display-only
    started_at: float | None = None
    finished_at: float | None = None
    #: Monotonic counterparts: the source of truth for queue-wait and
    #: run-duration math (``queued_seconds`` / ``running_seconds``).
    submitted_at_monotonic: float = field(default_factory=time.monotonic)
    started_at_monotonic: float | None = None
    finished_at_monotonic: float | None = None
    #: Lifecycle trace following this job across threads (``submitted`` ->
    #: ``attached``/``dispatched`` -> ``finished``); phases are marked by the
    #: state transitions below and by the owning service.
    trace: Trace = None  # type: ignore[assignment]  # filled by __post_init__
    _completed: threading.Event = field(default_factory=threading.Event, repr=False)
    _transitions: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _callbacks: list = field(default_factory=list, repr=False)  #: guarded by _transitions

    def __post_init__(self) -> None:
        if self.trace is None:
            self.trace = Trace(self.id)

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state (DONE, FAILED or CANCELLED)."""
        return self._completed.is_set()

    @property
    def ok(self) -> bool:
        return self.status is JobStatus.DONE

    @property
    def queued_seconds(self) -> float:
        """Monotonic time spent waiting in the queue (still counting while queued).

        For a job that never started (cancelled while queued), this is the
        submit-to-finish distance — the whole life of the job was queue time.
        """
        if self.started_at_monotonic is not None:
            return self.started_at_monotonic - self.submitted_at_monotonic
        end = self.finished_at_monotonic
        if end is None:
            end = time.monotonic()
        return end - self.submitted_at_monotonic

    @property
    def running_seconds(self) -> float | None:
        """Monotonic run duration (still counting while running); None if never started."""
        if self.started_at_monotonic is None:
            return None
        end = self.finished_at_monotonic
        if end is None:
            end = time.monotonic()
        return end - self.started_at_monotonic

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job completes; False if the timeout expired first."""
        return self._completed.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The job's result, blocking until completion.

        Raises :class:`TimeoutError` if the job is still running after
        ``timeout`` and :class:`JobFailedError` (chained to the original
        exception) if it failed or was cancelled.
        """
        if not self.wait(timeout):
            raise TimeoutError(f"job {self.id} ({self.label or self.kind.value}) still running")
        if self.status is not JobStatus.DONE:
            raise JobFailedError(
                f"job {self.id} ({self.label or self.kind.value}) {self.status.value}: {self.error}"
            ) from self.error
        return self.result_value

    def add_done_callback(self, fn: Callable[["Job"], None]) -> None:
        """Run ``fn(job)`` once the job reaches a terminal state.

        Fires immediately when the job is already terminal; otherwise the
        state transition that completes the job invokes it (outside the
        transition lock, so callbacks may inspect the job freely).  Callback
        exceptions are swallowed — completion must never be blocked by an
        observer.
        """
        with self._transitions:
            if not self._completed.is_set():
                self._callbacks.append(fn)
                return
        self._run_callback(fn)

    def _finish_locked(self) -> list:
        """Seal a terminal transition (lock held): stamp the finish time,
        signal waiters, and hand back the callbacks to fire outside the lock."""
        self.finished_at = time.time()  # repro: allow[REP002] display-only stamp
        self.finished_at_monotonic = time.monotonic()
        self._completed.set()
        callbacks, self._callbacks = self._callbacks, []
        return callbacks

    def _fire_callbacks(self, callbacks: list) -> None:
        for fn in callbacks:
            self._run_callback(fn)

    def _run_callback(self, fn: Callable[["Job"], None]) -> None:
        try:
            fn(self)
        except Exception as exc:  # noqa: BLE001 - observers must not break completion
            event_log().emit("job.callback_error", level="warning", job=self.id, error=repr(exc))

    # -- state transitions (service-internal) ----------------------------------

    def mark_running(self) -> bool:
        """Claim the job for execution: ``QUEUED -> RUNNING``.

        Returns False — and the caller must skip the work — when the job is no
        longer claimable, i.e. it was cancelled (or otherwise completed) after
        being drained from the queue but before dispatch reached it.
        """
        with self._transitions:
            if self.status is not JobStatus.QUEUED:
                return False
            self.status = JobStatus.RUNNING
            self.started_at = time.time()  # repro: allow[REP002] display-only stamp
            self.started_at_monotonic = time.monotonic()
        self.trace.mark("dispatched")
        return True

    def mark_done(self, value: Any) -> None:
        """Complete the job; a no-op if it already reached a terminal state
        (e.g. a coalesced follower cancelled while its shared batch ran)."""
        with self._transitions:
            if self._completed.is_set():
                return
            self.result_value = value
            self.status = JobStatus.DONE
            callbacks = self._finish_locked()
        self.trace.mark("finished", status=JobStatus.DONE.value)
        self._fire_callbacks(callbacks)

    def mark_failed(self, error: BaseException) -> None:
        with self._transitions:
            if self._completed.is_set():
                return
            self.error = error
            self.status = JobStatus.FAILED
            callbacks = self._finish_locked()
        self.trace.mark("finished", status=JobStatus.FAILED.value, error=str(error))
        self._fire_callbacks(callbacks)

    def mark_cancelled(self, reason: str = "service shut down") -> bool:
        """Cancel the job if it has not started; True when this call won.

        Only ``QUEUED`` jobs are cancellable — once a worker claimed the job
        via :meth:`mark_running` (or it completed) cancellation returns False.
        """
        with self._transitions:
            if self.status is not JobStatus.QUEUED:
                return False
            self.error = RuntimeError(reason)
            self.status = JobStatus.CANCELLED
            callbacks = self._finish_locked()
        self.trace.mark("finished", status=JobStatus.CANCELLED.value)
        self._fire_callbacks(callbacks)
        return True

    def summary(self) -> dict[str, Any]:
        """JSON-friendly status view (the CLI, HTTP API and tests use this)."""
        return {
            "id": self.id,
            "kind": self.kind.value,
            "label": self.label,
            "status": self.status.value,
            "error": str(self.error) if self.error is not None else None,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            # Duration fields are monotonic-derived, so they stay correct
            # across wall-clock adjustments (the *_at fields are display only).
            "queued_seconds": self.queued_seconds,
            "running_seconds": self.running_seconds,
        }
