"""Remote client for the evaluation service's HTTP front end.

:class:`RemoteEvaluationClient` mirrors the submission surface of
:class:`~repro.serve.service.EvaluationService` — ``submit_simulation`` /
``submit_sweep`` / ``submit_quality`` / ``submit_callable`` /
``submit_sampling`` / ``job`` / ``jobs`` / ``cancel`` / ``wait_all`` — over
plain :mod:`urllib`, so call sites switch between the in-process service and
a remote server by swapping one object:

    with RemoteEvaluationClient("http://fleet-server:8035") as client:
        job = client.submit_simulation(sqdm_config(), trace)
        report = job.result(timeout=300)

Everything crosses the wire as versioned, schema-tagged JSON
(:mod:`repro.core.codec` envelopes) — never pickles.  Callable jobs name
functions from the server's wire-function registry
(:func:`repro.serve.specs.register_wire_function`); sweeps are submitted as
one grid spec and planned server-side.  The client advertises its wire
version on every request and surfaces the server's 4xx rejections (unknown
schema, oversized body, bad spec) as :class:`RemoteServiceError` without
retrying; unknown job ids become :class:`KeyError`, matching the in-process
service.

Transient transport failures (connection refused while the server starts,
dropped keep-alive sockets) and HTTP 503 rejections are retried with
exponential backoff plus *bounded jitter*, so a fleet of clients hitting a
restarting server spreads its retries instead of hammering it in lockstep;
a ``Retry-After`` header on a 503 sets the floor of the next delay.  A
:class:`RemoteJob` polls the server for its status with capped exponential
backoff and decodes the result envelope exactly once.  Failures carry the
server-side error *message*; the original exception type does not cross the
wire.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Iterable, Mapping

from ..accelerator.config import AcceleratorConfig
from ..accelerator.energy import EnergyTable
from ..accelerator.simulator import WorkloadTrace
from ..core import codec
from ..core.telemetry import get_registry
from .jobs import JobFailedError, JobStatus

# Client-side transport telemetry, shared by every client in the process.
_REQUEST_SECONDS = get_registry().histogram(
    "repro_client_request_seconds",
    "HTTP request latency from the remote client, by method and outcome.",
    labels=("method", "outcome"),
)
_RETRIES = get_registry().counter(
    "repro_client_retries_total", "Request attempts retried after a transient failure."
)
_BACKOFF_SECONDS = get_registry().counter(
    "repro_client_backoff_seconds_total", "Cumulative time spent sleeping between retries."
)
from .specs import (
    CallableJobSpec,
    QualityJobSpec,
    SimulateJobSpec,
    SweepJobSpec,
    require_wire_name,
)

_TERMINAL = (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)

#: Upper bound honored for a server's ``Retry-After`` header, so a
#: misconfigured (or hostile) server cannot park clients for hours.
RETRY_AFTER_CAP = 30.0


def _parse_retry_after(value: str | None) -> float | None:
    """Seconds from a ``Retry-After`` header (delta form only), capped."""
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None  # HTTP-date form: fall back to our own backoff
    if seconds < 0:
        return None
    return min(seconds, RETRY_AFTER_CAP)


class RemoteServiceError(RuntimeError):
    """The server rejected a request or could not be reached."""


class RemoteJob:
    """Handle to one job living on a remote evaluation server.

    Mirrors the read side of :class:`~repro.serve.jobs.Job`: ``status`` /
    ``done`` / ``ok`` properties, blocking :meth:`wait` and :meth:`result`,
    plus ``result_value`` and ``error`` attributes populated once the job
    reaches a terminal state (so sweep runners treat local and remote jobs
    uniformly).
    """

    def __init__(self, client: "RemoteEvaluationClient", summary: Mapping[str, Any]) -> None:
        self._client = client
        self._summary = dict(summary)
        self.id: str = self._summary["id"]
        self.kind: str = self._summary.get("kind", "")
        self.label: str = self._summary.get("label", "")
        self.result_value: Any = None
        self.error: BaseException | None = None
        self._result_fetched = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RemoteJob(id={self.id!r}, status={self.status.value!r})"

    # -- state ------------------------------------------------------------------

    def _refresh(self, with_result: bool = False) -> None:
        path = f"/jobs/{self.id}"
        if with_result:
            path += "?result=1"
        self._summary = self._client._request("GET", path)
        if self.status in _TERMINAL and not self._result_fetched:
            self._finalize()

    def _finalize(self) -> None:
        if self.status is JobStatus.DONE:
            if "result" not in self._summary:
                self._summary = self._client._request("GET", f"/jobs/{self.id}?result=1")
            self.result_value = codec.decode(self._summary["result"])
        else:
            self.error = JobFailedError(
                f"job {self.id} ({self.label or self.kind}) {self.status.value}: "
                f"{self._summary.get('error')}"
            )
        self._result_fetched = True

    @property
    def status(self) -> JobStatus:
        return JobStatus(self._summary["status"])

    @property
    def done(self) -> bool:
        return self.status in _TERMINAL

    @property
    def ok(self) -> bool:
        return self.status is JobStatus.DONE

    def summary(self) -> dict[str, Any]:
        return {k: v for k, v in self._summary.items() if k != "result"}

    # -- blocking ---------------------------------------------------------------

    def wait(self, timeout: float | None = None) -> bool:
        """Poll until the job completes; False if the timeout expired first."""
        deadline = None if timeout is None else time.monotonic() + timeout
        interval = self._client.poll_interval
        while True:
            if not self.done:
                self._refresh(with_result=True)
            if self.done:
                if not self._result_fetched:
                    self._finalize()
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            sleep_for = interval
            if deadline is not None:
                sleep_for = min(sleep_for, max(0.0, deadline - time.monotonic()))
            time.sleep(sleep_for)
            interval = min(interval * 2, self._client.max_poll_interval)

    def result(self, timeout: float | None = None) -> Any:
        """The job's result, blocking until completion (parity with ``Job.result``)."""
        if not self.wait(timeout):
            raise TimeoutError(f"job {self.id} ({self.label or self.kind}) still running")
        if self.status is not JobStatus.DONE:
            assert self.error is not None
            raise self.error
        return self.result_value

    def cancel(self) -> bool:
        """Ask the server to cancel this job; True when the cancellation won."""
        return self._client.cancel(self.id)


class RemoteEvaluationClient:
    """Submit evaluation jobs to a ``repro serve`` HTTP endpoint.

    Parameters
    ----------
    endpoint:
        Base URL of the server, e.g. ``"http://127.0.0.1:8035"``.
    timeout:
        Per-request socket timeout in seconds.
    retries / backoff / max_backoff / jitter:
        Retry budget for transport failures and HTTP 503: attempt ``i``
        sleeps ``min(backoff * 2**i, max_backoff)`` stretched by a random
        factor in ``[1, 1 + jitter]`` — bounded jitter, so many clients
        retrying against one recovering server fan out instead of arriving
        in lockstep.  A ``Retry-After`` header on a 503 raises the floor of
        that delay (capped at :data:`RETRY_AFTER_CAP` seconds).
    poll_interval / max_poll_interval:
        Result-polling cadence for :meth:`RemoteJob.wait`.
    """

    def __init__(
        self,
        endpoint: str,
        timeout: float = 30.0,
        retries: int = 5,
        backoff: float = 0.1,
        max_backoff: float = 5.0,
        jitter: float = 0.5,
        poll_interval: float = 0.05,
        max_poll_interval: float = 1.0,
    ) -> None:
        self.endpoint = endpoint.rstrip("/")
        self.timeout = timeout
        self.retries = max(1, retries)
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.jitter = max(0.0, jitter)
        self.poll_interval = poll_interval
        self.max_poll_interval = max_poll_interval
        self._rng = random.Random()

    # -- transport --------------------------------------------------------------

    def _retry_delay(self, attempt: int, retry_after: float | None = None) -> float:
        """Jittered exponential backoff, floored by the server's Retry-After."""
        delay = min(self.backoff * 2**attempt, self.max_backoff)
        delay *= 1.0 + self._rng.random() * self.jitter
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay

    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> Any:
        url = f"{self.endpoint}{path}"
        request_timeout = self.timeout if timeout is None else timeout
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        last_error: Exception | None = None
        for attempt in range(self.retries):
            request = urllib.request.Request(
                url,
                data=body,
                method=method,
                headers={
                    "Content-Type": "application/json",
                    "Accept": "application/json",
                    "X-Repro-Wire-Version": str(codec.WIRE_VERSION),
                },
            )
            began = time.monotonic()
            try:
                with urllib.request.urlopen(request, timeout=request_timeout) as response:
                    decoded = json.loads(response.read().decode("utf-8"))
                _REQUEST_SECONDS.observe(
                    time.monotonic() - began, method=method, outcome="ok"
                )
                return decoded
            except urllib.error.HTTPError as exc:
                _REQUEST_SECONDS.observe(
                    time.monotonic() - began, method=method, outcome=f"http_{exc.code}"
                )
                # 503 is the one HTTP rejection that happens *before* the
                # server does any work (overloaded, or a load balancer with
                # no healthy backend), so even POSTs retry safely.  The
                # server's Retry-After sets the floor of the jittered delay.
                if exc.code == 503 and attempt + 1 < self.retries:
                    last_error = exc
                    retry_after = _parse_retry_after(exc.headers.get("Retry-After"))
                    self._sleep_before_retry(self._retry_delay(attempt, retry_after))
                    continue
                raise self._http_error(method, path, exc) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                _REQUEST_SECONDS.observe(
                    time.monotonic() - began, method=method, outcome="transport"
                )
                last_error = exc
                # POST /jobs is not idempotent: a submission whose response
                # was lost may already be enqueued, so blindly retrying would
                # run the job twice.  Retry POSTs only when the connection was
                # refused outright (nothing reached the server — e.g. it is
                # still starting up); reads and cancels always retry.
                if method == "POST" and not self._connection_refused(exc):
                    break
                self._sleep_before_retry(self._retry_delay(attempt))
        raise RemoteServiceError(
            f"cannot reach {url} ({method}, {attempt + 1} attempt(s)): {last_error}"
        ) from last_error

    @staticmethod
    def _sleep_before_retry(delay: float) -> None:
        _RETRIES.inc()
        _BACKOFF_SECONDS.inc(delay)
        time.sleep(delay)

    @staticmethod
    def _connection_refused(exc: Exception) -> bool:
        if isinstance(exc, ConnectionRefusedError):
            return True
        reason = getattr(exc, "reason", None)
        return isinstance(reason, ConnectionRefusedError)

    @staticmethod
    def _http_error(method: str, path: str, exc: urllib.error.HTTPError) -> Exception:
        try:
            message = json.loads(exc.read().decode("utf-8")).get("error", "")
        # repro: allow[REP009] error body is best-effort; the HTTP code below is the signal
        except Exception:  # noqa: BLE001 - error body is best-effort
            message = ""
        message = message or f"HTTP {exc.code}"
        if exc.code == 404 and path.startswith(("/jobs/", "/workers/")):
            # Parity with EvaluationService.job / WorkerFleet lookups; for a
            # worker this is its cue to re-register (server restarted, or a
            # newer incarnation retired it).
            return KeyError(message)
        return RemoteServiceError(f"{method} {path} failed: {message} (HTTP {exc.code})")

    # -- submission -------------------------------------------------------------

    def submit_spec(self, spec: Any, label: str = "") -> RemoteJob:
        """Submit one typed job spec as a schema-tagged JSON envelope."""
        summary = self._request(
            "POST", "/jobs", {"spec": codec.encode(spec), "label": label}
        )
        return RemoteJob(self, summary)

    def submit_simulation(
        self,
        config: AcceleratorConfig,
        trace: WorkloadTrace,
        energy_table: EnergyTable | None = None,
        backend: str | None = None,
        label: str = "",
    ) -> RemoteJob:
        """Queue one trace simulation on the server; identical requests from
        any client coalesce through the server's single-flight scheduler."""
        spec = SimulateJobSpec(
            config=config, trace=trace, energy_table=energy_table, backend=backend
        )
        return self.submit_spec(spec, label or spec.default_label())

    def submit_sweep(self, spec: SweepJobSpec, label: str = "") -> RemoteJob:
        """Submit one grid; the server plans, coalesces and batches the cases.

        The job's result is a :class:`~repro.serve.specs.SweepJobResult`
        (per-case reports in grid order, plus the baseline report if the
        spec names one).
        """
        return self.submit_spec(spec, label or spec.default_label())

    def submit_quality(self, spec: QualityJobSpec, label: str = "") -> RemoteJob:
        """Queue one declarative FID evaluation on the server's process pool."""
        return self.submit_spec(spec, label or spec.default_label())

    def submit_callable(
        self,
        fn: Callable[..., Any] | str,
        args: Iterable[Any] = (),
        kwargs: Mapping[str, Any] | None = None,
        label: str = "",
    ) -> RemoteJob:
        """Queue a *named* server-side function on the server's thread pool.

        ``fn`` is a wire-function name (or a callable registered with
        :func:`repro.serve.specs.register_wire_function`, resolved to its
        name client-side); arguments must be plain wire-encodable data.  No
        code crosses the wire — an unregistered function is rejected.
        """
        spec = CallableJobSpec(
            function=require_wire_name(fn),
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            pool="thread",
        )
        return self.submit_spec(spec, label or spec.default_label())

    def submit_sampling(
        self,
        fn: Callable[..., Any] | str,
        args: Iterable[Any] = (),
        kwargs: Mapping[str, Any] | None = None,
        label: str = "",
    ) -> RemoteJob:
        """Queue a named sampling-bound function for the server's process pool."""
        spec = CallableJobSpec(
            function=require_wire_name(fn),
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            pool="process",
        )
        return self.submit_spec(spec, label or spec.default_label())

    def submit(self, fn: Callable[..., Any] | str, *args: Any, **kwargs: Any) -> RemoteJob:
        """Convenience form of :meth:`submit_callable`."""
        return self.submit_callable(fn, args=args, kwargs=kwargs)

    def as_executor(self) -> "Any":
        """This client behind the unified :class:`~repro.core.execution.Executor`
        protocol (``submit(spec) -> JobHandle``), sharing this client's
        transport, retry and polling configuration."""
        from ..core.execution import RemoteExecutor

        return RemoteExecutor(client=self)

    # -- inspection -------------------------------------------------------------

    def job(self, job_id: str) -> RemoteJob:
        return RemoteJob(self, self._request("GET", f"/jobs/{job_id}"))

    def list_jobs(
        self, status: JobStatus | str | None = None, limit: int | None = None
    ) -> list[RemoteJob]:
        """Jobs known to the server, optionally filtered by status and capped.

        Mirrors ``GET /jobs?status=&limit=`` (and
        :meth:`EvaluationService.jobs`): ``limit`` keeps the most recently
        submitted matches.
        """
        query = []
        if status is not None:
            query.append(f"status={JobStatus(status).value}")
        if limit is not None:
            query.append(f"limit={int(limit)}")
        path = "/jobs" + ("?" + "&".join(query) if query else "")
        listing = self._request("GET", path)
        return [RemoteJob(self, summary) for summary in listing["jobs"]]

    def jobs(self) -> list[RemoteJob]:
        return self.list_jobs()

    def status(self, job_id: str) -> JobStatus:
        return self.job(job_id).status

    def result(self, job_id: str, timeout: float | None = None) -> Any:
        return self.job(job_id).result(timeout)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started; False if it already ran."""
        return bool(self._request("DELETE", f"/jobs/{job_id}")["cancelled"])

    def wait_all(
        self, jobs: Iterable[RemoteJob] | None = None, timeout: float | None = None
    ) -> bool:
        """Wait for the given jobs (default: all on the server); False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in list(jobs) if jobs is not None else self.jobs():
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            if not job.wait(remaining):
                return False
        return True

    # -- server state -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def schemas(self) -> dict[str, Any]:
        """The server's wire version and registered schema versions."""
        return self._request("GET", "/schemas")

    def cache_stats(self) -> dict[str, Any]:
        return self._request("GET", "/cache/stats")

    def evict(
        self, max_bytes: int | None = None, ttl_seconds: float | None = None
    ) -> dict[str, Any]:
        """Run the server's artifact-store eviction policy."""
        body: dict[str, Any] = {}
        if max_bytes is not None:
            body["max_bytes"] = max_bytes
        if ttl_seconds is not None:
            body["ttl_seconds"] = ttl_seconds
        return self._request("POST", "/cache/evict", body)

    # -- worker fleet protocol --------------------------------------------------
    #
    # The pull-worker side of `repro serve --dispatch workers`: register,
    # long-poll claims, heartbeat leases, post results.  404s raise KeyError —
    # the worker's cue to re-register (see repro.serve.worker).

    def register_worker(
        self, name: str, concurrency: int = 1, lease_seconds: float | None = None
    ) -> dict[str, Any]:
        """Register with the server's fleet; returns the lease contract
        (``worker_id``, ``lease_seconds``, ``heartbeat_seconds``)."""
        body: dict[str, Any] = {"name": name, "concurrency": concurrency}
        if lease_seconds is not None:
            body["lease_seconds"] = lease_seconds
        return self._request("POST", "/workers/register", body)

    def claim_tasks(
        self, worker_id: str, max_tasks: int = 1, wait_seconds: float = 0.0
    ) -> list[dict[str, Any]]:
        """Long-poll for up to ``max_tasks`` leased task payloads."""
        payload = self._request(
            "POST",
            f"/workers/{worker_id}/claim",
            {"max_tasks": max_tasks, "wait_seconds": wait_seconds},
            # The server may hold the request open for the whole long-poll.
            timeout=self.timeout + wait_seconds,
        )
        return list(payload["tasks"])

    def worker_heartbeat(self, worker_id: str) -> dict[str, Any]:
        """Renew every lease this worker holds."""
        return self._request("POST", f"/workers/{worker_id}/heartbeat", {})

    def complete_task(
        self,
        worker_id: str,
        task_id: str,
        reports: list[dict[str, Any]] | None = None,
        error: str | None = None,
    ) -> bool:
        """Post a task result (codec-encoded report envelopes) or an error.

        False means the lease was lost first (expired and requeued, or a
        duplicate) — the server kept nothing; another worker owns the retry.
        """
        body: dict[str, Any] = {"task_id": task_id}
        if error is not None:
            body["error"] = error
        else:
            body["reports"] = reports or []
        return bool(
            self._request("POST", f"/workers/{worker_id}/complete", body)["accepted"]
        )

    def workers(self) -> dict[str, Any]:
        """The server's fleet summary (``GET /workers``)."""
        return self._request("GET", "/workers")

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Parity with :meth:`EvaluationService.close`; the client is stateless."""

    def __enter__(self) -> "RemoteEvaluationClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
