"""The pull-based fleet worker: claim → simulate → complete, under a lease.

:class:`WorkerRuntime` is the process that ``repro worker`` runs.  It
registers with a ``repro serve --dispatch workers`` endpoint, then each of
its puller threads long-polls ``POST /workers/<id>/claim`` for typed
``simulate_spec`` payloads, runs them through the batched kernel
(:func:`~repro.serve.scheduler.run_batched`, with a worker-local in-memory
report cache), and posts codec-encoded reports back via
``POST /workers/<id>/complete``.  A separate heartbeat thread renews the
worker's leases at a third of the lease interval; if the process dies, the
heartbeats stop, the lease expires server-side, and the task is requeued for
another worker — that is the entire crash-recovery story, which is why there
is no worker-side persistence.

Failure semantics, from the worker's point of view:

* **Server restart / retirement** — any verb may 404 (:class:`KeyError`);
  the worker re-registers under the same name and keeps pulling.  Tasks it
  held are gone (the new server, or the new incarnation's registration,
  requeued them) — completing them would be rejected anyway, so in-progress
  work is simply dropped on re-registration.
* **Transport errors** — back off and retry; the lease protects the work.
* **Simulation errors** — posted as ``error`` completions; deterministic
  failures do not benefit from a requeue, so the server fails the jobs.

:class:`WorkerPoolExecutor` packages the whole arrangement as one executor
(``--executor worker-pool``): an owned worker-dispatch service, a loopback
HTTP server, and N in-process worker runtimes speaking the real protocol
over real sockets — the same code path as a distributed fleet, minus the
network between machines.

``--chaos-hold-seconds`` is deliberate fault injection for the chaos CI
stage: the worker claims a task and then *holds* it (heartbeating all the
while), giving the harness a deterministic window to SIGKILL the process
mid-lease and prove the fleet recovers.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any

from ..core import codec
from ..core.execution import ServiceExecutor
from ..core.report_cache import ReportCache
from .client import RemoteEvaluationClient, RemoteServiceError
from .scheduler import SimulationRequest, run_batched
from .specs import SimulateJobSpec


def default_worker_name() -> str:
    import os

    return f"{socket.gethostname()}-{os.getpid()}"


class WorkerRuntime:
    """One fleet worker process (or an in-process stand-in for tests).

    Parameters
    ----------
    endpoint:
        The ``repro serve --dispatch workers`` base URL.
    name:
        Fleet-visible identity; re-registering this name after a restart
        retires the previous incarnation.  Defaults to ``hostname-pid``.
    concurrency:
        Puller threads — concurrent leases this worker will hold.
    lease_seconds:
        Requested lease length (server default when None).  The server's
        answer is authoritative.
    poll_seconds:
        Long-poll window per claim request.
    chaos_hold_seconds:
        Fault injection: hold each claimed task this long (heartbeating)
        before simulating.  A worker killed during the hold dies mid-lease.
    """

    def __init__(
        self,
        endpoint: str,
        name: str | None = None,
        concurrency: int = 1,
        lease_seconds: float | None = None,
        poll_seconds: float = 2.0,
        chaos_hold_seconds: float = 0.0,
        cache: ReportCache | None = None,
        client: RemoteEvaluationClient | None = None,
        verbose: bool = False,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.name = name or default_worker_name()
        self.concurrency = concurrency
        self.requested_lease_seconds = lease_seconds
        self.poll_seconds = max(float(poll_seconds), 0.05)
        self.chaos_hold_seconds = max(float(chaos_hold_seconds), 0.0)
        self.verbose = verbose
        # Worker-local memory cache only: the *server* owns the shared
        # artifact store; a worker cache just deduplicates within-process.
        self._cache = cache if cache is not None else ReportCache()
        self._client = client or RemoteEvaluationClient(endpoint)
        self._stop = threading.Event()
        self._abandon = False
        self._identity_lock = threading.Lock()
        self._reregister_lock = threading.Lock()
        self.worker_id: str | None = None
        self.lease_seconds = 30.0
        self.heartbeat_seconds = 10.0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.completions_rejected = 0
        self.registrations = 0
        self._threads: list[threading.Thread] = []

    # -- identity ---------------------------------------------------------------

    def register(self) -> str:
        """(Re-)register with the fleet; returns the new worker id."""
        with self._identity_lock:
            contract = self._client.register_worker(
                self.name,
                concurrency=self.concurrency,
                lease_seconds=self.requested_lease_seconds,
            )
            self.worker_id = contract["worker_id"]
            self.lease_seconds = float(contract["lease_seconds"])
            self.heartbeat_seconds = float(
                contract.get("heartbeat_seconds") or self.lease_seconds / 3.0
            )
            self.registrations += 1
            self._log(f"registered as {self.worker_id} (lease {self.lease_seconds:g}s)")
            return self.worker_id

    def _reregister(self, stale_id: str) -> None:
        """Recover from a 404: the server restarted or retired ``stale_id``."""
        with self._reregister_lock:
            if self.worker_id != stale_id or self._stop.is_set():
                return  # another thread already re-registered, or shutting down
            try:
                self.register()
            except (RemoteServiceError, KeyError, OSError) as exc:
                self._log(f"re-registration failed, will retry: {exc}")
                # Backing off *inside* the lock is the point: concurrent 404s
                # coalesce behind one retry instead of hammering the server,
                # and stop() interrupts the wait via the event.
                # repro: allow[REP008] intentional backoff; serializes re-registration attempts
                self._stop.wait(min(self.heartbeat_seconds, 1.0))

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Register and launch the heartbeat + puller threads."""
        self.register()
        self._threads = [
            threading.Thread(
                target=self._heartbeat_loop, name=f"repro-worker-heartbeat-{self.name}",
                daemon=True,
            )
        ]
        for index in range(self.concurrency):
            self._threads.append(
                threading.Thread(
                    target=self._pull_loop,
                    name=f"repro-worker-pull-{self.name}-{index}",
                    daemon=True,
                )
            )
        for thread in self._threads:
            thread.start()

    def stop(self, abandon: bool = False, timeout: float | None = None) -> None:
        """Stop pulling; ``abandon=True`` also drops the task currently being
        processed without completing it (simulating a crash — the lease will
        expire server-side)."""
        self._abandon = abandon
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)

    def run(self) -> int:
        """Blocking entry point for ``repro worker``: run until stopped."""
        self.start()
        while not self._stop.wait(0.2):
            pass
        for thread in self._threads:
            thread.join(self.poll_seconds + self._client.timeout + 1.0)
        return 0

    # -- loops ------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(min(self.heartbeat_seconds, self.lease_seconds / 3.0)):
            worker_id = self.worker_id
            if worker_id is None:
                continue
            try:
                self._client.worker_heartbeat(worker_id)
            except KeyError:
                self._reregister(worker_id)
            except (RemoteServiceError, OSError) as exc:
                self._log(f"heartbeat failed (will retry): {exc}")

    def _pull_loop(self) -> None:
        while not self._stop.is_set():
            worker_id = self.worker_id
            if worker_id is None:
                self._stop.wait(0.1)
                continue
            try:
                tasks = self._client.claim_tasks(
                    worker_id, max_tasks=1, wait_seconds=self.poll_seconds
                )
            except KeyError:
                self._reregister(worker_id)
                continue
            except (RemoteServiceError, OSError) as exc:
                self._log(f"claim failed (will retry): {exc}")
                self._stop.wait(min(self.poll_seconds, 1.0))
                continue
            for task in tasks:
                self._process_task(worker_id, task)

    def _process_task(self, worker_id: str, task: dict[str, Any]) -> None:
        task_id = str(task.get("id"))
        if self.chaos_hold_seconds > 0.0:
            # Heartbeats keep the lease alive during the hold; only killing
            # the process (the chaos stage's SIGKILL) lets it expire.
            self._stop.wait(self.chaos_hold_seconds)
        if self._stop.is_set() and self._abandon:
            return  # simulated crash: never complete, let the lease expire
        try:
            requests = [
                _spec_to_request(codec.decode(payload)) for payload in task["specs"]
            ]
            # Ship raw results: a columnar slice crosses the wire as one
            # columnar_report_batch envelope instead of a report object tree.
            results = run_batched(requests, cache=self._cache, materialize=False)
            encoded = [codec.encode(result) for result in results]
        except Exception as exc:  # noqa: BLE001 - reported to the server, not fatal here
            self.tasks_failed += 1
            self._complete(worker_id, task_id, error=f"{type(exc).__name__}: {exc}")
            return
        if self._complete(worker_id, task_id, reports=encoded):
            self.tasks_completed += 1
            self._log(f"completed {task_id} ({len(requests)} trace(s))")

    def _complete(
        self,
        worker_id: str,
        task_id: str,
        reports: list[dict[str, Any]] | None = None,
        error: str | None = None,
    ) -> bool:
        try:
            accepted = self._client.complete_task(
                worker_id, task_id, reports=reports, error=error
            )
        except KeyError:
            self._reregister(worker_id)
            return False
        except (RemoteServiceError, OSError) as exc:
            # The lease covers us: if this completion never lands, the task
            # is requeued and re-simulated elsewhere.
            self._log(f"completion of {task_id} failed: {exc}")
            return False
        if not accepted:
            self.completions_rejected += 1
            self._log(f"completion of {task_id} rejected (lease lost)")
        return accepted

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"repro worker [{self.name}]: {message}", flush=True)

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "worker_id": self.worker_id,
            "tasks_completed": self.tasks_completed,
            "tasks_failed": self.tasks_failed,
            "completions_rejected": self.completions_rejected,
            "registrations": self.registrations,
        }


def _spec_to_request(spec: Any) -> SimulationRequest:
    if not isinstance(spec, SimulateJobSpec):
        raise TypeError(f"fleet tasks carry simulate specs, got {type(spec).__name__}")
    return SimulationRequest(
        config=spec.config,
        trace=spec.trace,
        energy_table=spec.energy_table,
        backend=spec.backend,
    )


def run_worker(
    endpoint: str,
    name: str | None = None,
    concurrency: int = 1,
    lease_seconds: float | None = None,
    poll_seconds: float = 2.0,
    chaos_hold_seconds: float = 0.0,
    verbose: bool = True,
) -> int:
    """The ``repro worker`` command body: run one worker until SIGTERM/SIGINT."""
    import signal

    runtime = WorkerRuntime(
        endpoint,
        name=name,
        concurrency=concurrency,
        lease_seconds=lease_seconds,
        poll_seconds=poll_seconds,
        chaos_hold_seconds=chaos_hold_seconds,
        verbose=verbose,
    )

    def handle_signal(signum: int, frame: Any) -> None:
        runtime._log(f"signal {signum}: draining and stopping")
        runtime._stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, handle_signal)
    try:
        return runtime.run()
    except KeyboardInterrupt:
        runtime.stop()
        return 0


class WorkerPoolExecutor(ServiceExecutor):
    """The fleet as a self-contained executor (``--executor worker-pool``).

    Owns a worker-dispatch :class:`~repro.serve.service.EvaluationService`,
    a loopback HTTP server, and ``num_workers`` in-process
    :class:`WorkerRuntime` threads that speak the real register / claim /
    heartbeat / complete protocol over real sockets.  Results flow through
    the shared ``cache`` exactly as with a distributed fleet, so reports are
    bit-identical to every other executor's.
    """

    name = "worker-pool"

    def __init__(
        self,
        num_workers: int = 2,
        cache: ReportCache | None = None,
        lease_seconds: float = 30.0,
        concurrency: int = 1,
        poll_seconds: float = 1.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        from .http import start_http_server
        from .service import EvaluationService

        service = EvaluationService(
            cache=cache, worker_fleet=True, lease_seconds=lease_seconds
        )
        super().__init__(service=service)
        self._server = start_http_server(service, host="127.0.0.1", port=0)
        self.workers = [
            WorkerRuntime(
                self._server.endpoint,
                name=f"pool-worker-{index + 1}",
                concurrency=concurrency,
                poll_seconds=poll_seconds,
            )
            for index in range(num_workers)
        ]
        for worker in self.workers:
            worker.start()

    def stats(self) -> dict[str, Any]:
        return {
            "executor": self.name,
            **self.service.service_stats(),
            "pool_workers": [worker.summary() for worker in self.workers],
        }

    def close(self) -> None:
        for worker in self.workers:
            worker.stop(timeout=self.service.fleet.lease_seconds if self.service.fleet else 5.0)
        self._server.close()
        self.service.close()
        # Give unfinished sockets a moment; nothing depends on this, but it
        # keeps ResourceWarnings out of test output.
        time.sleep(0)
