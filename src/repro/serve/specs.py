"""Declarative, typed job specifications for the evaluation service.

Before the typed wire schema, remote jobs crossed the HTTP boundary as
base64-encoded pickles — including *callables*, which meant the server
executed whatever bytes a client sent and both ends had to run the same
codebase.  This module replaces that with declarative specs: a client
states *what* to evaluate, the server resolves *how* entirely on its side.

Four spec types cover the service surface:

:class:`SimulateJobSpec`
    One workload trace on one accelerator configuration (the wire form of
    ``EvaluationService.submit_simulation``).
:class:`QualityJobSpec`
    One Table I/II quantization scheme FID-evaluated on one workload,
    resolved server-side to :func:`repro.serve.workers.evaluate_quality` on
    the process pool.
:class:`SweepJobSpec`
    **Server-side sweep planning**: one Cartesian grid over
    :class:`~repro.accelerator.config.AcceleratorConfig` fields plus one
    trace.  The server expands the grid (:meth:`SweepJobSpec.plan`), routes
    every case through the single-flight coalescing scheduler, and answers
    with a :class:`SweepJobResult` — so N clients submitting the same grid
    cost one simulation per unique design point, and clients no longer
    pre-plan N jobs.
:class:`CallableJobSpec`
    A *named* function from the wire-function registry with plain-data
    arguments.  Only functions explicitly registered on the server
    (:func:`register_wire_function`) are callable — nothing arbitrary
    crosses the wire.

All specs (and :class:`SweepJobResult`) carry versioned wire schemas
registered with :mod:`repro.core.codec`, so they round-trip through plain
JSON and unknown names/versions are rejected before any work is queued.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..accelerator.config import AcceleratorConfig
from ..accelerator.energy import EnergyTable
from ..accelerator.simulator import SimulationReport, WorkloadTrace
from ..accelerator.workload import ConvLayerWorkload
from ..core import codec
from ..core.codec import Decoder, Encoder, register_schema
from ..core.columnar import ColumnarReportBatch, ensure_report
from ..core.schemas import WORKLOAD_TRACE_SCHEMA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scheduler import SimulationRequest

#: AcceleratorConfig fields a sweep grid may vary (``name`` labels a config,
#: ``pe`` is a nested dataclass; neither is a sweepable scalar knob).
SWEEPABLE_CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(AcceleratorConfig)
) - {"name", "pe"}


# -- wire-function registry --------------------------------------------------------

_WIRE_FUNCTIONS: dict[str, Callable[..., Any]] = {}
_WIRE_NAMES: dict[Callable[..., Any], str] = {}


def register_wire_function(name: str, fn: Callable[..., Any]) -> Callable[..., Any]:
    """Allow ``fn`` to be invoked by remote clients under ``name``.

    This is the server-side allowlist that replaces pickled callables: a
    :class:`CallableJobSpec` can only name functions registered here.
    Re-registering a name rebinds it (tests rely on that).
    """
    _WIRE_FUNCTIONS[name] = fn
    _WIRE_NAMES[fn] = name
    return fn


def resolve_wire_function(name: str) -> Callable[..., Any]:
    """The function registered under ``name``; raises with the known names."""
    try:
        return _WIRE_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown wire function {name!r}; this server registers "
            f"{sorted(_WIRE_FUNCTIONS)} (see repro.serve.specs.register_wire_function)"
        ) from None


def wire_function_name(fn: Callable[..., Any]) -> str | None:
    """The wire name ``fn`` is registered under, or None."""
    return _WIRE_NAMES.get(fn)


def require_wire_name(fn: Callable[..., Any] | str) -> str:
    """Resolve a callable (or name) to its wire-function name, or explain how.

    The one validation every remote submission path shares: remote jobs name
    server-side functions instead of shipping code, so anything not in the
    registry is rejected with the registration recipe.
    """
    if isinstance(fn, str):
        return fn
    name = wire_function_name(fn)
    if name is None:
        raise ValueError(
            f"{fn!r} is not a registered wire function: remote jobs name "
            "server-side functions instead of shipping code, so register it "
            "with repro.serve.specs.register_wire_function (on the server) "
            "or pass its registered name as a string"
        )
    return name


# -- trace helpers -----------------------------------------------------------------


def _encode_trace_field(trace: WorkloadTrace, ctx: Encoder) -> Any:
    return ctx.encode(trace, name=WORKLOAD_TRACE_SCHEMA)


def _decode_trace_field(value: Any, ctx: Decoder) -> WorkloadTrace:
    """Accept a ``workload_trace`` envelope or bare nested lists of workloads."""
    if isinstance(value, Mapping) and codec.SCHEMA_KEY in value:
        return ctx.decode(value)
    trace = ctx.value(value)
    if not isinstance(trace, list) or not all(isinstance(step, list) for step in trace):
        raise codec.SchemaError("a trace must be a list of per-step workload lists")
    for step in trace:
        for workload in step:
            if not isinstance(workload, ConvLayerWorkload):
                raise codec.SchemaError(
                    "trace steps must contain conv_layer_workload envelopes, "
                    f"got {type(workload).__name__}"
                )
    return trace


def _decode_optional(value: Any, ctx: Decoder, cls: type, what: str) -> Any:
    if value is None:
        return None
    decoded = ctx.value(value)
    if not isinstance(decoded, cls):
        raise codec.SchemaError(f"{what} must be a {cls.__name__} envelope or null")
    return decoded


# -- job specifications ------------------------------------------------------------


@dataclass(frozen=True)
class SimulateJobSpec:
    """One trace on one accelerator configuration."""

    config: AcceleratorConfig
    trace: WorkloadTrace
    energy_table: EnergyTable | None = None
    backend: str | None = None

    def default_label(self) -> str:
        return f"simulate:{self.config.name}"


@dataclass(frozen=True)
class QualityJobSpec:
    """One quantization scheme FID-evaluated on one workload (process pool)."""

    workload: str
    scheme: str
    resolution: int | None = None
    pipeline_overrides: dict[str, Any] = field(default_factory=dict)
    artifact_dir: str | None = None

    def default_label(self) -> str:
        return f"quality:{self.scheme}"

    def worker_kwargs(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class CallableJobSpec:
    """A named, server-registered function with plain-data arguments."""

    function: str
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: ``"thread"`` for simulation-bound work, ``"process"`` for GIL-bound
    #: sampling work (mirrors submit_callable / submit_sampling).
    pool: str = "thread"

    def __post_init__(self) -> None:
        if self.pool not in ("thread", "process"):
            raise ValueError(f"pool must be 'thread' or 'process', got {self.pool!r}")
        object.__setattr__(self, "args", tuple(self.args))

    def default_label(self) -> str:
        return f"call:{self.function}"

    def resolve(self) -> Callable[..., Any]:
        return resolve_wire_function(self.function)


@dataclass(frozen=True)
class SweepJobSpec:
    """One Cartesian grid over accelerator knobs, planned server-side.

    ``grid`` maps :class:`AcceleratorConfig` field names to value lists; the
    cross product is enumerated in row-major order (last parameter fastest),
    matching :class:`repro.core.experiments.SweepSpec`.  ``baseline``, when
    given, is simulated on the same trace and returned alongside the cases
    (the dense-baseline comparison every sweep report needs).
    """

    base: AcceleratorConfig
    grid: dict[str, list[Any]]
    trace: WorkloadTrace
    baseline: AcceleratorConfig | None = None
    energy_table: EnergyTable | None = None
    backend: str | None = None
    name: str = "sweep"

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValueError("sweep grid must name at least one parameter")
        unknown = set(self.grid) - SWEEPABLE_CONFIG_FIELDS
        if unknown:
            raise ValueError(
                f"unknown AcceleratorConfig field(s) {sorted(unknown)}; "
                f"sweepable fields: {sorted(SWEEPABLE_CONFIG_FIELDS)}"
            )
        for param, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise ValueError(f"sweep parameter {param!r} needs a non-empty value list")

    def default_label(self) -> str:
        return f"sweep:{self.name}"

    @property
    def num_cases(self) -> int:
        size = 1
        for values in self.grid.values():
            size *= len(values)
        return size

    def cases(self) -> list[dict[str, Any]]:
        """All parameter assignments of the grid, in deterministic order."""
        names = list(self.grid)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.grid[name] for name in names))
        ]

    def plan(self) -> "list[SimulationRequest]":
        """Expand the grid into simulation requests (cases first, baseline last).

        Invalid parameter values surface here as :class:`ValueError` from the
        config's own validation, i.e. at submission time, before anything is
        queued — as does an unknown backend name, which would otherwise only
        fail once the scheduler fingerprints the requests.
        """
        from ..accelerator.backends import resolve_backend_name
        from .scheduler import SimulationRequest

        resolve_backend_name(self.backend)

        requests = [
            SimulationRequest(
                config=dataclasses.replace(self.base, **params),
                trace=self.trace,
                energy_table=self.energy_table,
                backend=self.backend,
            )
            for params in self.cases()
        ]
        if self.baseline is not None:
            requests.append(
                SimulationRequest(
                    config=self.baseline,
                    trace=self.trace,
                    energy_table=self.energy_table,
                    backend=self.backend,
                )
            )
        return requests


class SweepJobResult:
    """A planned sweep's outcome: one report per case, plus the baseline.

    Results are held in whatever form the scheduler produced them — eager
    :class:`SimulationReport` objects or single-trace
    :class:`~repro.core.columnar.ColumnarReportBatch` slices — and stay
    columnar until a caller indexes a specific report.  :attr:`reports` /
    :attr:`baseline` materialize (and memoize) on first access, so
    sweep-level consumers that only read array aggregates or re-encode the
    result for the wire never pay the per-report object tax.
    """

    __slots__ = ("name", "params", "_case_results", "_baseline_result", "_reports")

    def __init__(
        self,
        name: str,
        params: list[dict[str, Any]],
        reports: "list[SimulationReport | ColumnarReportBatch]",
        baseline: "SimulationReport | ColumnarReportBatch | None" = None,
    ) -> None:
        self.name = name
        self.params = list(params)
        self._case_results = list(reports)
        self._baseline_result = baseline
        self._reports: list[SimulationReport] | None = None

    @property
    def reports(self) -> list[SimulationReport]:
        """Materialized per-case reports (built on first access, then cached)."""
        if self._reports is None:
            self._reports = [ensure_report(result) for result in self._case_results]
        return self._reports

    @property
    def baseline(self) -> SimulationReport | None:
        """The materialized baseline report, if the sweep requested one."""
        if self._baseline_result is None:
            return None
        return ensure_report(self._baseline_result)

    def case_results(self) -> "list[SimulationReport | ColumnarReportBatch]":
        """Per-case results in stored (possibly columnar) form, for the wire."""
        return list(self._case_results)

    def baseline_result(self) -> "SimulationReport | ColumnarReportBatch | None":
        """The baseline result in stored (possibly columnar) form."""
        return self._baseline_result

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, SweepJobResult):
            return NotImplemented
        # Compare materialized values: a columnar slice and the eager report
        # it materializes to are the same result.
        return (
            self.name == other.name
            and self.params == other.params
            and self.reports == other.reports
            and self.baseline == other.baseline
        )

    def __repr__(self) -> str:
        return (
            f"SweepJobResult(name={self.name!r}, cases={len(self._case_results)}, "
            f"baseline={self._baseline_result is not None})"
        )


#: Spec types the HTTP layer accepts in ``POST /jobs`` envelopes.
JOB_SPEC_TYPES = (SimulateJobSpec, QualityJobSpec, CallableJobSpec, SweepJobSpec)


# -- wire schemas ------------------------------------------------------------------


def _encode_simulate(spec: SimulateJobSpec, ctx: Encoder) -> dict:
    return {
        "config": ctx.encode(spec.config),
        "trace": _encode_trace_field(spec.trace, ctx),
        "energy_table": None if spec.energy_table is None else ctx.encode(spec.energy_table),
        "backend": spec.backend,
    }


def _decode_simulate(doc: Mapping[str, Any], ctx: Decoder) -> SimulateJobSpec:
    config = ctx.value(doc["config"])
    if not isinstance(config, AcceleratorConfig):
        raise codec.SchemaError("'config' must be an accelerator_config envelope")
    return SimulateJobSpec(
        config=config,
        trace=_decode_trace_field(doc["trace"], ctx),
        energy_table=_decode_optional(doc.get("energy_table"), ctx, EnergyTable, "'energy_table'"),
        backend=doc.get("backend"),
    )


register_schema("simulate_spec", 1, _encode_simulate, _decode_simulate, type=SimulateJobSpec)


def _encode_sweep(spec: SweepJobSpec, ctx: Encoder) -> dict:
    return {
        "base": ctx.encode(spec.base),
        "grid": {param: ctx.value(list(values)) for param, values in spec.grid.items()},
        "trace": _encode_trace_field(spec.trace, ctx),
        "baseline": None if spec.baseline is None else ctx.encode(spec.baseline),
        "energy_table": None if spec.energy_table is None else ctx.encode(spec.energy_table),
        "backend": spec.backend,
        "name": spec.name,
    }


def _decode_sweep(doc: Mapping[str, Any], ctx: Decoder) -> SweepJobSpec:
    base = ctx.value(doc["base"])
    if not isinstance(base, AcceleratorConfig):
        raise codec.SchemaError("'base' must be an accelerator_config envelope")
    grid = ctx.value(doc["grid"])
    if not isinstance(grid, dict):
        raise codec.SchemaError("'grid' must map config fields to value lists")
    return SweepJobSpec(
        base=base,
        grid=grid,
        trace=_decode_trace_field(doc["trace"], ctx),
        baseline=_decode_optional(doc.get("baseline"), ctx, AcceleratorConfig, "'baseline'"),
        energy_table=_decode_optional(doc.get("energy_table"), ctx, EnergyTable, "'energy_table'"),
        backend=doc.get("backend"),
        name=doc.get("name", "sweep"),
    )


register_schema("sweep_spec", 1, _encode_sweep, _decode_sweep, type=SweepJobSpec)

codec.register_dataclass(QualityJobSpec, "quality_spec")
codec.register_dataclass(CallableJobSpec, "callable_spec")


def _decode_result_item(value: Any, ctx: Decoder, what: str) -> Any:
    item = ctx.value(value)
    if isinstance(item, SimulationReport):
        return item
    if isinstance(item, ColumnarReportBatch) and item.num_traces == 1:
        return item
    raise codec.SchemaError(
        f"{what} must be simulation_report or single-trace "
        f"columnar_report_batch envelopes, got {type(item).__name__}"
    )


def _encode_sweep_result_v1(result: SweepJobResult, ctx: Encoder) -> dict:
    # Legacy shape (the register_dataclass layout of the eager class):
    # reports materialized per case.  Kept so version-pinned peers can still
    # be answered; current peers speak @2, which ships results columnar.
    return {
        "name": result.name,
        "params": ctx.value(result.params),
        "reports": [ctx.value(report) for report in result.reports],
        "baseline": None if result.baseline is None else ctx.value(result.baseline),
    }


def _decode_sweep_result_v1(doc: Mapping[str, Any], ctx: Decoder) -> SweepJobResult:
    reports = doc.get("reports", [])
    if not isinstance(reports, list):
        raise codec.SchemaError("sweep_result 'reports' must be a list")
    return SweepJobResult(
        name=ctx.value(doc.get("name")),
        params=ctx.value(doc.get("params", [])),
        reports=[_decode_result_item(item, ctx, "'reports' items") for item in reports],
        baseline=(
            None
            if doc.get("baseline") is None
            else _decode_result_item(doc["baseline"], ctx, "'baseline'")
        ),
    )


def _encode_sweep_result(result: SweepJobResult, ctx: Encoder) -> dict:
    # v2 ships results in stored form: single-trace columnar batches stay
    # columnar (one envelope with $ndarray sidecars per case), so encoding a
    # sweep result materializes nothing.
    return {
        "name": result.name,
        "params": ctx.value(result.params),
        "results": [ctx.value(item) for item in result.case_results()],
        "baseline": (
            None if result.baseline_result() is None else ctx.value(result.baseline_result())
        ),
    }


def _decode_sweep_result(doc: Mapping[str, Any], ctx: Decoder) -> SweepJobResult:
    results = doc.get("results", [])
    if not isinstance(results, list):
        raise codec.SchemaError("sweep_result 'results' must be a list")
    return SweepJobResult(
        name=ctx.value(doc.get("name")),
        params=ctx.value(doc.get("params", [])),
        reports=[_decode_result_item(item, ctx, "'results' items") for item in results],
        baseline=(
            None
            if doc.get("baseline") is None
            else _decode_result_item(doc["baseline"], ctx, "'baseline'")
        ),
    )


register_schema("sweep_result", 1, _encode_sweep_result_v1, _decode_sweep_result_v1)
# Type dispatch resolves to the highest registered version, so plain
# codec.encode(result) speaks @2.
register_schema("sweep_result", 2, _encode_sweep_result, _decode_sweep_result, type=SweepJobResult)
