"""Lease-tracking dispatch queue for the pull-based worker fleet.

:class:`WorkerFleet` sits beside the service's in-process thread pool and
turns coalesced simulation groups into *tasks* that remote workers pull over
HTTP instead of threads picking them up locally:

* **register** — a worker announces itself (``POST /workers/register``) and
  gets an id plus the lease/heartbeat contract.  Re-registering under the
  same name (a restarted worker) retires the previous incarnation and
  requeues whatever it was holding, immediately.
* **claim** — workers long-poll for tasks (``POST /workers/<id>/claim``).
  A claimed task moves PENDING → LEASED under a compare-and-swap guarded by
  the fleet lock, with a deadline ``lease_seconds`` in the future.
* **heartbeat** — renews every lease the worker holds.  A worker that stops
  heartbeating (crashed, SIGKILLed, partitioned) misses its deadline; the
  expiry monitor flips the task LEASED → PENDING, bumps its attempt count
  and requeues it for the next claim.
* **complete** — results are accepted only while the task is LEASED *by the
  completing worker*.  A completion arriving after the lease expired (the
  worker was slow, not dead) is rejected, so a requeued task can never
  deliver twice.

Task state transitions are CAS-style: every observable move (claim, expire,
complete, retire) checks the current state and owner under one lock, so a
cancel racing a claim, or a zombie worker racing a requeue, resolves to
exactly one winner.  The fleet never touches job state directly — it calls
back into the service through two hooks (``prepare`` claims the underlying
sinks on first lease; ``deliver`` completes them), keeping the single-flight
registry and cache accounting where they already live.

Liveness telemetry (workers-alive gauge, lease-expiry and requeue counters,
claim-latency histogram) lands in the process registry and is served from
``GET /metrics`` like every other subsystem.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Sequence

from ..core import codec, telemetry
from .scheduler import SimulationRequest

#: Upper bound on one claim long-poll, regardless of what the worker asks for.
MAX_CLAIM_WAIT_SECONDS = 30.0

#: A worker counts as alive while its last heartbeat is this many leases old.
ALIVE_LEASE_FACTOR = 2.0

#: Bounds on the per-worker lease length (requested at registration).
MIN_LEASE_SECONDS = 0.05
MAX_LEASE_SECONDS = 3600.0


class TaskState(str, Enum):
    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"


@dataclass
class WorkerInfo:
    """One registered worker process (or a retired incarnation of one)."""

    id: str
    name: str
    concurrency: int = 1
    lease_seconds: float = 30.0
    registered_at: float = field(default_factory=time.time)  # repro: allow[REP002] display-only
    last_heartbeat: float = field(default_factory=time.monotonic)
    retired: bool = False
    tasks_completed: int = 0

    def alive(self, now: float) -> bool:
        if self.retired:
            return False
        return (now - self.last_heartbeat) <= self.lease_seconds * ALIVE_LEASE_FACTOR

    def summary(self, now: float) -> dict[str, Any]:
        return {
            "id": self.id,
            "name": self.name,
            "concurrency": self.concurrency,
            "lease_seconds": self.lease_seconds,
            "alive": self.alive(now),
            "retired": self.retired,
            "heartbeat_age_seconds": round(now - self.last_heartbeat, 3),
            "tasks_completed": self.tasks_completed,
        }


@dataclass
class FleetTask:
    """One dispatchable unit: a config partition of a coalesced batch."""

    id: str
    sinks: list[Any]
    requests: list[SimulationRequest]
    state: TaskState = TaskState.PENDING
    owner: str | None = None
    attempts: int = 0
    lease_deadline: float = 0.0
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Sink claiming happens exactly once, on the first lease; a requeued
    #: task reuses the filtered sinks (``Job.mark_running`` is CAS itself
    #: and would reject a second claim of an already-RUNNING job).
    prepared: bool = False
    live_sinks: list[Any] = field(default_factory=list)
    live_requests: list[SimulationRequest] = field(default_factory=list)
    payload: dict[str, Any] | None = None

    def wire_payload(self) -> dict[str, Any]:
        assert self.payload is not None
        return {**self.payload, "attempts": self.attempts}


class WorkerFleet:
    """Register/claim/heartbeat/complete lease manager (see module docstring).

    Parameters
    ----------
    lease_seconds:
        Default lease length for workers that do not request their own.
    max_attempts:
        A task requeued this many times fails its jobs instead of cycling
        forever (a poisonous payload would otherwise starve the fleet).
    prepare:
        ``prepare(sinks, requests) -> (live_sinks, live_requests)`` — called
        once per task, on first claim, to CAS-claim the underlying job sinks
        (cancelled jobs drop out here).
    deliver:
        ``deliver(sinks, requests, reports=..., error=...)`` — called outside
        the fleet lock to complete a task's sinks and their coalesced
        followers.
    """

    def __init__(
        self,
        lease_seconds: float = 30.0,
        max_attempts: int = 5,
        prepare: Callable[[list[Any], list[SimulationRequest]], tuple] | None = None,
        deliver: Callable[..., None] | None = None,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be > 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = max_attempts
        self._prepare = prepare
        self._deliver = deliver
        self._lock = threading.Condition()
        self._workers: dict[str, WorkerInfo] = {}  #: guarded by _lock
        self._tasks: dict[str, FleetTask] = {}  #: guarded by _lock
        self._pending: deque[str] = deque()  #: guarded by _lock
        self._worker_ids = itertools.count(1)
        self._task_ids = itertools.count(1)
        self._closed = False
        # Plain per-fleet counters (the registry aggregates process-wide).
        self.leases_expired = 0
        self.tasks_requeued = 0
        self.tasks_completed = 0
        self.completions_rejected = 0
        self.tasks_failed = 0
        registry = telemetry.get_registry()
        self._workers_gauge = registry.gauge(
            "repro_fleet_workers_alive", "Registered workers with a fresh heartbeat."
        )
        self._queue_gauge = registry.gauge(
            "repro_fleet_queue_depth", "Fleet tasks waiting to be claimed."
        )
        self._registered_metric = registry.counter(
            "repro_fleet_workers_registered_total", "Worker registrations accepted."
        )
        self._expired_metric = registry.counter(
            "repro_fleet_leases_expired_total", "Leases expired after missed heartbeats."
        )
        self._requeued_metric = registry.counter(
            "repro_fleet_jobs_requeued_total", "Tasks requeued after a lease expired."
        )
        self._completed_metric = registry.counter(
            "repro_fleet_tasks_completed_total",
            "Task completions by outcome (accepted / rejected / error / failed).",
            labels=("outcome",),
        )
        self._claim_latency_metric = registry.histogram(
            "repro_fleet_claim_latency_seconds",
            "Monotonic wait from task enqueue to a worker claiming it.",
        )
        self._workers_gauge_fn = self._count_alive
        self._queue_gauge_fn = lambda: float(len(self._pending))
        self._workers_gauge.set_function(self._workers_gauge_fn)
        self._queue_gauge.set_function(self._queue_gauge_fn)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()

    def _count_alive(self) -> float:
        now = time.monotonic()
        with self._lock:
            return float(sum(1 for worker in self._workers.values() if worker.alive(now)))

    # -- worker lifecycle -------------------------------------------------------

    def register(
        self,
        name: str,
        concurrency: int = 1,
        lease_seconds: float | None = None,
    ) -> WorkerInfo:
        """Admit a worker; a same-named live worker is retired and its leases
        requeued immediately (restart semantics — no need to wait for its old
        leases to time out)."""
        if not name:
            raise ValueError("worker name must be non-empty")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        lease = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        lease = min(max(lease, MIN_LEASE_SECONDS), MAX_LEASE_SECONDS)
        failures: list[FleetTask] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("worker fleet is closed")
            requeued_before = self.tasks_requeued
            for previous in self._workers.values():
                if previous.name == name and not previous.retired:
                    previous.retired = True
                    failures.extend(self._release_owned_locked(previous.id))
            requeued = self.tasks_requeued - requeued_before
            worker = WorkerInfo(
                id=f"worker-{next(self._worker_ids):04d}",
                name=name,
                concurrency=concurrency,
                lease_seconds=lease,
            )
            self._workers[worker.id] = worker
            self._lock.notify_all()
        # Registry metrics only outside the fleet lock: the alive-workers
        # gauge callback runs *under* the registry lock and takes the fleet
        # lock, so a metric op under the fleet lock would close a
        # registry-lock/fleet-lock ordering cycle (a real deadlock under
        # concurrent /metrics scrapes — see lockwatch).
        self._registered_metric.inc()
        if requeued:
            self._requeued_metric.inc(requeued)
        self._fail_tasks(failures)
        return worker

    def _worker_locked(self, worker_id: str) -> WorkerInfo:
        worker = self._workers.get(worker_id)
        if worker is None or worker.retired:
            raise KeyError(f"unknown worker {worker_id!r} (register first)")
        return worker

    def _release_owned_locked(self, worker_id: str) -> list[FleetTask]:
        """Requeue every lease held by ``worker_id``; returns tasks that
        exhausted their attempts and must be failed (outside the lock)."""
        failures: list[FleetTask] = []
        for task in list(self._tasks.values()):
            if task.state is TaskState.LEASED and task.owner == worker_id:
                failures.extend(self._requeue_locked(task))
        return failures

    def _requeue_locked(self, task: FleetTask) -> list[FleetTask]:
        task.owner = None
        task.attempts += 1
        if task.attempts >= self.max_attempts:
            task.state = TaskState.DONE
            del self._tasks[task.id]
            return [task]
        task.state = TaskState.PENDING
        task.enqueued_at = time.monotonic()
        self._pending.append(task.id)
        # Plain counter only; the caller mirrors the delta into the registry
        # metric after releasing the lock (lock-ordering discipline above).
        self.tasks_requeued += 1
        self._lock.notify_all()
        return []

    def _fail_tasks(self, tasks: Sequence[FleetTask]) -> None:
        for task in tasks:
            self.tasks_failed += 1
            self._completed_metric.inc(outcome="failed")
            if self._deliver is not None and task.prepared:
                error = RuntimeError(
                    f"fleet task {task.id} abandoned after {task.attempts} expired leases"
                )
                self._deliver(task.live_sinks, task.live_requests, error=error)

    # -- dispatch ---------------------------------------------------------------

    def offer(self, sinks: list[Any], requests: list[SimulationRequest]) -> FleetTask:
        """Queue one task (a config partition of a coalesced batch)."""
        if len(sinks) != len(requests):
            raise ValueError("sinks and requests must align")
        if not requests:
            raise ValueError("cannot offer an empty task")
        with self._lock:
            if self._closed:
                raise RuntimeError("worker fleet is closed")
            task = FleetTask(
                id=f"task-{next(self._task_ids):04d}", sinks=sinks, requests=requests
            )
            self._tasks[task.id] = task
            self._pending.append(task.id)
            self._lock.notify_all()
        return task

    def claim(
        self, worker_id: str, max_tasks: int = 1, wait_seconds: float = 0.0
    ) -> list[dict[str, Any]]:
        """Lease up to ``max_tasks`` pending tasks to ``worker_id``.

        Blocks up to ``wait_seconds`` (capped at
        :data:`MAX_CLAIM_WAIT_SECONDS`) when the queue is empty — the HTTP
        long-poll.  Returns wire payloads (typed ``simulate_spec`` envelopes);
        raises :class:`KeyError` for unknown or retired workers.
        """
        if max_tasks < 1:
            raise ValueError("max_tasks must be >= 1")
        deadline = time.monotonic() + min(max(wait_seconds, 0.0), MAX_CLAIM_WAIT_SECONDS)
        with self._lock:
            while True:
                now = time.monotonic()
                worker = self._worker_locked(worker_id)
                worker.last_heartbeat = now  # claiming proves liveness
                granted = self._claim_locked(worker, max_tasks, now)
                if granted or self._closed:
                    claim_waits = [now - task.enqueued_at for task in granted]
                    payloads = [task.wire_payload() for task in granted]
                    break
                remaining = deadline - now
                if remaining <= 0:
                    return []
                self._lock.wait(min(remaining, 0.5))
        for wait in claim_waits:  # registry metrics outside the fleet lock
            self._claim_latency_metric.observe(wait)
        return payloads

    def _claim_locked(
        self, worker: WorkerInfo, max_tasks: int, now: float
    ) -> list[FleetTask]:
        granted: list[FleetTask] = []
        while self._pending and len(granted) < max_tasks:
            task = self._tasks.get(self._pending.popleft())
            if task is None or task.state is not TaskState.PENDING:
                continue  # completed/failed while queued; stale queue entry
            if not task.prepared:
                task.prepared = True
                if self._prepare is not None:
                    live_sinks, live_requests = self._prepare(task.sinks, task.requests)
                else:
                    # Without a service hook, mirror its semantics: CAS-claim
                    # each sink; whoever refuses (cancelled) drops out.
                    live_sinks, live_requests = [], []
                    for sink, request in zip(task.sinks, task.requests):
                        if sink.claim():
                            live_sinks.append(sink)
                            live_requests.append(request)
                task.live_sinks = list(live_sinks)
                task.live_requests = list(live_requests)
                if not task.live_requests:  # every job cancelled before any lease
                    task.state = TaskState.DONE
                    del self._tasks[task.id]
                    continue
                task.payload = {
                    "id": task.id,
                    "specs": [_request_to_spec_payload(r) for r in task.live_requests],
                }
            task.state = TaskState.LEASED
            task.owner = worker.id
            task.lease_deadline = now + worker.lease_seconds
            for sink in task.live_sinks:
                if sink is not None:
                    sink.trace_mark("leased", worker=worker.id, task=task.id)
            granted.append(task)
        return granted

    def heartbeat(self, worker_id: str) -> dict[str, Any]:
        """Renew every lease ``worker_id`` holds; raises KeyError when the
        worker is unknown or retired (its cue to re-register)."""
        now = time.monotonic()
        with self._lock:
            worker = self._worker_locked(worker_id)
            worker.last_heartbeat = now
            renewed = []
            for task in self._tasks.values():
                if task.state is TaskState.LEASED and task.owner == worker_id:
                    task.lease_deadline = now + worker.lease_seconds
                    renewed.append(task.id)
        return {
            "worker_id": worker_id,
            "lease_seconds": worker.lease_seconds,
            "tasks": renewed,
        }

    def complete(
        self,
        worker_id: str,
        task_id: str,
        reports: list[Any] | None = None,
        error: str | None = None,
    ) -> bool:
        """Accept a task result iff the completing worker still holds the lease.

        The CAS: accepted only when the task exists, is LEASED, and is owned
        by ``worker_id``.  A completion after expiry/requeue (or a duplicate)
        returns False and delivers nothing — the retry owns the result now.
        Simulation ``error`` strings fail the underlying jobs immediately;
        deterministic failures do not benefit from a requeue.
        """
        with self._lock:
            self._worker_locked(worker_id)  # unknown workers may not complete
            task = self._tasks.get(task_id)
            if (
                task is None
                or task.state is not TaskState.LEASED
                or task.owner != worker_id
            ):
                self.completions_rejected += 1
                task = None  # the rejected-metric inc happens outside the lock
            else:
                if error is None and (reports is None or len(reports) != len(task.live_requests)):
                    raise ValueError(
                        f"task {task_id} completion carries "
                        f"{0 if reports is None else len(reports)} "
                        f"reports for {len(task.live_requests)} requests"
                    )
                task.state = TaskState.DONE
                del self._tasks[task.id]
                worker = self._workers.get(worker_id)
                if worker is not None:
                    worker.tasks_completed += 1
        if task is None:
            self._completed_metric.inc(outcome="rejected")
            return False
        if error is not None:
            self._completed_metric.inc(outcome="error")
            if self._deliver is not None:
                self._deliver(
                    task.live_sinks,
                    task.live_requests,
                    error=RuntimeError(f"worker {worker_id} failed task {task_id}: {error}"),
                )
        else:
            self.tasks_completed += 1
            self._completed_metric.inc(outcome="accepted")
            if self._deliver is not None:
                self._deliver(task.live_sinks, task.live_requests, reports=reports)
        return True

    # -- expiry -----------------------------------------------------------------

    def _monitor_loop(self) -> None:
        tick = min(max(self.lease_seconds / 4.0, 0.02), 1.0)
        while True:
            self._expire_and_publish()
            with self._lock:
                if self._closed:
                    return
                self._lock.wait(tick)

    def _expire_and_publish(self) -> int:
        """One expiry sweep; metric deltas publish after the lock is released
        (the lock-ordering discipline documented in register())."""
        with self._lock:
            if self._closed:
                return 0
            expired_before = self.leases_expired
            requeued_before = self.tasks_requeued
            failures = self._expire_locked(time.monotonic())
            expired = self.leases_expired - expired_before
            requeued = self.tasks_requeued - requeued_before
        if expired:
            self._expired_metric.inc(expired)
        if requeued:
            self._requeued_metric.inc(requeued)
        self._fail_tasks(failures)
        return expired

    def _expire_locked(self, now: float) -> list[FleetTask]:
        failures: list[FleetTask] = []
        for task in list(self._tasks.values()):
            if task.state is TaskState.LEASED and now >= task.lease_deadline:
                self.leases_expired += 1
                failures.extend(self._requeue_locked(task))
        return failures

    def expire_now(self) -> int:
        """Force one expiry sweep (tests and diagnostics); returns how many
        leases expired."""
        return self._expire_and_publish()

    # -- inspection / lifecycle -------------------------------------------------

    def summary(self) -> dict[str, Any]:
        now = time.monotonic()
        with self._lock:
            owned: dict[str, int] = {}
            leased = 0
            pending = 0
            for task in self._tasks.values():
                if task.state is TaskState.LEASED:
                    leased += 1
                    if task.owner is not None:
                        owned[task.owner] = owned.get(task.owner, 0) + 1
                elif task.state is TaskState.PENDING:
                    pending += 1
            workers = [
                {**worker.summary(now), "leased": owned.get(worker.id, 0)}
                for worker in self._workers.values()
            ]
        return {
            "workers": workers,
            "workers_alive": sum(1 for worker in workers if worker["alive"]),
            "queue_depth": pending,
            "leased": leased,
            "tasks_completed": self.tasks_completed,
            "completions_rejected": self.completions_rejected,
            "leases_expired": self.leases_expired,
            "tasks_requeued": self.tasks_requeued,
            "tasks_failed": self.tasks_failed,
            "lease_seconds": self.lease_seconds,
            "closed": self._closed,
        }

    def close(self) -> None:
        """Stop the monitor and fail every task still outstanding."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            outstanding = [
                task for task in self._tasks.values() if task.state is not TaskState.DONE
            ]
            self._tasks.clear()
            self._pending.clear()
            self._lock.notify_all()
        self._monitor.join()
        for task in outstanding:
            if self._deliver is not None and task.prepared:
                self._deliver(
                    task.live_sinks,
                    task.live_requests,
                    error=RuntimeError("worker fleet closed before this task completed"),
                )
        self._workers_gauge.clear_function(self._workers_gauge_fn)
        self._queue_gauge.clear_function(self._queue_gauge_fn)


def _request_to_spec_payload(request: SimulationRequest) -> dict[str, Any]:
    """One request as a typed ``simulate_spec`` envelope (codec-encoded)."""
    from .specs import SimulateJobSpec

    return codec.encode(
        SimulateJobSpec(
            config=request.config,
            trace=request.trace,
            energy_table=request.energy_table,
            backend=request.backend,
        )
    )
