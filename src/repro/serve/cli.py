"""``repro`` — the command-line front end of the evaluation service.

Four subcommands drive the fleet pipeline end to end against a persistent
artifact directory, so repeated invocations (and concurrent workers pointing
at the same directory) share sparsity traces, FID statistics and simulation
reports instead of recomputing them:

``repro sweep``
    Sweep accelerator-configuration knobs over a workload's quantized trace.
    The whole grid is submitted as *one* typed ``sweep_spec`` job; the
    service plans it server-side, coalesces the cases into cross-trace
    batched passes, and answers with per-case reports plus the dense
    baseline.  With ``--endpoint`` the same spec goes to a remote
    ``repro serve`` process as plain JSON, where grids from any number of
    clients coalesce through one single-flight scheduler and share one
    artifact store.  ``--executor`` picks the backend explicitly (any name
    from the :mod:`repro.core.execution` registry — ``inline``, ``thread``,
    ``process``, ``service``, ``remote``, or a registered third-party one).
``repro evaluate``
    The Fig. 12 hardware comparison for one workload, optionally with
    declarative quality (FID) specs fanned out to the process pool.
``repro serve``
    Run the evaluation service behind its HTTP front end
    (:mod:`repro.serve.http`) until interrupted.  ``--log-level`` turns on
    the structured JSON event log (access records, job lifecycle, spans).
``repro top``
    Live terminal dashboard of a running server: polls ``GET /metrics`` and
    ``GET /jobs`` and renders queue depth, coalescing ratio, cache hit rate
    and p50/p95/p99 job latency (``--once`` for a single snapshot).
``repro cache``
    Inspect, wipe, evict from, or migrate the artifact store.
``repro bench``
    Measure simulation/sweep/service throughput (:mod:`repro.core.bench`),
    optionally gating against a committed ``BENCH_<n>.json`` baseline.

Every command accepts ``--artifact-dir`` (default: the ``REPRO_ARTIFACT_DIR``
environment variable) and ``--json`` to write machine-readable results for CI.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Any, Sequence

from ..accelerator.config import AcceleratorConfig, dense_baseline_config, sqdm_config
from ..core.artifacts import (
    ARTIFACT_DIR_ENV_VAR,
    MAX_BYTES_ENV_VAR,
    TTL_ENV_VAR,
    ArtifactStore,
    artifact_store_at,
)
from ..core.execution import RemoteExecutor, executor_names, resolve_executor
from ..core.pipeline import PipelineConfig, SQDMPipeline
from ..core.policy import mixed_precision_policy
from ..core.report_cache import ReportCache
from ..core.sparsity import trace_to_workloads
from ..workloads.models import workload_names
from .service import EvaluationService
from .specs import QualityJobSpec, SweepJobSpec

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(AcceleratorConfig)} - {"name", "pe"}


def _parse_param(text: str) -> tuple[str, list[Any]]:
    """Parse ``--param name=v1,v2,...`` into a grid entry with typed values."""
    name, sep, values = text.partition("=")
    name = name.strip()
    if not sep or not values.strip():
        raise argparse.ArgumentTypeError(f"expected NAME=V1[,V2,...], got {text!r}")
    if name not in _CONFIG_FIELDS:
        raise argparse.ArgumentTypeError(
            f"unknown AcceleratorConfig field {name!r}; sweepable fields: "
            f"{sorted(_CONFIG_FIELDS)}"
        )

    def convert(raw: str) -> Any:
        raw = raw.strip()
        try:
            return int(raw)
        except ValueError:
            try:
                return float(raw)
            except ValueError:
                return raw

    return name, [convert(v) for v in values.split(",")]


def _add_common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--artifact-dir",
        default=os.environ.get(ARTIFACT_DIR_ENV_VAR) or None,
        help="persistent artifact directory (default: $REPRO_ARTIFACT_DIR; "
        "omit both to run without persistence)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write results as JSON to PATH",
    )


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="cifar10", choices=workload_names())
    parser.add_argument(
        "--resolution",
        type=int,
        default=None,
        help="override image resolution (smaller = faster)",
    )
    parser.add_argument("--sampling-steps", type=int, default=4)
    parser.add_argument("--trace-samples", type=int, default=1)
    parser.add_argument("--fid-samples", type=int, default=8)
    parser.add_argument("--reference-samples", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)


def _resolve_store(args: argparse.Namespace) -> ArtifactStore | None:
    return artifact_store_at(args.artifact_dir) if args.artifact_dir else None


def _build_pipeline(
    args: argparse.Namespace, store: ArtifactStore | None, cache: ReportCache
) -> SQDMPipeline:
    from ..workloads.models import load_workload

    config = PipelineConfig(
        num_fid_samples=args.fid_samples,
        num_reference_samples=args.reference_samples,
        num_sampling_steps=args.sampling_steps,
        num_trace_samples=args.trace_samples,
        seed=args.seed,
    )
    workload = load_workload(args.workload, resolution=args.resolution)
    return SQDMPipeline(workload=workload, config=config, artifacts=store, report_cache=cache)


def _cache_summary(cache: ReportCache, store: ArtifactStore | None) -> dict[str, Any]:
    summary: dict[str, Any] = {
        "memory_hits": cache.stats.hits,
        "disk_hits": cache.stats.disk_hits,
        "misses": cache.stats.misses,
        "hit_rate": cache.stats.hit_rate,
    }
    if store is not None:
        summary["store"] = store.summary()
        summary["store_hits"] = store.stats.hits
        summary["store_misses"] = store.stats.misses
    return summary


def _remote_cache_summary(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """This invocation's share of the server's cache traffic, as before/after deltas.

    Shaped like :func:`_cache_summary` so CI asserts the same keys for the
    in-process and the remote paths; the server's absolute stats ride along
    under ``"server"``.
    """
    deltas = {
        key: after["cache"][key] - before["cache"][key]
        for key in ("memory_hits", "disk_hits", "misses")
    }
    requests = sum(deltas.values())
    served = deltas["memory_hits"] + deltas["disk_hits"]
    return {
        **deltas,
        "hit_rate": served / requests if requests else 0.0,
        "server": after,
    }


def _write_json(path: str | None, payload: dict[str, Any]) -> None:
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


def _print_cache_line(cache: ReportCache, store: ArtifactStore | None) -> None:
    stats = cache.stats
    line = (
        f"report cache: {stats.hits} memory hits, {stats.disk_hits} disk hits, "
        f"{stats.misses} simulated ({stats.hit_rate:.0%} hit rate)"
    )
    if store is not None:
        line += f"; artifact store: {store.count()} artifacts at {store.root}"
    print(line)


# -- repro sweep ----------------------------------------------------------------


def _cmd_sweep(args: argparse.Namespace) -> int:
    from ..analysis.tables import format_table

    store = _resolve_store(args)
    cache = ReportCache(store=store)

    # One spec, one executor: the whole grid goes through the unified
    # execution API, so switching between an in-process service, a plain
    # pool and a remote server is the choice of one --executor name.
    # Resolved first, before any pipeline/trace work, so a bad name or a
    # --endpoint/--executor contradiction fails in milliseconds.
    executor_name = args.executor or ("remote" if args.endpoint else "service")
    if executor_name == "remote" and not args.endpoint:
        print("--executor remote needs --endpoint URL", file=sys.stderr)
        return 2
    if args.endpoint and executor_name != "remote":
        # Refuse the contradiction rather than silently running locally while
        # the JSON report claims a server endpoint.
        print(
            f"--endpoint is only meaningful with the remote executor; drop it or "
            f"drop --executor {executor_name}",
            file=sys.stderr,
        )
        return 2
    try:
        executor = resolve_executor(
            executor_name,
            cache=cache,
            max_workers=args.max_workers,
            endpoint=args.endpoint,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    remote_stats_before: dict[str, Any] | None = None
    if isinstance(executor, RemoteExecutor):
        remote_stats_before = executor.client.cache_stats()

    with executor:
        pipeline = _build_pipeline(args, store, cache)

        grid = dict(args.params or [("sparsity_threshold", [0.1, 0.3, 0.5])])

        policy = mixed_precision_policy(pipeline.relu_unet(), relu=True)
        trace = pipeline.collect_trace(relu=True)
        quant_trace = trace_to_workloads(trace, policy)

        # The whole grid is one declarative sweep spec: the executor's
        # backend plans it, coalesces the cases with any other traffic,
        # and returns per-case reports plus the dense baseline; over HTTP
        # the spec travels as plain, versioned JSON.
        spec = SweepJobSpec(
            base=sqdm_config(),
            grid={name: list(values) for name, values in grid.items()},
            trace=quant_trace,
            baseline=dense_baseline_config(),
            backend=args.backend,
            name=f"sweep-{args.workload}",
        )
        outcome = executor.submit(spec).result()
        baseline = outcome.baseline
        reports = outcome.reports
        if remote_stats_before is not None:
            cache_summary = _remote_cache_summary(
                remote_stats_before, executor.client.cache_stats()
            )
        else:
            cache_summary = _cache_summary(cache, store)

    rows = []
    results = []
    for params, report in zip(outcome.params, reports):
        speedup = (
            baseline.total_cycles / report.total_cycles if report.total_cycles else float("inf")
        )
        rows.append(
            [
                *(params[name] for name in grid),
                f"{report.total_time_ms:.3f}",
                f"{report.total_energy.total_uj:.2f}",
                f"{speedup:.2f}x",
            ]
        )
        results.append(
            {
                "params": params,
                "total_cycles": report.total_cycles,
                "total_time_ms": report.total_time_ms,
                "total_energy_pj": report.total_energy.total_pj,
                "speedup_vs_dense_baseline": speedup,
            }
        )
    print(
        format_table(
            [*grid, "Latency (ms)", "Energy (uJ)", "Speed-up vs dense"],
            rows,
            title=f"{spec.name}: {spec.num_cases} design points on the quantized trace",
        )
    )
    if args.endpoint:
        print(
            f"served by {args.endpoint}: {cache_summary['misses']} simulated, "
            f"{cache_summary['memory_hits']} memory hits, "
            f"{cache_summary['disk_hits']} disk hits during this sweep"
        )
    else:
        _print_cache_line(cache, store)
    _write_json(
        args.json_path,
        {
            "command": "sweep",
            "workload": args.workload,
            "endpoint": args.endpoint,
            "executor": executor_name,
            "grid": {name: list(values) for name, values in grid.items()},
            "cases": results,
            "baseline_cycles": baseline.total_cycles,
            "cache": cache_summary,
        },
    )
    return 0


# -- repro evaluate -------------------------------------------------------------


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from ..analysis.tables import format_table

    if args.executor == "remote":
        print(
            "repro evaluate runs in-process and has no --endpoint; "
            "use --executor inline/thread/process/service (or `repro sweep "
            "--endpoint` for remote execution)",
            file=sys.stderr,
        )
        return 2

    store = _resolve_store(args)
    cache = ReportCache(store=store)

    # Resolve a non-service executor up front (it only needs the cache), so
    # an unknown name fails before any pipeline or quality work starts;
    # "service" is bound to this command's service below.
    hw_executor = None
    if args.executor != "service":
        try:
            hw_executor = resolve_executor(args.executor, cache=cache)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    pipeline = _build_pipeline(args, store, cache)

    quality_results: list[dict[str, Any]] = []
    with EvaluationService(cache=cache, process_workers=args.process_workers) as service:
        quality_jobs = [
            service.submit_quality(
                QualityJobSpec(
                    workload=args.workload,
                    scheme=scheme,
                    resolution=args.resolution,
                    pipeline_overrides={
                        "num_fid_samples": args.fid_samples,
                        "num_reference_samples": args.reference_samples,
                        "num_sampling_steps": args.sampling_steps,
                        "num_trace_samples": args.trace_samples,
                        "seed": args.seed,
                    },
                    artifact_dir=args.artifact_dir,
                )
            )
            for scheme in args.quality or []
        ]
        # The hardware comparison goes through the unified execution API;
        # --executor service reuses this command's service (and its pools)
        # for the simulation jobs too.
        if hw_executor is None:
            hw_executor = service.as_executor()
        with hw_executor:
            evaluation = pipeline.evaluate_hardware(executor=hw_executor)
        quality_results = [job.result() for job in quality_jobs]

    print(
        format_table(
            ["Metric", "Value"],
            [
                ["Average activation sparsity", f"{evaluation.average_sparsity:.1%}"],
                ["Sparsity speed-up (vs dense baseline)", f"{evaluation.sparsity_speedup:.2f}x"],
                ["Sparsity energy saving", f"{evaluation.sparsity_energy_saving:.1%}"],
                ["Quantization speed-up (vs FP16)", f"{evaluation.quantization_speedup:.2f}x"],
                ["Total speed-up (vs FP16 dense)", f"{evaluation.total_speedup:.2f}x"],
                ["SQ-DM latency", f"{evaluation.sqdm_report.total_time_ms:.3f} ms"],
            ],
            title=f"Hardware evaluation: {args.workload}",
        )
    )
    if quality_results:
        print(
            format_table(
                ["Scheme", "FID", "Compute saving", "Memory saving"],
                [
                    [
                        q["scheme"],
                        f"{q['fid']:.2f}",
                        f"{q['compute_saving']:.1%}",
                        f"{q['memory_saving']:.1%}",
                    ]
                    for q in quality_results
                ],
                title="Quality (process-pool sampling jobs)",
            )
        )
    _print_cache_line(cache, store)
    _write_json(
        args.json_path,
        {
            "command": "evaluate",
            "workload": args.workload,
            "executor": args.executor,
            "hardware": {
                "average_sparsity": evaluation.average_sparsity,
                "sparsity_speedup": evaluation.sparsity_speedup,
                "sparsity_energy_saving": evaluation.sparsity_energy_saving,
                "quantization_speedup": evaluation.quantization_speedup,
                "total_speedup": evaluation.total_speedup,
                "sqdm_time_ms": evaluation.sqdm_report.total_time_ms,
            },
            "quality": quality_results,
            "cache": _cache_summary(cache, store),
        },
    )
    return 0


# -- repro serve ----------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..core.telemetry import configure_event_log
    from .http import EvaluationHTTPServer

    if args.log_level:
        configure_event_log(level=args.log_level)
    store = None
    if args.artifact_dir:
        store = artifact_store_at(
            args.artifact_dir, max_bytes=args.max_bytes, ttl_seconds=args.ttl
        )
    cache = ReportCache(store=store)
    service = EvaluationService(
        cache=cache,
        max_workers=args.max_workers,
        process_workers=args.process_workers,
        worker_fleet=args.dispatch == "workers",
        lease_seconds=args.lease_seconds,
    )
    server = EvaluationHTTPServer(
        (args.host, args.port),
        service,
        store=store,
        max_request_bytes=args.max_request_bytes,
    )
    print(f"repro serve: listening on {server.endpoint}", flush=True)
    if service.fleet is not None:
        print(
            "repro serve: dispatching simulation jobs to pull workers "
            f"(lease {service.fleet.lease_seconds:g}s; start them with "
            f"`repro worker --endpoint {server.endpoint}`)",
            flush=True,
        )
    if store is not None:
        policy = f"max_bytes={store.max_bytes} ttl_seconds={store.ttl_seconds}"
        print(f"repro serve: artifact store at {store.root} ({policy})", flush=True)
    else:
        print(
            "repro serve: no artifact directory; results are not persisted "
            f"(pass --artifact-dir or set {ARTIFACT_DIR_ENV_VAR})",
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        server.server_close()
        service.close(cancel_queued=True)
    return 0


# -- repro worker ---------------------------------------------------------------


def _cmd_worker(args: argparse.Namespace) -> int:
    from .worker import run_worker

    return run_worker(
        args.endpoint,
        name=args.name,
        concurrency=args.concurrency,
        lease_seconds=args.lease_seconds,
        poll_seconds=args.poll_seconds,
        chaos_hold_seconds=args.chaos_hold_seconds,
    )


# -- repro top ------------------------------------------------------------------


def _cmd_top(args: argparse.Namespace) -> int:
    from .top import run_top

    return run_top(args.endpoint, interval=args.interval, once=args.once)


# -- repro cache ----------------------------------------------------------------


def _cmd_cache(args: argparse.Namespace) -> int:
    if not args.artifact_dir:
        print(
            f"no artifact directory: pass --artifact-dir or set {ARTIFACT_DIR_ENV_VAR}",
            file=sys.stderr,
        )
        return 2
    store = artifact_store_at(args.artifact_dir)
    if args.action == "migrate":
        result = store.migrate_legacy()
        print(
            f"migrated {result.migrated} legacy artifact(s) at {store.root}; "
            f"{result.already_current} already current, {result.failed} failed"
        )
        _write_json(
            args.json_path,
            {"command": "cache", "action": "migrate", **result.summary()},
        )
        return 0 if result.failed == 0 else 1
    if args.action == "wipe":
        removed = store.wipe(args.kind)
        print(f"removed {removed} artifact(s) from {store.root}")
        _write_json(args.json_path, {"command": "cache", "action": "wipe", "removed": removed})
        return 0
    if args.action == "evict":
        no_policy = (
            args.max_bytes is None
            and args.ttl is None
            and store.max_bytes is None
            and store.ttl_seconds is None
        )
        if no_policy:
            print(
                "no eviction policy: pass --max-bytes and/or --ttl (or set "
                f"{MAX_BYTES_ENV_VAR} / {TTL_ENV_VAR})",
                file=sys.stderr,
            )
            return 2
        result = store.evict(max_bytes=args.max_bytes, ttl_seconds=args.ttl)
        print(
            f"evicted {result.removed} artifact(s) "
            f"({result.reclaimed_bytes / 1024:.1f} KiB) from {store.root}; "
            f"{result.remaining_artifacts} artifact(s) "
            f"({result.remaining_bytes / 1024:.1f} KiB) remain"
        )
        _write_json(
            args.json_path,
            {"command": "cache", "action": "evict", **result.summary()},
        )
        return 0
    summary = store.summary()
    print(f"artifact store at {summary['root']}")
    for kind, info in summary["kinds"].items():
        print(f"  {kind:12s} {info['artifacts']:6d} artifact(s) {info['bytes'] / 1024:10.1f} KiB")
    print(
        f"  {'total':12s} {summary['total_artifacts']:6d} artifact(s) "
        f"{summary['total_bytes'] / 1024:10.1f} KiB"
    )
    _write_json(args.json_path, {"command": "cache", "action": "stats", **summary})
    return 0


# -- repro bench ----------------------------------------------------------------


def _cmd_bench(args: argparse.Namespace) -> int:
    from ..analysis.tables import format_table
    from ..core.bench import compare_to_baseline, load_baseline, run_bench

    result = run_bench(quick=args.quick, seed=args.seed)
    payload = result.as_dict()

    units = {
        "calibration_score": "(machine-speed proxy)",
        "sim_entries_per_sec": "entries/s",
        "sweep_wall_clock_s": "s",
        "per_config_sweep_wall_clock_s": "s",
        "cross_config_speedup": "x",
        "report_assembly_entries_per_sec": "entries/s",
        "sweep_peak_alloc_mb": "MiB",
        "service_jobs_per_sec": "jobs/s",
        "service_job_latency_p50_s": "s",
        "service_job_latency_p95_s": "s",
        "sim_entries_per_calib": "entries/s, calibrated",
        "sweep_wall_clock_calib": "s, calibrated",
    }
    mode = "quick" if args.quick else "full"
    print(
        format_table(
            ["Metric", "Value", "Unit"],
            [
                [name, f"{value:.4g}", units.get(name, "")]
                for name, value in result.metrics.items()
            ],
            title=f"repro bench ({mode} mode)",
        )
    )

    exit_code = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        findings = compare_to_baseline(payload, baseline, tolerance=args.tolerance)
        if findings:
            print(
                f"regression vs {args.baseline} (tolerance {args.tolerance:.0%}):",
                file=sys.stderr,
            )
            for finding in findings:
                print(f"  {finding.describe()}", file=sys.stderr)
            exit_code = 1
        else:
            print(f"no regression vs {args.baseline} (tolerance {args.tolerance:.0%})")
        payload["baseline"] = {
            "path": args.baseline,
            "tolerance": args.tolerance,
            "regressions": [finding.describe() for finding in findings],
        }
    _write_json(args.json_path, payload)
    return exit_code


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from ..devtools.astcheck import (
        render_json,
        render_text,
        rule_catalogue,
        run_checks,
        tracked_python_files,
    )

    if args.list_rules:
        for info in rule_catalogue():
            print(f"{info.id}  {info.name:26s} [{info.severity}] {info.rationale}")
        return 0

    root = Path(args.root).resolve()
    if args.paths:
        files = [Path(path) for path in args.paths]
    else:
        files = tracked_python_files(root)
    try:
        report = run_checks(files, root=root, rules=args.rules or None)
    except ValueError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    exit_code = 0 if report.ok else 1

    if args.typing:
        # mypy is a CI/lint extra, not a runtime dependency; skip gracefully
        # when it is not installed so `repro check --typing` works everywhere.
        import importlib.util
        import subprocess

        if importlib.util.find_spec("mypy") is None:
            print("repro check: mypy not installed; skipping typing gate", file=sys.stderr)
        else:
            outcome = subprocess.run(
                [sys.executable, "-m", "mypy", "--config-file", str(root / "mypy.ini")],
                cwd=root,
            )
            if outcome.returncode != 0:
                exit_code = exit_code or 1
    return exit_code


# -- entry point ----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    from .http import DEFAULT_MAX_REQUEST_BYTES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="SQ-DM fleet evaluation service: sweeps, evaluations and the artifact cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep", help="sweep accelerator knobs over a workload's quantized trace"
    )
    _add_scale_args(sweep)
    _add_common_args(sweep)
    sweep.add_argument(
        "--param",
        dest="params",
        action="append",
        type=_parse_param,
        metavar="NAME=V1,V2",
        help="AcceleratorConfig field and comma-separated values; repeat for a grid "
        "(default: sparsity_threshold=0.1,0.3,0.5)",
    )
    sweep.add_argument("--backend", default=None, help="simulation backend name")
    sweep.add_argument("--max-workers", type=int, default=None)
    sweep.add_argument(
        "--executor",
        default=None,
        metavar="NAME",
        help="execution backend for the sweep spec: one of "
        f"{sorted(executor_names())} or any name registered via "
        "repro.core.execution.register_executor (default: 'service', or "
        "'remote' when --endpoint is given)",
    )
    sweep.add_argument(
        "--endpoint",
        default=None,
        metavar="URL",
        help="submit jobs to a remote `repro serve` server (e.g. http://127.0.0.1:8035) "
        "instead of an in-process service (implies --executor remote)",
    )
    sweep.set_defaults(fn=_cmd_sweep)

    evaluate = sub.add_parser("evaluate", help="run the Fig. 12 hardware evaluation")
    _add_scale_args(evaluate)
    _add_common_args(evaluate)
    evaluate.add_argument(
        "--quality",
        nargs="*",
        default=None,
        metavar="SCHEME",
        help="also FID-evaluate these schemes (e.g. MXINT8 INT4-VSQ MP+ReLU) "
        "on the process pool",
    )
    evaluate.add_argument("--process-workers", type=int, default=None)
    evaluate.add_argument(
        "--executor",
        default="inline",
        metavar="NAME",
        help="execution backend for the hardware-simulation jobs: inline, "
        "thread, process, service (reuses this command's evaluation "
        "service), or a registered third-party name — 'remote' is not "
        "available here since evaluate has no --endpoint (default: "
        "%(default)s)",
    )
    evaluate.set_defaults(fn=_cmd_evaluate)

    serve = sub.add_parser(
        "serve", help="run the evaluation service behind its HTTP front end"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8035, help="0 picks a free port")
    serve.add_argument(
        "--artifact-dir",
        default=os.environ.get(ARTIFACT_DIR_ENV_VAR) or None,
        help="persistent artifact directory shared by all clients "
        f"(default: ${ARTIFACT_DIR_ENV_VAR})",
    )
    serve.add_argument("--max-workers", type=int, default=None)
    serve.add_argument("--process-workers", type=int, default=None)
    serve.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="artifact-store size cap; LRU eviction runs after every write "
        f"(default: ${MAX_BYTES_ENV_VAR})",
    )
    serve.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=f"evict artifacts unused for this long (default: ${TTL_ENV_VAR})",
    )
    serve.add_argument(
        "--max-request-bytes",
        type=int,
        default=DEFAULT_MAX_REQUEST_BYTES,
        help="reject request bodies larger than this with HTTP 413 "
        "(default: %(default)s)",
    )
    serve.add_argument(
        "--log-level",
        default=None,
        choices=["off", "error", "info", "debug"],
        help="structured JSON event log on stderr: access records at info, "
        "job lifecycle and spans at debug (default: $REPRO_LOG, else off)",
    )
    serve.add_argument(
        "--dispatch",
        choices=["pool", "workers"],
        default="pool",
        help="simulation dispatch: 'pool' runs in this server's thread pool; "
        "'workers' queues tasks for pull-based `repro worker` processes with "
        "lease/heartbeat liveness (default: %(default)s)",
    )
    serve.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="with --dispatch workers: how long a claimed task survives "
        "without a heartbeat before it is requeued (default: %(default)s)",
    )
    serve.set_defaults(fn=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="pull-based fleet worker for a `repro serve --dispatch workers` server",
    )
    worker.add_argument(
        "--endpoint",
        required=True,
        metavar="URL",
        help="base URL of the dispatching server",
    )
    worker.add_argument(
        "--name",
        default=None,
        help="fleet-visible identity; re-registering it after a restart "
        "retires the previous incarnation (default: hostname-pid)",
    )
    worker.add_argument(
        "--concurrency",
        type=int,
        default=1,
        help="puller threads / concurrent leases (default: %(default)s)",
    )
    worker.add_argument(
        "--lease-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="requested lease length; the server's answer is authoritative "
        "(default: the server's --lease-seconds)",
    )
    worker.add_argument(
        "--poll-seconds",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="long-poll window per claim request (default: %(default)s)",
    )
    worker.add_argument(
        "--chaos-hold-seconds",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="fault injection for chaos testing: hold each claimed task this "
        "long (heartbeating) before simulating, so a SIGKILL lands mid-lease",
    )
    worker.set_defaults(fn=_cmd_worker)

    top = sub.add_parser(
        "top", help="live dashboard of a running server (/metrics + /jobs)"
    )
    top.add_argument(
        "--endpoint",
        default="http://127.0.0.1:8035",
        metavar="URL",
        help="base URL of the `repro serve` server (default: %(default)s)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default: %(default)s)",
    )
    top.add_argument(
        "--once", action="store_true", help="print one snapshot and exit (for scripts)"
    )
    top.set_defaults(fn=_cmd_top)

    cache = sub.add_parser(
        "cache", help="inspect, wipe, evict from, or migrate the artifact store"
    )
    cache.add_argument("action", choices=["stats", "wipe", "evict", "migrate"])
    cache.add_argument("--kind", default=None, help="restrict wipe to one artifact kind")
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict least-recently-used artifacts until the store fits this many bytes",
    )
    cache.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict artifacts unused for more than this many seconds",
    )
    _add_common_args(cache)
    cache.set_defaults(fn=_cmd_cache)

    bench = sub.add_parser(
        "bench", help="measure simulation/sweep/service throughput and gate regressions"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small fixed workload for CI gates (full mode is the default and "
        "uses a larger grid with more repeats)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="committed BENCH_<n>.json to gate against (exit 1 on regression)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed bad-direction drift on gated metrics (default: %(default)s)",
    )
    bench.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the benchmark payload (BENCH_<n>.json schema) to PATH",
    )
    bench.set_defaults(fn=_cmd_bench)

    check = sub.add_parser(
        "check", help="run the AST invariant linter (REP rules) over the tracked sources"
    )
    check.add_argument(
        "paths",
        nargs="*",
        help="files to check (default: all tracked Python files under src/)",
    )
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.add_argument(
        "--rule",
        dest="rules",
        action="append",
        metavar="REPnnn",
        help="run only this rule (repeatable; default: all rules)",
    )
    check.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    check.add_argument(
        "--root", default=".", help="repository root for file discovery and relative paths"
    )
    check.add_argument(
        "--verbose", action="store_true", help="also list suppressed findings with reasons"
    )
    check.add_argument(
        "--typing",
        action="store_true",
        help="additionally run the strict mypy gate (skipped when mypy is not installed)",
    )
    check.set_defaults(fn=_cmd_check)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
