"""EDM-style U-Net denoiser built on the NumPy layer substrate.

The architecture follows Fig. 2 of the paper: an encoder/decoder U-Net whose
blocks fall into the four categories the paper analyses —

* ``Conv+SiLU`` (or ``Conv+ReLU`` after the SQ-DM swap): the residual
  convolution blocks that dominate compute (>90%) and memory (>85%).
* ``Skip``: the 1x1 convolutions that adapt channel counts on residual and
  encoder-to-decoder skip paths.
* ``Embedding``: the linear layers that inject the noise-level (and label)
  embedding into each block.
* ``Attention``: image self-attention at selected resolutions
  (e.g. ``enc.16x16_block1`` in EDM1 for CIFAR-10).

Blocks are named ``enc.{res}x{res}_block{i}`` / ``dec.{res}x{res}_block{i}``
so that block-wise sensitivity sweeps (Fig. 3) can address them exactly as
the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import functional as F
from .layers import (
    Activation,
    Conv2d,
    Downsample,
    GroupNorm,
    Linear,
    Module,
    SelfAttention2d,
    Upsample,
)

#: Block-type labels used throughout the analysis package.
BLOCK_CONV = "Conv+Act"
BLOCK_SKIP = "Skip"
BLOCK_EMBEDDING = "Embedding"
BLOCK_ATTENTION = "Attention"


@dataclass
class UNetConfig:
    """Configuration of the EDM U-Net denoiser.

    The defaults produce a small model suitable for CPU simulation; the
    paper-scale workloads in :mod:`repro.workloads` scale ``model_channels``
    and ``img_resolution`` up per dataset.
    """

    img_resolution: int = 16
    in_channels: int = 3
    out_channels: int = 3
    model_channels: int = 16
    channel_mult: tuple[int, ...] = (1, 2)
    num_blocks_per_res: int = 1
    attn_resolutions: tuple[int, ...] = (8,)
    emb_dim_mult: int = 4
    activation: str = "silu"
    label_dim: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.img_resolution < 4:
            raise ValueError("img_resolution must be at least 4")
        if self.img_resolution % (2 ** (len(self.channel_mult) - 1)) != 0:
            raise ValueError(
                "img_resolution must be divisible by 2^(len(channel_mult)-1) "
                f"(got {self.img_resolution} with {len(self.channel_mult)} levels)"
            )
        if self.activation not in ("silu", "relu"):
            raise ValueError(f"activation must be 'silu' or 'relu', got {self.activation!r}")

    @property
    def emb_dim(self) -> int:
        return self.model_channels * self.emb_dim_mult

    @property
    def resolutions(self) -> list[int]:
        return [self.img_resolution // (2**level) for level in range(len(self.channel_mult))]


class UNetBlock(Module):
    """One residual block: GN → act → conv → (+emb) → GN → act → conv (+skip).

    Matches the structure of EDM's ``UNetBlock``: two 3x3 convolutions with a
    noise-embedding injection between them, a 1x1 skip convolution when the
    channel count changes, and optional image self-attention.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        emb_dim: int,
        activation: str,
        use_attention: bool,
        name: str,
        rng: np.random.Generator,
    ):
        super().__init__(name=name)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.use_attention = use_attention

        self.norm0 = GroupNorm(in_channels, name="norm0")
        self.act0 = Activation(activation, name="act0")
        self.conv0 = Conv2d(in_channels, out_channels, kernel_size=3, name="conv0", rng=rng)
        self.emb_linear = Linear(emb_dim, out_channels, name="emb_linear", rng=rng)
        self.norm1 = GroupNorm(out_channels, name="norm1")
        self.act1 = Activation(activation, name="act1")
        self.conv1 = Conv2d(out_channels, out_channels, kernel_size=3, name="conv1", rng=rng)
        self.skip_conv = (
            Conv2d(in_channels, out_channels, kernel_size=1, padding=0, name="skip_conv", rng=rng)
            if in_channels != out_channels
            else None
        )
        self.attention = (
            SelfAttention2d(out_channels, name="attention", rng=rng) if use_attention else None
        )

    def forward(self, x: np.ndarray, emb: np.ndarray) -> np.ndarray:
        h = self.conv0(self.act0(self.norm0(x)))
        emb_out = self.emb_linear(emb)
        h = h + emb_out[:, :, None, None]
        h = self.conv1(self.act1(self.norm1(h)))
        skip = x if self.skip_conv is None else self.skip_conv(x)
        out = (h + skip) / np.sqrt(2.0)
        if self.attention is not None:
            out = self.attention(out)
        return self._record(out)

    def set_activation(self, kind: str) -> None:
        """Swap the non-linearity of this block (SiLU → ReLU for SQ-DM)."""
        self.act0.kind = kind
        self.act1.kind = kind

    def conv_layers(self) -> list[Conv2d]:
        """The Conv+Act convolutions (quantized to 4-bit in the SQ-DM policy)."""
        return [self.conv0, self.conv1]

    def component_costs(
        self, spatial: tuple[int, int], batch: int = 1
    ) -> dict[str, dict[str, float]]:
        """MAC and parameter/activation element counts by component category."""
        height, width = spatial
        costs: dict[str, dict[str, float]] = {}
        conv_macs = (self.conv0.macs(spatial) + self.conv1.macs(spatial)) * batch
        conv_params = self.conv0.weight.size + self.conv1.weight.size
        conv_acts = batch * (self.in_channels + 2 * self.out_channels) * height * width
        costs[BLOCK_CONV] = {
            "macs": float(conv_macs),
            "params": float(conv_params),
            "acts": float(conv_acts),
        }

        emb_macs = self.emb_linear.macs(batch)
        costs[BLOCK_EMBEDDING] = {
            "macs": float(emb_macs),
            "params": float(self.emb_linear.weight.size),
            "acts": float(batch * self.emb_linear.out_features),
        }

        if self.skip_conv is not None:
            costs[BLOCK_SKIP] = {
                "macs": float(self.skip_conv.macs(spatial) * batch),
                "params": float(self.skip_conv.weight.size),
                "acts": float(batch * self.out_channels * height * width),
            }
        else:
            costs[BLOCK_SKIP] = {
                "macs": 0.0,
                "params": 0.0,
                "acts": float(batch * self.out_channels * height * width),
            }

        if self.attention is not None:
            costs[BLOCK_ATTENTION] = {
                "macs": float(self.attention.macs(spatial) * batch),
                "params": float(self.attention.qkv.weight.size + self.attention.proj.weight.size),
                "acts": float(batch * 4 * self.out_channels * height * width),
            }
        else:
            costs[BLOCK_ATTENTION] = {"macs": 0.0, "params": 0.0, "acts": 0.0}
        return costs


@dataclass
class BlockInfo:
    """Description of one named U-Net block, used by analysis and policies."""

    name: str
    block: UNetBlock
    resolution: int
    stage: str  # "enc" or "dec"
    index: int
    order: int  # position in forward execution order
    spatial: tuple[int, int] = field(default=(0, 0))


class EDMUNet(Module):
    """The full encoder/decoder U-Net used as the EDM denoiser backbone."""

    def __init__(self, config: UNetConfig):
        super().__init__(name="unet")
        self.config = config
        rng = np.random.default_rng(config.seed)
        cm = config.model_channels

        # Noise-level embedding MLP (the "Embedding" block category).
        self.emb_linear0 = Linear(cm, config.emb_dim, name="emb_linear0", rng=rng)
        self.emb_act = Activation(config.activation, name="emb_act")
        self.emb_linear1 = Linear(config.emb_dim, config.emb_dim, name="emb_linear1", rng=rng)
        self.label_linear = (
            Linear(config.label_dim, config.emb_dim, name="label_linear", rng=rng)
            if config.label_dim > 0
            else None
        )

        self.conv_in = Conv2d(config.in_channels, cm, kernel_size=3, name="conv_in", rng=rng)

        # Encoder.
        self.enc_blocks: list[UNetBlock] = []
        self.downsamples: list[Downsample] = []
        self._block_infos: list[BlockInfo] = []
        order = 0
        channels = cm
        skip_channels: list[int] = [cm]
        for level, mult in enumerate(config.channel_mult):
            resolution = config.resolutions[level]
            out_ch = cm * mult
            for i in range(config.num_blocks_per_res):
                name = f"enc.{resolution}x{resolution}_block{i}"
                block = UNetBlock(
                    channels,
                    out_ch,
                    config.emb_dim,
                    config.activation,
                    use_attention=resolution in config.attn_resolutions,
                    name=name,
                    rng=rng,
                )
                self.enc_blocks.append(block)
                self._block_infos.append(
                    BlockInfo(
                        name=name,
                        block=block,
                        resolution=resolution,
                        stage="enc",
                        index=i,
                        order=order,
                    )
                )
                order += 1
                channels = out_ch
                skip_channels.append(out_ch)
            if level < len(config.channel_mult) - 1:
                self.downsamples.append(Downsample(name=f"down_{resolution}"))

        # Decoder (mirrors the encoder, consuming skip connections).
        self.dec_blocks: list[UNetBlock] = []
        self.upsamples: list[Upsample] = []
        for level in reversed(range(len(config.channel_mult))):
            resolution = config.resolutions[level]
            out_ch = cm * config.channel_mult[level]
            for i in range(config.num_blocks_per_res):
                skip_ch = skip_channels.pop()
                name = f"dec.{resolution}x{resolution}_block{i}"
                block = UNetBlock(
                    channels + skip_ch,
                    out_ch,
                    config.emb_dim,
                    config.activation,
                    use_attention=resolution in config.attn_resolutions,
                    name=name,
                    rng=rng,
                )
                self.dec_blocks.append(block)
                self._block_infos.append(
                    BlockInfo(
                        name=name,
                        block=block,
                        resolution=resolution,
                        stage="dec",
                        index=i,
                        order=order,
                    )
                )
                order += 1
                channels = out_ch
            if level > 0:
                self.upsamples.append(Upsample(name=f"up_{resolution}"))

        self.norm_out = GroupNorm(channels, name="norm_out")
        self.act_out = Activation(config.activation, name="act_out")
        self.conv_out = Conv2d(
            channels, config.out_channels, kernel_size=3, name="conv_out", rng=rng
        )

        self._annotate_spatial()

    # -- structure ----------------------------------------------------------

    def _annotate_spatial(self) -> None:
        for info in self._block_infos:
            info.spatial = (info.resolution, info.resolution)

    def block_infos(self) -> list[BlockInfo]:
        """All named U-Net blocks in execution order."""
        return list(self._block_infos)

    def block_names(self) -> list[str]:
        return [info.name for info in self._block_infos]

    def get_block(self, name: str) -> UNetBlock:
        for info in self._block_infos:
            if info.name == name:
                return info.block
        raise KeyError(f"unknown block {name!r}; available: {self.block_names()}")

    def set_activation(self, kind: str) -> None:
        """Swap every non-linearity in the model (SiLU ↔ ReLU)."""
        self.config.activation = kind
        self.emb_act.kind = kind
        self.act_out.kind = kind
        for info in self._block_infos:
            info.block.set_activation(kind)

    def embedding_layers(self) -> list[Linear]:
        """All Embedding-category linear layers in the model."""
        layers = [self.emb_linear0, self.emb_linear1]
        if self.label_linear is not None:
            layers.append(self.label_linear)
        layers.extend(info.block.emb_linear for info in self._block_infos)
        return layers

    def skip_layers(self) -> list[Conv2d]:
        """All Skip-category 1x1 convolutions (plus the in/out stem convs)."""
        layers = [self.conv_in, self.conv_out]
        layers.extend(
            info.block.skip_conv for info in self._block_infos if info.block.skip_conv is not None
        )
        return layers

    def attention_modules(self) -> list[SelfAttention2d]:
        return [
            info.block.attention for info in self._block_infos if info.block.attention is not None
        ]

    # -- execution ----------------------------------------------------------

    def compute_embedding(
        self, noise_cond: np.ndarray, labels: np.ndarray | None = None
    ) -> np.ndarray:
        """Noise-level (and optional class-label) embedding vector."""
        emb = F.positional_embedding(noise_cond, self.config.model_channels)
        emb = self.emb_linear0(emb)
        if self.label_linear is not None and labels is not None:
            emb = emb + self.label_linear(labels)
        emb = self.emb_act(emb)
        emb = self.emb_linear1(emb)
        return emb

    def forward(
        self, x: np.ndarray, noise_cond: np.ndarray, labels: np.ndarray | None = None
    ) -> np.ndarray:
        """Predict the denoised signal component F_theta(x; sigma).

        ``noise_cond`` is the (already preconditioned) noise-level input
        ``c_noise(sigma)`` with one entry per batch element.
        """
        emb = self.compute_embedding(noise_cond, labels)

        h = self.conv_in(x)
        skips = [h]
        enc_iter = iter(self.enc_blocks)
        down_iter = iter(self.downsamples)
        for level in range(len(self.config.channel_mult)):
            for _ in range(self.config.num_blocks_per_res):
                h = next(enc_iter)(h, emb)
                skips.append(h)
            if level < len(self.config.channel_mult) - 1:
                h = next(down_iter)(h)

        dec_iter = iter(self.dec_blocks)
        up_iter = iter(self.upsamples)
        for level in reversed(range(len(self.config.channel_mult))):
            for _ in range(self.config.num_blocks_per_res):
                skip = skips.pop()
                if skip.shape[2] != h.shape[2]:
                    skip = (
                        F.downsample2x(skip) if skip.shape[2] > h.shape[2] else F.upsample2x(skip)
                    )
                h = next(dec_iter)(np.concatenate([h, skip], axis=1), emb)
            if level > 0:
                h = next(up_iter)(h)

        out = self.conv_out(self.act_out(self.norm_out(h)))
        return self._record(out)

    # -- cost model ---------------------------------------------------------

    def cost_breakdown(self, batch: int = 1) -> dict[str, dict[str, float]]:
        """Aggregate MAC / parameter / activation counts per block category.

        This backs the Fig. 4 computation and memory breakdown: Conv+Act
        dominates both because every block contributes two full 3x3
        convolutions at its resolution.
        """
        totals = {
            cat: {"macs": 0.0, "params": 0.0, "acts": 0.0}
            for cat in (BLOCK_CONV, BLOCK_SKIP, BLOCK_EMBEDDING, BLOCK_ATTENTION)
        }
        for info in self._block_infos:
            costs = info.block.component_costs(info.spatial, batch=batch)
            for cat, vals in costs.items():
                for key, value in vals.items():
                    totals[cat][key] += value

        # Stem convolutions and the embedding MLP count toward Skip/Embedding.
        res = self.config.img_resolution
        totals[BLOCK_SKIP]["macs"] += batch * (
            self.conv_in.macs((res, res)) + self.conv_out.macs((res, res))
        )
        totals[BLOCK_SKIP]["params"] += self.conv_in.weight.size + self.conv_out.weight.size
        totals[BLOCK_SKIP]["acts"] += (
            batch * (self.config.model_channels + self.config.out_channels) * res * res
        )
        for layer in (self.emb_linear0, self.emb_linear1):
            totals[BLOCK_EMBEDDING]["macs"] += batch * layer.macs(1)
            totals[BLOCK_EMBEDDING]["params"] += layer.weight.size
            totals[BLOCK_EMBEDDING]["acts"] += batch * layer.out_features
        return totals

    def total_macs(self, batch: int = 1) -> float:
        return sum(cat["macs"] for cat in self.cost_breakdown(batch=batch).values())
