"""NumPy DNN substrate: functional ops, layer modules and the EDM U-Net."""

from . import functional
from .layers import (
    Activation,
    Conv2d,
    Downsample,
    GroupNorm,
    Linear,
    Module,
    SelfAttention2d,
    Sequential,
    Upsample,
)
from .unet import (
    BLOCK_ATTENTION,
    BLOCK_CONV,
    BLOCK_EMBEDDING,
    BLOCK_SKIP,
    BlockInfo,
    EDMUNet,
    UNetBlock,
    UNetConfig,
)

__all__ = [
    "BLOCK_ATTENTION",
    "BLOCK_CONV",
    "BLOCK_EMBEDDING",
    "BLOCK_SKIP",
    "Activation",
    "BlockInfo",
    "Conv2d",
    "Downsample",
    "EDMUNet",
    "GroupNorm",
    "Linear",
    "Module",
    "SelfAttention2d",
    "Sequential",
    "UNetBlock",
    "UNetConfig",
    "Upsample",
    "functional",
]
