"""Functional neural-network operations on NumPy arrays.

These are the numerical primitives behind the EDM U-Net substrate:
2-D convolution (via im2col + matmul), linear layers, group normalization,
the SiLU and ReLU non-linearities central to the paper's co-design, softmax
attention, and nearest-neighbour up/down-sampling.

Tensors follow the NCHW layout: ``(batch, channels, height, width)``.
"""

from __future__ import annotations

import numpy as np


# ---------------------------------------------------------------------------
# Non-linearities
# ---------------------------------------------------------------------------

def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU(x) = x * sigmoid(x).

    The paper (Sec. III-B) notes its output distribution spans
    [-0.278..., inf), which forces signed activation formats and wastes
    quantization levels.
    """
    x = np.asarray(x, dtype=np.float64)
    return x * sigmoid(x)


def relu(x: np.ndarray) -> np.ndarray:
    """ReLU(x) = max(x, 0); the hardware-efficient replacement for SiLU."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


SILU_MIN = float(np.min(silu(np.linspace(-10, 0, 20001))))
"""Minimum value of SiLU, approximately -0.278 (quoted in the paper)."""


def activation_fn(name: str):
    """Look up an activation function by name (``"silu"``, ``"relu"``, ``"none"``)."""
    table = {"silu": silu, "relu": relu, "none": lambda x: np.asarray(x, dtype=np.float64)}
    try:
        return table[name]
    except KeyError as exc:
        raise ValueError(f"unknown activation {name!r}; expected one of {sorted(table)}") from exc


# ---------------------------------------------------------------------------
# Convolution via im2col
# ---------------------------------------------------------------------------

def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1, padding: int = 0
) -> tuple[np.ndarray, int, int]:
    """Unfold NCHW input into columns for matmul-based convolution.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(batch, channels * kernel_h * kernel_w, out_h * out_w)``.
    """
    x = np.asarray(x, dtype=np.float64)
    batch, channels, height, width = x.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")
    padded_h, padded_w = x.shape[2], x.shape[3]
    out_h = (padded_h - kernel_h) // stride + 1
    out_w = (padded_w - kernel_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty: input {height}x{width}, "
            f"kernel {kernel_h}x{kernel_w}, stride {stride}, padding {padding}"
        )

    # Gather all kernel offsets with strided slicing; loop is over the small
    # kernel footprint only, so this stays fast for realistic layer sizes.
    cols = np.empty((batch, channels, kernel_h, kernel_w, out_h, out_w), dtype=np.float64)
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(batch, channels * kernel_h * kernel_w, out_h * out_w), out_h, out_w


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2-D convolution in NCHW layout.

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_channels, height, width)``.
    weight:
        Kernel of shape ``(out_channels, in_channels, kernel_h, kernel_w)``.
    bias:
        Optional per-output-channel bias of shape ``(out_channels,)``.
    """
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    batch = x.shape[0]
    out_channels, in_channels, kernel_h, kernel_w = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(f"input has {x.shape[1]} channels, weight expects {in_channels}")

    cols, out_h, out_w = im2col(x, kernel_h, kernel_w, stride=stride, padding=padding)
    w_mat = weight.reshape(out_channels, -1)
    out = np.einsum("ok,bkp->bop", w_mat, cols, optimize=True)
    out = out.reshape(batch, out_channels, out_h, out_w)
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float64).reshape(1, -1, 1, 1)
    return out


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map ``x @ weight.T + bias`` with weight shape (out, in)."""
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    out = x @ weight.T
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float64)
    return out


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------

def group_norm(
    x: np.ndarray,
    num_groups: int,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Group normalization over NCHW input.

    Channels are partitioned into ``num_groups`` groups and normalized to
    zero mean / unit variance within each (batch, group) slice.
    """
    x = np.asarray(x, dtype=np.float64)
    batch, channels, height, width = x.shape
    if channels % num_groups != 0:
        raise ValueError(f"{channels} channels not divisible into {num_groups} groups")
    grouped = x.reshape(batch, num_groups, channels // num_groups, height, width)
    mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
    var = grouped.var(axis=(2, 3, 4), keepdims=True)
    normed = (grouped - mean) / np.sqrt(var + eps)
    out = normed.reshape(batch, channels, height, width)
    if gamma is not None:
        out = out * np.asarray(gamma, dtype=np.float64).reshape(1, -1, 1, 1)
    if beta is not None:
        out = out + np.asarray(beta, dtype=np.float64).reshape(1, -1, 1, 1)
    return out


# ---------------------------------------------------------------------------
# Attention
# ---------------------------------------------------------------------------

def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def scaled_dot_product_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Standard attention: softmax(QK^T / sqrt(d)) V.

    Inputs have shape ``(batch, heads, tokens, head_dim)``.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    scale = 1.0 / np.sqrt(q.shape[-1])
    scores = np.einsum("bhqd,bhkd->bhqk", q, k, optimize=True) * scale
    weights = softmax(scores, axis=-1)
    return np.einsum("bhqk,bhkd->bhqd", weights, v, optimize=True)


# ---------------------------------------------------------------------------
# Resampling
# ---------------------------------------------------------------------------

def downsample2x(x: np.ndarray) -> np.ndarray:
    """2x spatial downsampling by average pooling (EDM encoder path)."""
    x = np.asarray(x, dtype=np.float64)
    batch, channels, height, width = x.shape
    if height % 2 or width % 2:
        raise ValueError(f"spatial dims must be even for 2x downsampling, got {height}x{width}")
    return x.reshape(batch, channels, height // 2, 2, width // 2, 2).mean(axis=(3, 5))


def upsample2x(x: np.ndarray) -> np.ndarray:
    """2x spatial upsampling by nearest-neighbour replication (decoder path)."""
    x = np.asarray(x, dtype=np.float64)
    return np.repeat(np.repeat(x, 2, axis=2), 2, axis=3)


# ---------------------------------------------------------------------------
# Embeddings
# ---------------------------------------------------------------------------

def positional_embedding(values: np.ndarray, dim: int, max_period: float = 10000.0) -> np.ndarray:
    """Sinusoidal embedding of scalar conditioning values (noise levels).

    Returns shape ``(len(values), dim)``; used by the EDM noise-level
    embedding MLP.
    """
    values = np.atleast_1d(np.asarray(values, dtype=np.float64))
    half = dim // 2
    freqs = np.exp(-np.log(max_period) * np.arange(half, dtype=np.float64) / max(half, 1))
    angles = values[:, None] * freqs[None, :]
    emb = np.concatenate([np.cos(angles), np.sin(angles)], axis=1)
    if emb.shape[1] < dim:
        emb = np.pad(emb, ((0, 0), (0, dim - emb.shape[1])), mode="constant")
    return emb
