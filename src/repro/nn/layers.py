"""Layer modules for the NumPy DNN substrate.

A small module system in the spirit of ``torch.nn`` but built on NumPy:
modules own their parameters as NumPy arrays, expose a ``forward`` method,
can be traversed via ``named_modules``, and support two cross-cutting
concerns required by the SQ-DM study:

* **Quantization** -- ``Conv2d`` and ``Linear`` accept weight/activation
  :class:`~repro.quant.formats.QuantFormatSpec` objects and inject the
  corresponding fake-quantization error in their forward pass.
* **Instrumentation** -- when recording is enabled, layers capture their
  output activations so the analysis package can study distributions
  (Fig. 5/6) and temporal per-channel sparsity (Fig. 7).
"""

from __future__ import annotations

import numpy as np

from ..quant.dispatch import apply_activation_format, apply_weight_format
from ..quant.formats import QuantFormatSpec
from . import functional as F


class Module:
    """Base class for all layers.

    Subclasses set parameters as attributes and implement ``forward``.
    Child modules registered as attributes are discovered automatically by
    ``named_modules``/``children``.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.recording = False
        self.last_output: np.ndarray | None = None

    # -- traversal ----------------------------------------------------------

    def children(self) -> list["Module"]:
        """Direct child modules, in attribute definition order."""
        found: list[Module] = []
        for value in self.__dict__.values():
            if isinstance(value, Module):
                found.append(value)
            elif isinstance(value, (list, tuple)):
                found.extend(v for v in value if isinstance(v, Module))
        return found

    def named_modules(self, prefix: str = "") -> list[tuple[str, "Module"]]:
        """All descendant modules as (dotted_name, module) pairs, self included."""
        own_name = prefix or self.name or type(self).__name__
        result = [(own_name, self)]
        for child in self.children():
            child_prefix = f"{own_name}.{child.name or type(child).__name__}"
            result.extend(child.named_modules(prefix=child_prefix))
        return result

    def parameters(self) -> dict[str, np.ndarray]:
        """Flat dict of all parameters keyed by dotted names."""
        params: dict[str, np.ndarray] = {}
        for mod_name, module in self.named_modules():
            for key, value in module.__dict__.items():
                if isinstance(value, np.ndarray) and key not in ("last_output",):
                    params[f"{mod_name}.{key}"] = value
        return params

    def parameter_count(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return int(sum(p.size for p in self.parameters().values()))

    # -- instrumentation ----------------------------------------------------

    def set_recording(self, enabled: bool) -> None:
        """Enable or disable output capture for this module and all children."""
        for _, module in self.named_modules():
            module.recording = enabled
            if not enabled:
                module.last_output = None

    def _record(self, out: np.ndarray) -> np.ndarray:
        if self.recording:
            self.last_output = np.array(out, copy=True)
        return out

    # -- execution ----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> np.ndarray:
        return self.forward(*args, **kwargs)


class Conv2d(Module):
    """2-D convolution with optional weight/activation fake quantization.

    The activation spec quantizes the *input* of the convolution along the
    input-channel axis (the matmul reduction dimension), matching how a
    vector-MAC accelerator consumes per-vector scaled operands.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int | None = None,
        bias: bool = True,
        name: str = "",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(name=name)
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = rng.normal(
            0.0, 1.0 / np.sqrt(fan_in), (out_channels, in_channels, kernel_size, kernel_size)
        )
        self.bias = np.zeros(out_channels) if bias else None
        self.weight_spec: QuantFormatSpec | None = None
        self.act_spec: QuantFormatSpec | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        weight = self.weight
        if self.weight_spec is not None:
            weight = apply_weight_format(weight, self.weight_spec, out_channel_axis=0)
        if self.act_spec is not None:
            x = apply_activation_format(x, self.act_spec, channel_axis=1)
        out = F.conv2d(x, weight, self.bias, stride=self.stride, padding=self.padding)
        return self._record(out)

    def macs(self, spatial: tuple[int, int]) -> int:
        """Multiply-accumulate count for one forward pass at the given output spatial size."""
        out_h, out_w = spatial
        return int(
            self.out_channels
            * self.in_channels
            * self.kernel_size
            * self.kernel_size
            * out_h
            * out_w
        )


class Linear(Module):
    """Affine layer with optional weight/activation fake quantization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        name: str = "",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(name=name)
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = rng.normal(0.0, 1.0 / np.sqrt(in_features), (out_features, in_features))
        self.bias = np.zeros(out_features) if bias else None
        self.weight_spec: QuantFormatSpec | None = None
        self.act_spec: QuantFormatSpec | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        weight = self.weight
        if self.weight_spec is not None:
            weight = apply_weight_format(weight, self.weight_spec, out_channel_axis=0)
        if self.act_spec is not None:
            x = apply_activation_format(x, self.act_spec, channel_axis=x.ndim - 1)
        out = F.linear(x, weight, self.bias)
        return self._record(out)

    def macs(self, batch_tokens: int = 1) -> int:
        """MAC count for ``batch_tokens`` input rows."""
        return int(batch_tokens * self.in_features * self.out_features)


class GroupNorm(Module):
    """Group normalization with learnable per-channel scale and shift."""

    def __init__(self, num_channels: int, num_groups: int = 8, name: str = ""):
        super().__init__(name=name)
        num_groups = min(num_groups, num_channels)
        while num_channels % num_groups != 0:
            num_groups -= 1
        self.num_groups = max(num_groups, 1)
        self.num_channels = num_channels
        self.gamma = np.ones(num_channels)
        self.beta = np.zeros(num_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.group_norm(x, self.num_groups, self.gamma, self.beta)
        return self._record(out)


class Activation(Module):
    """SiLU or ReLU non-linearity; the swap between them is the heart of SQ-DM."""

    def __init__(self, kind: str = "silu", name: str = ""):
        super().__init__(name=name)
        if kind not in ("silu", "relu", "none"):
            raise ValueError(f"unsupported activation kind: {kind!r}")
        self.kind = kind

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.activation_fn(self.kind)(x)
        return self._record(out)


class Downsample(Module):
    """2x average-pool downsampling used on the encoder path."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._record(F.downsample2x(x))


class Upsample(Module):
    """2x nearest-neighbour upsampling used on the decoder path."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._record(F.upsample2x(x))


class SelfAttention2d(Module):
    """Single-head image self-attention over spatial positions (EDM attention block)."""

    def __init__(
        self,
        channels: int,
        num_heads: int = 1,
        name: str = "",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(name=name)
        rng = rng or np.random.default_rng(0)
        if channels % num_heads != 0:
            raise ValueError(f"{channels} channels not divisible by {num_heads} heads")
        self.channels = channels
        self.num_heads = num_heads
        self.norm = GroupNorm(channels, name="norm")
        self.qkv = Conv2d(channels, channels * 3, kernel_size=1, padding=0, name="qkv", rng=rng)
        self.proj = Conv2d(channels, channels, kernel_size=1, padding=0, name="proj", rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        h = self.norm(x)
        qkv = self.qkv(h)
        tokens = height * width
        head_dim = channels // self.num_heads
        qkv = qkv.reshape(batch, 3, self.num_heads, head_dim, tokens)
        q = np.moveaxis(qkv[:, 0], -1, -2)
        k = np.moveaxis(qkv[:, 1], -1, -2)
        v = np.moveaxis(qkv[:, 2], -1, -2)
        attn = F.scaled_dot_product_attention(q, k, v)
        attn = np.moveaxis(attn, -2, -1).reshape(batch, channels, height, width)
        out = x + self.proj(attn)
        return self._record(out)

    def macs(self, spatial: tuple[int, int]) -> int:
        """Approximate MAC count: qkv/proj convs plus the two attention matmuls."""
        height, width = spatial
        tokens = height * width
        conv_macs = self.qkv.macs(spatial) + self.proj.macs(spatial)
        attn_macs = 2 * tokens * tokens * self.channels
        return int(conv_macs + attn_macs)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, modules: list[Module], name: str = ""):
        super().__init__(name=name)
        self.modules_list = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules_list:
            x = module(x)
        return self._record(x)
