"""Quantization format substrate for the SQ-DM reproduction.

Public surface:

* :mod:`repro.quant.formats` -- format descriptors (INT4, UINT4, INT8, MXINT8,
  INT4-VSQ, INT4+FP8-scale, FP16, FP32).
* :mod:`repro.quant.uniform` -- uniform symmetric quantization at per-tensor,
  per-channel and per-vector granularity.
* :mod:`repro.quant.blockscale` -- MX-style block-scaled formats (MXINT8).
* :mod:`repro.quant.vsq` -- VS-Quant per-vector scaling and the paper's
  INT4/UINT4 + FP8-scale formats.
* :mod:`repro.quant.dispatch` -- apply any format spec to a tensor.
* :mod:`repro.quant.metrics` -- quantization error and sparsity metrics.
"""

from .blockscale import (
    BlockScaleConfig,
    blockscale_storage_bits,
    fake_quantize_blockscale,
    mxint8_fake_quantize,
    quantize_blockscale,
)
from .dispatch import apply_format, quantize_along_channels
from .formats import (
    FP8_E4M3,
    FP8_E5M2,
    FP16,
    FP32,
    INT4,
    INT8,
    TABLE1_FORMATS,
    UINT4,
    UINT8,
    FloatFormat,
    IntegerFormat,
    QuantFormatSpec,
    ScaleFormat,
    ScaleGranularity,
    fp16_spec,
    fp32_spec,
    get_format,
    int4_fp8_spec,
    int4_spec,
    int4_vsq_spec,
    int8_spec,
    mxint8_spec,
    uint4_fp8_spec,
)
from .fp8 import quantize_scales, round_to_fp8_e4m3, round_to_fp8_e5m2, round_to_fp16
from .metrics import (
    cosine_similarity,
    max_abs_error,
    mse,
    per_channel_sparsity,
    rmse,
    sparsity,
    sqnr_db,
)
from .uniform import (
    QuantizedTensor,
    compute_scale,
    dequantize,
    fake_quantize,
    quantize,
    used_levels,
)
from .vsq import (
    VSQConfig,
    fake_quantize_vsq,
    int4_fp8_config,
    int4_vsq_config,
    quantize_vsq,
    uint4_fp8_config,
    vsq_storage_bits,
)

__all__ = [
    "FP8_E4M3",
    "FP8_E5M2",
    "FP16",
    "FP32",
    "INT4",
    "INT8",
    "TABLE1_FORMATS",
    "UINT4",
    "UINT8",
    "BlockScaleConfig",
    "FloatFormat",
    "IntegerFormat",
    "QuantFormatSpec",
    "QuantizedTensor",
    "ScaleFormat",
    "ScaleGranularity",
    "VSQConfig",
    "apply_format",
    "blockscale_storage_bits",
    "compute_scale",
    "cosine_similarity",
    "dequantize",
    "fake_quantize",
    "fake_quantize_blockscale",
    "fake_quantize_vsq",
    "fp16_spec",
    "fp32_spec",
    "get_format",
    "int4_fp8_config",
    "int4_fp8_spec",
    "int4_spec",
    "int4_vsq_config",
    "int4_vsq_spec",
    "int8_spec",
    "max_abs_error",
    "mse",
    "mxint8_fake_quantize",
    "mxint8_spec",
    "per_channel_sparsity",
    "quantize",
    "quantize_along_channels",
    "quantize_blockscale",
    "quantize_scales",
    "quantize_vsq",
    "rmse",
    "round_to_fp16",
    "round_to_fp8_e4m3",
    "round_to_fp8_e5m2",
    "sparsity",
    "sqnr_db",
    "uint4_fp8_config",
    "uint4_fp8_spec",
    "used_levels",
    "vsq_storage_bits",
]
