"""Numeric data format descriptors used throughout SQ-DM.

The paper evaluates a family of integer and floating-point formats for
weights and activations of diffusion models (Table I / Table II):

* ``FP32`` / ``FP16`` -- the unquantized baselines.
* ``INT8`` / ``INT4`` -- signed integers with coarse (per-channel) scale factors.
* ``UINT4`` -- unsigned 4-bit integers, usable after ReLU because the
  activation range becomes non-negative (Fig. 6).
* ``MXINT8`` -- 8-bit integers with fine-grained per-block shared scales
  (microscaling, Rouhani et al. 2023).
* ``INT4-VSQ`` -- 4-bit integers with per-vector scale factors (VS-Quant,
  Dai et al. 2021).
* ``INT4 + FP8 scale`` -- the paper's own 4-bit format: per-vector scale
  factors stored in FP8 (E4M3) to improve dynamic range (Sec. III-A).

This module defines lightweight descriptors for these formats.  The actual
quantization arithmetic lives in :mod:`repro.quant.uniform`,
:mod:`repro.quant.blockscale` and :mod:`repro.quant.vsq`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ScaleGranularity(Enum):
    """Granularity at which the quantization scale factor is computed.

    The paper's Section II-A: "The max operator can be taken at different
    granularity of X, such as over the entire tensor, across each channel,
    or for each vector."
    """

    PER_TENSOR = "per_tensor"
    PER_CHANNEL = "per_channel"
    PER_VECTOR = "per_vector"
    PER_BLOCK = "per_block"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ScaleFormat(Enum):
    """Numeric format in which scale factors themselves are stored."""

    FP32 = "fp32"
    FP16 = "fp16"
    FP8_E4M3 = "fp8_e4m3"
    POW2 = "pow2"  # power-of-two (shared exponent), used by MX formats

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class IntegerFormat:
    """A signed or unsigned integer container format.

    Parameters
    ----------
    bits:
        Total bit width of each element.
    signed:
        Whether the representation is two's-complement signed.
    """

    bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 32:
            raise ValueError(f"unsupported integer bit width: {self.bits}")

    @property
    def qmin(self) -> int:
        """Smallest representable quantized integer."""
        if self.signed:
            return -(2 ** (self.bits - 1)) + 1  # symmetric: drop the extra negative code
        return 0

    @property
    def qmax(self) -> int:
        """Largest representable quantized integer."""
        if self.signed:
            return 2 ** (self.bits - 1) - 1
        return 2**self.bits - 1

    @property
    def num_levels(self) -> int:
        """Number of representable quantization levels (symmetric signed)."""
        return self.qmax - self.qmin + 1

    @property
    def name(self) -> str:
        prefix = "INT" if self.signed else "UINT"
        return f"{prefix}{self.bits}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FloatFormat:
    """A floating-point container format described by exponent/mantissa bits."""

    exponent_bits: int
    mantissa_bits: int
    name: str

    @property
    def bits(self) -> int:
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude (IEEE-like, E4M3 style)."""
        bias = 2 ** (self.exponent_bits - 1) - 1
        max_exp = 2**self.exponent_bits - 2 - bias
        mantissa_max = 2.0 - 2.0 ** (-self.mantissa_bits)
        if self.name == "FP8_E4M3":
            # E4M3 (OCP variant) reclaims the NaN row: max is 448.
            return 448.0
        return mantissa_max * (2.0**max_exp)

    @property
    def min_normal(self) -> float:
        bias = 2 ** (self.exponent_bits - 1) - 1
        return 2.0 ** (1 - bias)

    def __str__(self) -> str:
        return self.name


# Canonical container formats -------------------------------------------------

INT8 = IntegerFormat(bits=8, signed=True)
INT4 = IntegerFormat(bits=4, signed=True)
UINT4 = IntegerFormat(bits=4, signed=False)
UINT8 = IntegerFormat(bits=8, signed=False)

FP32 = FloatFormat(exponent_bits=8, mantissa_bits=23, name="FP32")
FP16 = FloatFormat(exponent_bits=5, mantissa_bits=10, name="FP16")
FP8_E4M3 = FloatFormat(exponent_bits=4, mantissa_bits=3, name="FP8_E4M3")
FP8_E5M2 = FloatFormat(exponent_bits=5, mantissa_bits=2, name="FP8_E5M2")


@dataclass(frozen=True)
class QuantFormatSpec:
    """Complete specification of a quantization format for a tensor.

    Combines the element container, the scale granularity, the block size
    for fine-grained scaling, and the numeric format of the scale factors.
    A ``QuantFormatSpec`` with ``element=None`` denotes an unquantized
    (floating-point) tensor and is used for the FP32/FP16 baselines.
    """

    name: str
    element: IntegerFormat | None
    granularity: ScaleGranularity = ScaleGranularity.PER_CHANNEL
    block_size: int = 0
    scale_format: ScaleFormat = ScaleFormat.FP32
    storage_bits: float = 32.0

    @property
    def is_quantized(self) -> bool:
        return self.element is not None

    @property
    def element_bits(self) -> int:
        if self.element is None:
            return int(self.storage_bits)
        return self.element.bits

    def bits_per_value(self) -> float:
        """Average storage bits per tensor element, including scale overhead.

        Fine-grained formats amortize the scale factor over ``block_size``
        elements; coarse-grained formats amortize it over an entire channel,
        which we approximate as negligible overhead.
        """
        if self.element is None:
            return float(self.storage_bits)
        bits = float(self.element.bits)
        if self.block_size > 0:
            scale_bits = {
                ScaleFormat.FP32: 32,
                ScaleFormat.FP16: 16,
                ScaleFormat.FP8_E4M3: 8,
                ScaleFormat.POW2: 8,
            }[self.scale_format]
            bits += scale_bits / float(self.block_size)
        return bits

    def compute_cost_factor(self) -> float:
        """Relative multiply cost versus FP16 (Sec. III-A cost model).

        The paper assumes 1 FP16 multiply == 2 INT8 multiplies == 4 INT4
        multiplies in terms of compute resources, i.e. the cost of a MAC is
        proportional to the element bit width.
        """
        return self.element_bits / 16.0

    def __str__(self) -> str:
        return self.name


# Named format specifications matching the paper's Tables I and II ------------

def fp32_spec() -> QuantFormatSpec:
    """Unquantized 32-bit floating point (paper baseline)."""
    return QuantFormatSpec(name="FP32", element=None, storage_bits=32.0)


def fp16_spec() -> QuantFormatSpec:
    """Unquantized 16-bit floating point (paper baseline, speed-up reference)."""
    return QuantFormatSpec(name="FP16", element=None, storage_bits=16.0)


def int8_spec() -> QuantFormatSpec:
    """Coarse-grained (per-channel scale) signed INT8."""
    return QuantFormatSpec(
        name="INT8",
        element=INT8,
        granularity=ScaleGranularity.PER_CHANNEL,
        scale_format=ScaleFormat.FP32,
    )


def mxint8_spec(block_size: int = 32) -> QuantFormatSpec:
    """MXINT8 -- 8-bit elements with a shared power-of-two scale per block."""
    return QuantFormatSpec(
        name="MXINT8",
        element=INT8,
        granularity=ScaleGranularity.PER_BLOCK,
        block_size=block_size,
        scale_format=ScaleFormat.POW2,
    )


def int4_spec() -> QuantFormatSpec:
    """Coarse-grained (per-channel scale) signed INT4."""
    return QuantFormatSpec(
        name="INT4",
        element=INT4,
        granularity=ScaleGranularity.PER_CHANNEL,
        scale_format=ScaleFormat.FP32,
    )


def int4_vsq_spec(vector_size: int = 16) -> QuantFormatSpec:
    """INT4-VSQ -- 4-bit elements with per-vector FP16 scale factors."""
    return QuantFormatSpec(
        name="INT4-VSQ",
        element=INT4,
        granularity=ScaleGranularity.PER_VECTOR,
        block_size=vector_size,
        scale_format=ScaleFormat.FP16,
    )


def int4_fp8_spec(vector_size: int = 16) -> QuantFormatSpec:
    """The paper's INT4 format with FP8 (E4M3) per-vector scale factors."""
    return QuantFormatSpec(
        name="INT4-FP8S",
        element=INT4,
        granularity=ScaleGranularity.PER_VECTOR,
        block_size=vector_size,
        scale_format=ScaleFormat.FP8_E4M3,
    )


def uint4_fp8_spec(vector_size: int = 16) -> QuantFormatSpec:
    """Unsigned 4-bit with FP8 scales, used for ReLU activations (Fig. 6)."""
    return QuantFormatSpec(
        name="UINT4-FP8S",
        element=UINT4,
        granularity=ScaleGranularity.PER_VECTOR,
        block_size=vector_size,
        scale_format=ScaleFormat.FP8_E4M3,
    )


#: Registry of the formats reported in Table I, keyed by the table row label.
TABLE1_FORMATS: dict[str, QuantFormatSpec] = {
    "FP32": fp32_spec(),
    "FP16": fp16_spec(),
    "INT8": int8_spec(),
    "MXINT8": mxint8_spec(),
    "INT4": int4_spec(),
    "INT4-VSQ": int4_vsq_spec(),
}


def get_format(name: str) -> QuantFormatSpec:
    """Look up a format spec by its canonical name.

    Raises ``KeyError`` with the list of known names when the format is
    unknown, which makes configuration typos easy to diagnose.
    """
    registry = dict(TABLE1_FORMATS)
    registry["INT4-FP8S"] = int4_fp8_spec()
    registry["UINT4-FP8S"] = uint4_fp8_spec()
    try:
        return registry[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown quantization format {name!r}; known formats: {sorted(registry)}"
        ) from exc
