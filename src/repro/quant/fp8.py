"""FP8 (E4M3 / E5M2) value rounding.

The paper's 4-bit format stores per-vector scale factors in FP8 (E4M3) to
"improve dynamic range of the representation" (Sec. III-A).  This module
implements round-to-nearest-even conversion of float64 arrays into the set of
representable FP8 values, so that scale factors in the INT4+FP8-scale format
carry realistic FP8 rounding error.
"""

from __future__ import annotations

import numpy as np

from .formats import FP8_E4M3, FP8_E5M2, FloatFormat


def _round_to_float_format(x: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Round ``x`` to the nearest representable value of ``fmt``.

    Implements round-to-nearest with saturation to the format's maximum
    finite magnitude.  Subnormals are supported by flushing the exponent at
    the format's minimum normal exponent.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(x)
    nonzero = x != 0.0
    if not np.any(nonzero):
        return out

    max_value = fmt.max_value
    min_normal = fmt.min_normal
    mantissa_bits = fmt.mantissa_bits

    vals = x[nonzero]
    sign = np.sign(vals)
    mag = np.abs(vals)

    # Exponent of each value, clamped below at the minimum normal exponent so
    # that values below min_normal round onto the subnormal grid.
    exp = np.floor(np.log2(mag))
    exp = np.maximum(exp, np.log2(min_normal))
    # Quantization step in this binade: 2^(exp - mantissa_bits).
    step = np.exp2(exp - mantissa_bits)
    rounded = np.round(mag / step) * step
    rounded = np.minimum(rounded, max_value)
    out[nonzero] = sign * rounded
    return out


def round_to_fp8_e4m3(x: np.ndarray) -> np.ndarray:
    """Round to the FP8 E4M3 grid (max finite value 448, 3 mantissa bits)."""
    return _round_to_float_format(x, FP8_E4M3)


def round_to_fp8_e5m2(x: np.ndarray) -> np.ndarray:
    """Round to the FP8 E5M2 grid (wider range, 2 mantissa bits)."""
    return _round_to_float_format(x, FP8_E5M2)


def round_to_fp16(x: np.ndarray) -> np.ndarray:
    """Round to IEEE half precision via NumPy's native float16."""
    return np.asarray(x, dtype=np.float64).astype(np.float16).astype(np.float64)


def quantize_scales(scales: np.ndarray, scale_format: str) -> np.ndarray:
    """Quantize scale factors to the requested scale storage format.

    Parameters
    ----------
    scales:
        Positive scale factors.
    scale_format:
        One of ``"fp32"``, ``"fp16"``, ``"fp8_e4m3"`` or ``"pow2"``.
        ``"pow2"`` rounds each scale up to the next power of two, matching
        the shared-exponent behaviour of MX block formats.
    """
    scales = np.asarray(scales, dtype=np.float64)
    if scale_format == "fp32":
        return scales
    if scale_format == "fp16":
        return np.maximum(round_to_fp16(scales), np.finfo(np.float16).tiny)
    if scale_format == "fp8_e4m3":
        return np.maximum(round_to_fp8_e4m3(scales), FP8_E4M3.min_normal / 8.0)
    if scale_format == "pow2":
        safe = np.maximum(scales, 1e-30)
        return np.exp2(np.ceil(np.log2(safe)))
    raise ValueError(f"unknown scale format: {scale_format!r}")
