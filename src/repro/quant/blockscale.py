"""Block-scaled quantization: MXINT8 microscaling format.

MXINT8 (Rouhani et al., "Microscaling data formats for deep learning") stores
8-bit integer elements in blocks of (typically) 32 values that share a single
power-of-two scale factor.  The paper finds that this fine-grained scaling is
what allows 8-bit quantization of EDM with "negligible degradation in image
quality across all datasets" (Table I), in contrast to coarse per-channel
INT8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fp8 import quantize_scales
from .formats import INT8, IntegerFormat
from .uniform import QuantizedTensor, _pad_last_axis


@dataclass(frozen=True)
class BlockScaleConfig:
    """Configuration of a block-scaled (MX-style) format."""

    element_format: IntegerFormat = INT8
    block_size: int = 32
    scale_format: str = "pow2"

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")


def quantize_blockscale(
    x: np.ndarray, config: BlockScaleConfig | None = None
) -> QuantizedTensor:
    """Quantize ``x`` with a shared scale per contiguous block of the last axis.

    The per-block scale is ``max(|block|) / qmax`` rounded to the configured
    scale storage format (power-of-two for MX formats).  Returns a
    :class:`~repro.quant.uniform.QuantizedTensor` whose ``scales`` array is
    already broadcast to the element shape so dequantization is a plain
    element-wise multiply.
    """
    config = config or BlockScaleConfig()
    fmt = config.element_format
    x = np.asarray(x, dtype=np.float64)
    if not fmt.signed:
        x = np.maximum(x, 0.0)

    original_length = x.shape[-1]
    padded, n_blocks = _pad_last_axis(x, config.block_size)
    blocked = padded.reshape(*padded.shape[:-1], n_blocks, config.block_size)

    amax = np.maximum(np.max(np.abs(blocked), axis=-1, keepdims=True), 1e-12)
    scales = quantize_scales(amax / float(fmt.qmax), config.scale_format)
    codes_blocked = np.clip(np.round(blocked / scales), fmt.qmin, fmt.qmax)

    codes = codes_blocked.reshape(*padded.shape)[..., :original_length]
    scales_full = np.broadcast_to(scales, blocked.shape).reshape(*padded.shape)[
        ..., :original_length
    ]
    return QuantizedTensor(codes=codes, scales=np.array(scales_full), fmt=fmt, axis=None)


def fake_quantize_blockscale(
    x: np.ndarray, config: BlockScaleConfig | None = None
) -> np.ndarray:
    """Quantize-then-dequantize with block scaling (MXINT8 error injection)."""
    qt = quantize_blockscale(x, config)
    return qt.dequantize().reshape(np.asarray(x).shape)


def mxint8_fake_quantize(x: np.ndarray, block_size: int = 32) -> np.ndarray:
    """Shorthand for MXINT8 (INT8 elements, power-of-two block scales)."""
    return fake_quantize_blockscale(
        x, BlockScaleConfig(element_format=INT8, block_size=block_size, scale_format="pow2")
    )


def blockscale_storage_bits(config: BlockScaleConfig | None = None) -> float:
    """Average storage bits per element, amortizing the 8-bit shared scale."""
    config = config or BlockScaleConfig()
    return config.element_format.bits + 8.0 / config.block_size
