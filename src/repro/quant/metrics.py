"""Quantization error metrics.

Small helpers used by the sensitivity analysis (Fig. 3) and by unit tests to
characterize the error each data format injects into a tensor.
"""

from __future__ import annotations

import numpy as np


def mse(reference: np.ndarray, approx: np.ndarray) -> float:
    """Mean squared error between a reference tensor and its approximation."""
    reference = np.asarray(reference, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    if reference.shape != approx.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {approx.shape}")
    if reference.size == 0:
        return 0.0
    return float(np.mean((reference - approx) ** 2))


def rmse(reference: np.ndarray, approx: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(reference, approx)))


def sqnr_db(reference: np.ndarray, approx: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better).

    Returns ``inf`` for an exact match and ``-inf`` when the reference has
    no signal energy but the approximation does.
    """
    reference = np.asarray(reference, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    signal = float(np.sum(reference**2))
    noise = float(np.sum((reference - approx) ** 2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * float(np.log10(signal / noise))


def cosine_similarity(reference: np.ndarray, approx: np.ndarray) -> float:
    """Cosine similarity between flattened tensors (1.0 means same direction)."""
    a = np.asarray(reference, dtype=np.float64).ravel()
    b = np.asarray(approx, dtype=np.float64).ravel()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0.0:
        return 1.0 if np.allclose(a, b) else 0.0
    return float(np.dot(a, b) / denom)


def max_abs_error(reference: np.ndarray, approx: np.ndarray) -> float:
    """Maximum absolute element-wise error."""
    reference = np.asarray(reference, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    if reference.size == 0:
        return 0.0
    return float(np.max(np.abs(reference - approx)))


def sparsity(x: np.ndarray, tol: float = 0.0) -> float:
    """Fraction of elements whose magnitude is at most ``tol``.

    The paper reports ~10% average activation sparsity for SiLU-based models
    and ~65% (up to 85%) for ReLU-based models (Sec. III-C).
    """
    x = np.asarray(x)
    if x.size == 0:
        return 0.0
    return float(np.count_nonzero(np.abs(x) <= tol)) / float(x.size)


def per_channel_sparsity(x: np.ndarray, channel_axis: int = 0, tol: float = 0.0) -> np.ndarray:
    """Per-channel sparsity of an activation tensor.

    Returns a 1-D array with one sparsity value per channel along
    ``channel_axis``; this is the quantity thresholded by the temporal
    sparsity detector (Sec. IV-C).
    """
    x = np.asarray(x)
    x = np.moveaxis(x, channel_axis, 0)
    flat = x.reshape(x.shape[0], -1)
    if flat.shape[1] == 0:
        return np.zeros(flat.shape[0])
    zero_counts = np.count_nonzero(np.abs(flat) <= tol, axis=1)
    return zero_counts / float(flat.shape[1])
