"""Uniform symmetric quantization primitives.

Implements the quantization formula from Section II-A of the paper::

    x_hat = round(x / s_x),   s_x = max(|x|) / q_max

with the ``max`` operator taken at per-tensor, per-channel or per-vector
granularity.  Quantize/dequantize round-trips ("fake quantization") are used
throughout the reproduction to inject the numerical error of a given data
format into the NumPy diffusion model, exactly as scaled quantization would
on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .formats import IntegerFormat, ScaleGranularity

#: Numerical floor for scale factors, so all-zero tensors quantize to zeros
#: instead of producing divisions by zero.
_SCALE_EPS = 1e-12


@dataclass
class QuantizedTensor:
    """A tensor stored as integer codes plus scale factors.

    Attributes
    ----------
    codes:
        Integer codes, same shape as the original tensor.
    scales:
        Scale factors, broadcastable against ``codes``.
    fmt:
        The integer container format of the codes.
    axis:
        Channel axis used for per-channel/per-vector scaling, or ``None``
        for per-tensor scaling.
    """

    codes: np.ndarray
    scales: np.ndarray
    fmt: IntegerFormat
    axis: int | None = None

    def dequantize(self) -> np.ndarray:
        """Reconstruct the floating-point tensor from codes and scales."""
        return self.codes.astype(np.float64) * self.scales

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.codes.shape)

    def density(self) -> float:
        """Fraction of non-zero codes (1.0 - sparsity)."""
        if self.codes.size == 0:
            return 0.0
        return float(np.count_nonzero(self.codes)) / float(self.codes.size)


def _amax(x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
    """Max absolute value with a numerical floor to avoid zero scales."""
    amax = np.max(np.abs(x), axis=axis, keepdims=keepdims)
    return np.maximum(amax, _SCALE_EPS)


def compute_scale(
    x: np.ndarray,
    fmt: IntegerFormat,
    granularity: ScaleGranularity = ScaleGranularity.PER_TENSOR,
    axis: int = 0,
    block_size: int = 16,
) -> np.ndarray:
    """Compute symmetric quantization scale factors ``s_x = max(|x|)/q_max``.

    Parameters
    ----------
    x:
        Input tensor.
    fmt:
        Target integer format (defines ``q_max``).
    granularity:
        Scale granularity.  ``PER_CHANNEL`` reduces over all axes except
        ``axis``.  ``PER_VECTOR`` splits the last axis into contiguous
        vectors of ``block_size`` elements and assigns one scale per vector.
    axis:
        Channel axis for per-channel scaling.
    block_size:
        Vector length for per-vector scaling.
    """
    qmax = float(fmt.qmax)
    if granularity is ScaleGranularity.PER_TENSOR:
        return np.asarray(_amax(x) / qmax)
    if granularity is ScaleGranularity.PER_CHANNEL:
        reduce_axes = tuple(i for i in range(x.ndim) if i != axis % x.ndim)
        return _amax(x, axis=reduce_axes, keepdims=True) / qmax
    if granularity in (ScaleGranularity.PER_VECTOR, ScaleGranularity.PER_BLOCK):
        padded, n_blocks = _pad_last_axis(x, block_size)
        blocked = padded.reshape(*padded.shape[:-1], n_blocks, block_size)
        scales = _amax(blocked, axis=-1, keepdims=True) / qmax
        return scales
    raise ValueError(f"unsupported granularity: {granularity}")


def _pad_last_axis(x: np.ndarray, block_size: int) -> tuple[np.ndarray, int]:
    """Pad the last axis of ``x`` with zeros to a multiple of ``block_size``."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    length = x.shape[-1]
    n_blocks = (length + block_size - 1) // block_size
    padded_len = n_blocks * block_size
    if padded_len == length:
        return x, n_blocks
    pad_width = [(0, 0)] * (x.ndim - 1) + [(0, padded_len - length)]
    return np.pad(x, pad_width, mode="constant"), n_blocks


def quantize(
    x: np.ndarray,
    fmt: IntegerFormat,
    granularity: ScaleGranularity = ScaleGranularity.PER_TENSOR,
    axis: int = 0,
    block_size: int = 16,
) -> QuantizedTensor:
    """Quantize ``x`` to integer codes under uniform symmetric quantization.

    For unsigned formats the input is clipped at zero first (negative values
    cannot be represented), which models UINT4 quantization of ReLU outputs.
    """
    x = np.asarray(x, dtype=np.float64)
    if not fmt.signed:
        x = np.maximum(x, 0.0)

    if granularity in (ScaleGranularity.PER_VECTOR, ScaleGranularity.PER_BLOCK):
        return _quantize_per_vector(x, fmt, block_size)

    scales = compute_scale(x, fmt, granularity, axis=axis, block_size=block_size)
    codes = np.clip(np.round(x / scales), fmt.qmin, fmt.qmax)
    return QuantizedTensor(codes=codes, scales=scales, fmt=fmt, axis=axis)


def _quantize_per_vector(x: np.ndarray, fmt: IntegerFormat, block_size: int) -> QuantizedTensor:
    """Per-vector quantization along the last axis (VS-Quant style)."""
    original_length = x.shape[-1]
    padded, n_blocks = _pad_last_axis(x, block_size)
    blocked = padded.reshape(*padded.shape[:-1], n_blocks, block_size)
    scales = _amax(blocked, axis=-1, keepdims=True) / float(fmt.qmax)
    codes_blocked = np.clip(np.round(blocked / scales), fmt.qmin, fmt.qmax)
    codes = codes_blocked.reshape(*padded.shape)[..., :original_length]
    scales_full = np.broadcast_to(scales, blocked.shape).reshape(*padded.shape)[
        ..., :original_length
    ]
    return QuantizedTensor(codes=codes, scales=np.array(scales_full), fmt=fmt, axis=None)


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    """Convenience wrapper around :meth:`QuantizedTensor.dequantize`."""
    return qt.dequantize()


def fake_quantize(
    x: np.ndarray,
    fmt: IntegerFormat,
    granularity: ScaleGranularity = ScaleGranularity.PER_TENSOR,
    axis: int = 0,
    block_size: int = 16,
) -> np.ndarray:
    """Quantize then immediately dequantize ``x`` (quantization error injection).

    This is the standard "fake quant" operation used for post-training
    quantization studies: the returned tensor is floating point but carries
    exactly the rounding/clipping error of the target format.
    """
    qt = quantize(x, fmt, granularity=granularity, axis=axis, block_size=block_size)
    out = qt.dequantize()
    return out.reshape(x.shape)


def used_levels(
    x: np.ndarray,
    fmt: IntegerFormat,
    granularity: ScaleGranularity = ScaleGranularity.PER_TENSOR,
) -> int:
    """Count how many distinct quantization levels of ``fmt`` the data uses.

    Reproduces the Fig. 6 analysis: SiLU outputs over x in [-1, 1] occupy
    only 10 of the 16 signed INT4 levels, whereas ReLU outputs occupy all 16
    UINT4 levels.
    """
    qt = quantize(x, fmt, granularity=granularity)
    return int(np.unique(qt.codes).size)
