"""Format-spec-driven quantization dispatch.

The rest of the library (quantized layers, mixed-precision policies,
sensitivity sweeps) only needs a single entry point: "apply the numerical
error of format F to tensor X".  This module maps a
:class:`~repro.quant.formats.QuantFormatSpec` to the right quantization
implementation.
"""

from __future__ import annotations

import numpy as np

from .blockscale import BlockScaleConfig, fake_quantize_blockscale
from .formats import QuantFormatSpec, ScaleGranularity
from .uniform import fake_quantize
from .vsq import VSQConfig, fake_quantize_vsq


def apply_format(x: np.ndarray, spec: QuantFormatSpec, channel_axis: int = 0) -> np.ndarray:
    """Return ``x`` carrying the quantization error of ``spec``.

    FP32 is the identity.  FP16 rounds through NumPy's float16.  Integer
    formats dispatch on scale granularity: per-tensor/per-channel use plain
    uniform symmetric quantization; per-block uses MX-style power-of-two
    block scales; per-vector uses VS-Quant-style vector scales stored in the
    spec's scale format.
    """
    x = np.asarray(x, dtype=np.float64)
    if not spec.is_quantized:
        if spec.storage_bits >= 32:
            return x
        return x.astype(np.float16).astype(np.float64)

    assert spec.element is not None
    gran = spec.granularity
    if gran in (ScaleGranularity.PER_TENSOR, ScaleGranularity.PER_CHANNEL):
        return fake_quantize(x, spec.element, granularity=gran, axis=channel_axis)
    if gran is ScaleGranularity.PER_BLOCK:
        config = BlockScaleConfig(
            element_format=spec.element,
            block_size=spec.block_size or 32,
            scale_format=str(spec.scale_format),
        )
        return fake_quantize_blockscale(x, config)
    if gran is ScaleGranularity.PER_VECTOR:
        config = VSQConfig(
            element_format=spec.element,
            vector_size=spec.block_size or 16,
            scale_format=str(spec.scale_format),
            two_level=str(spec.scale_format) == "fp16",
        )
        return fake_quantize_vsq(x, config)
    raise ValueError(f"unsupported granularity in spec {spec.name}: {gran}")


def quantize_along_channels(x: np.ndarray, spec: QuantFormatSpec, channel_axis: int) -> np.ndarray:
    """Apply ``spec`` with the reduction vectors laid out along ``channel_axis``.

    Convolution activations are quantized along the input-channel dimension
    (the reduction axis of the matmul), so fine-grained formats need their
    vectors to run along that axis.  This helper moves the axis to the end,
    applies the format, and moves it back.
    """
    x = np.asarray(x, dtype=np.float64)
    if not spec.is_quantized or spec.granularity in (
        ScaleGranularity.PER_TENSOR,
        ScaleGranularity.PER_CHANNEL,
    ):
        return apply_format(x, spec, channel_axis=channel_axis)
    moved = np.moveaxis(x, channel_axis, -1)
    out = apply_format(moved, spec, channel_axis=channel_axis)
    return np.moveaxis(out, -1, channel_axis)


def apply_weight_format(
    weight: np.ndarray, spec: QuantFormatSpec, out_channel_axis: int = 0
) -> np.ndarray:
    """Quantize a weight tensor under ``spec``.

    Coarse-grained formats (the plain INT8/INT4 rows of Table I) use one
    scale per *output channel*, the standard practice for weight
    quantization.  Fine-grained formats (MX / VS-Quant / the paper's
    INT4+FP8-scale) place their shared-scale vectors along the reduction
    dimension, i.e. the flattened (in_channels, kH, kW) axes.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if not spec.is_quantized:
        return apply_format(weight, spec)
    if spec.granularity in (ScaleGranularity.PER_TENSOR, ScaleGranularity.PER_CHANNEL):
        granularity = spec.granularity
        if granularity is ScaleGranularity.PER_CHANNEL:
            return fake_quantize(
                weight, spec.element, granularity=granularity, axis=out_channel_axis
            )
        return fake_quantize(weight, spec.element, granularity=granularity)
    # Fine-grained: vectors run along the reduction dimension.  Flatten all
    # non-output-channel axes to the end so blocks span (Cin, kH, kW).
    moved = np.moveaxis(weight, out_channel_axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    out = apply_format(flat, spec)
    return np.moveaxis(out.reshape(moved.shape), 0, out_channel_axis)


def apply_activation_format(x: np.ndarray, spec: QuantFormatSpec, channel_axis: int) -> np.ndarray:
    """Quantize an activation tensor under ``spec``.

    Coarse-grained integer formats quantize activations with a single
    per-tensor scale (per-channel activation scales cannot be folded into a
    standard GEMM, so real deployments use per-tensor scaling — this is what
    makes the INT8/INT4 rows of Table I degrade so badly in the presence of
    activation outliers).  Fine-grained formats share scales over short
    vectors along the reduction (input-channel) dimension.
    """
    x = np.asarray(x, dtype=np.float64)
    if not spec.is_quantized:
        return apply_format(x, spec)
    if spec.granularity in (ScaleGranularity.PER_TENSOR, ScaleGranularity.PER_CHANNEL):
        return fake_quantize(x, spec.element, granularity=ScaleGranularity.PER_TENSOR)
    return quantize_along_channels(x, spec, channel_axis=channel_axis)
