"""Per-vector scaled quantization (VS-Quant) and the paper's INT4+FP8-scale format.

VS-Quant (Dai et al. 2021) assigns one scale factor to each short vector of
elements (typically 16) along the reduction dimension, plus a second-level
per-channel scale that keeps the per-vector scales themselves in a narrow
integer or low-precision range.  INT4-VSQ is the 4-bit variant evaluated in
Table I.

The paper's own format ("our own INT4 format with FP8 scale factors",
Sec. III-A) keeps INT4 elements but stores the per-vector scale factors in
FP8 E4M3 to extend dynamic range, and uses UINT4 elements for ReLU
activations (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fp8 import quantize_scales
from .formats import INT4, UINT4, IntegerFormat
from .uniform import QuantizedTensor, _pad_last_axis


@dataclass(frozen=True)
class VSQConfig:
    """Configuration of a per-vector scaled quantization format.

    Attributes
    ----------
    element_format:
        Integer container for the elements (INT4 for INT4-VSQ, UINT4 for
        ReLU activations in the paper's format).
    vector_size:
        Number of elements sharing one scale factor.
    scale_format:
        Storage format of the per-vector scale factors: ``"fp16"`` for
        classic VS-Quant, ``"fp8_e4m3"`` for the paper's format.
    two_level:
        When true, per-vector scales are themselves quantized to UINT8
        against a per-tensor second-level scale, as in the original
        VS-Quant hardware implementation.
    """

    element_format: IntegerFormat = INT4
    vector_size: int = 16
    scale_format: str = "fp16"
    two_level: bool = False

    def __post_init__(self) -> None:
        if self.vector_size <= 0:
            raise ValueError("vector_size must be positive")


def _encode_two_level_scales(scales: np.ndarray, scale_format: str) -> np.ndarray:
    """Encode per-vector scales relative to a shared per-tensor scale.

    The VS-Quant hardware scheme stores per-vector scale factors as small
    integer codes (UINT8 here) against a per-tensor second-level scale; the
    limited relative precision of small codes is exactly the dynamic-range
    problem the paper's FP8 scale factors solve.  When ``scale_format`` is an
    FP8 variant the normalized scales are instead rounded onto the FP8 grid,
    which keeps relative error roughly constant across four orders of
    magnitude.
    """
    outer = np.maximum(np.max(scales), 1e-12)
    normalized = scales / outer
    if scale_format in ("fp8_e4m3", "fp16", "fp32"):
        encoded = np.maximum(quantize_scales(normalized, scale_format), 1e-12)
        return encoded * outer
    # Integer (UINT8) second-level codes, classic VS-Quant.
    codes = np.clip(np.round(normalized * 255.0), 1.0, 255.0)
    return codes / 255.0 * outer


def quantize_vsq(x: np.ndarray, config: VSQConfig | None = None) -> QuantizedTensor:
    """Quantize ``x`` with per-vector scale factors along the last axis."""
    config = config or VSQConfig()
    fmt = config.element_format
    x = np.asarray(x, dtype=np.float64)
    if not fmt.signed:
        x = np.maximum(x, 0.0)

    original_length = x.shape[-1]
    padded, n_blocks = _pad_last_axis(x, config.vector_size)
    blocked = padded.reshape(*padded.shape[:-1], n_blocks, config.vector_size)

    amax = np.maximum(np.max(np.abs(blocked), axis=-1, keepdims=True), 1e-12)
    scales = amax / float(fmt.qmax)
    if config.two_level:
        scales = _encode_two_level_scales(scales, "uint8")
    else:
        scales = _encode_two_level_scales(scales, config.scale_format)

    codes_blocked = np.clip(np.round(blocked / scales), fmt.qmin, fmt.qmax)
    codes = codes_blocked.reshape(*padded.shape)[..., :original_length]
    scales_full = np.broadcast_to(scales, blocked.shape).reshape(*padded.shape)[
        ..., :original_length
    ]
    return QuantizedTensor(codes=codes, scales=np.array(scales_full), fmt=fmt, axis=None)


def fake_quantize_vsq(x: np.ndarray, config: VSQConfig | None = None) -> np.ndarray:
    """Quantize-then-dequantize with per-vector scaling (error injection)."""
    qt = quantize_vsq(x, config)
    return qt.dequantize().reshape(np.asarray(x).shape)


def int4_vsq_config(vector_size: int = 16) -> VSQConfig:
    """INT4-VSQ as evaluated in Table I: INT4 elements, FP16 vector scales."""
    return VSQConfig(
        element_format=INT4, vector_size=vector_size, scale_format="fp16", two_level=True
    )


def int4_fp8_config(vector_size: int = 16) -> VSQConfig:
    """The paper's 4-bit weight format: INT4 elements, FP8 E4M3 vector scales."""
    return VSQConfig(element_format=INT4, vector_size=vector_size, scale_format="fp8_e4m3")


def uint4_fp8_config(vector_size: int = 16) -> VSQConfig:
    """The paper's 4-bit ReLU-activation format: UINT4 elements, FP8 scales."""
    return VSQConfig(element_format=UINT4, vector_size=vector_size, scale_format="fp8_e4m3")


def vsq_storage_bits(config: VSQConfig | None = None) -> float:
    """Average storage bits per element, amortizing the per-vector scale."""
    config = config or VSQConfig()
    scale_bits = {"fp32": 32.0, "fp16": 16.0, "fp8_e4m3": 8.0, "pow2": 8.0}[config.scale_format]
    if config.two_level:
        scale_bits = 8.0  # per-vector scales stored as UINT8 codes
    return config.element_format.bits + scale_bits / config.vector_size
