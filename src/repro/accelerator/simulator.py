"""End-to-end accelerator simulation over layers, time steps and full sampling runs.

The simulator consumes *workload traces*: for every diffusion time step, the
list of convolution-layer workloads (geometry, precision, per-channel input
sparsity) the accelerator must execute.  It reports latency (cycles and
milliseconds), energy breakdowns and MAC-skipping statistics, and provides
the comparisons the paper's Fig. 12 reports:

* heterogeneous DPE+SPE vs the dense two-DPE baseline (speed-up and energy
  saving from temporal sparsity), and
* quantized vs FP16 execution (speed-up from 4-bit quantization), which
  compound into the headline 6.91x total speed-up.

:class:`AcceleratorSimulator` is a thin facade over pluggable simulation
engines (:mod:`repro.accelerator.backends`): the stateful per-layer
``reference`` backend and the batched-NumPy ``vectorized`` backend, which
produces equivalent reports roughly an order of magnitude faster and is the
default for trace execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .config import AcceleratorConfig, dense_baseline_config, sqdm_config
from .controller import AcceleratorController, LayerExecutionResult
from .energy import DEFAULT_ENERGY_TABLE, EnergyBreakdown, EnergyTable
from .workload import ConvLayerWorkload

from .backends.base import DetectorStats

if TYPE_CHECKING:  # pragma: no cover - the backends package imports us lazily
    from .backends import SimulationBackend

#: A workload trace: one list of layer workloads per diffusion time step.
WorkloadTrace = list[list[ConvLayerWorkload]]


def safe_speedup(baseline_cycles: float, candidate_cycles: float) -> float:
    """``baseline / candidate`` with degenerate denominators made well-defined.

    Two zero-cycle runs (e.g. empty or zero-MAC traces) are *identical*, not
    infinitely fast, so ``0 / 0`` is defined as ``1.0``.  A zero-cycle
    candidate against real baseline work is genuinely unbounded and reported
    as ``inf`` — deterministically, rather than as a platform-dependent
    division artifact.
    """
    if candidate_cycles == 0.0:
        return 1.0 if baseline_cycles == 0.0 else math.inf
    return baseline_cycles / candidate_cycles


def relative_saving(baseline: float, candidate: float) -> float:
    """``1 - candidate / baseline`` with a zero baseline made well-defined.

    When both quantities are zero there is nothing to save: ``0.0``.  A
    nonzero candidate against a zero baseline is an unbounded regression and
    reported as ``-inf``.
    """
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else -math.inf
    return 1.0 - candidate / baseline


@dataclass(slots=True)
class StepResult:
    """Aggregate execution result of one diffusion time step."""

    time_step: int
    cycles: float
    energy: EnergyBreakdown
    layer_results: list[LayerExecutionResult] = field(default_factory=list)

    @property
    def total_macs(self) -> float:
        return sum(r.total_macs for r in self.layer_results)

    @property
    def executed_macs(self) -> float:
        return sum(r.executed_macs for r in self.layer_results)


@dataclass(slots=True)
class SimulationReport:
    """Full simulation result across all time steps."""

    config_name: str
    total_cycles: float
    total_energy: EnergyBreakdown
    step_results: list[StepResult] = field(default_factory=list)
    clock_ghz: float = 1.0
    #: Temporal-sparsity-detector activity attributed to *this* run — unlike
    #: the backend instance's mutable batch totals, this survives caching and
    #: stays correct when the report came out of a multi-trace or
    #: cross-config batch.  ``None`` only on reports decoded from artifacts
    #: written before the field existed.
    detector_stats: DetectorStats | None = None

    @property
    def total_time_ms(self) -> float:
        return self.total_cycles / (self.clock_ghz * 1e9) * 1e3

    @property
    def total_macs(self) -> float:
        return sum(s.total_macs for s in self.step_results)

    @property
    def executed_macs(self) -> float:
        return sum(s.executed_macs for s in self.step_results)

    @property
    def mac_skip_fraction(self) -> float:
        total = self.total_macs
        if total == 0:
            return 0.0
        return 1.0 - self.executed_macs / total

    def average_load_imbalance(self) -> float:
        imbalances = [
            layer.load_imbalance
            for step in self.step_results
            for layer in step.layer_results
            if layer.total_macs > 0
        ]
        return sum(imbalances) / len(imbalances) if imbalances else 0.0


class AcceleratorSimulator:
    """Simulates a workload trace on a given accelerator configuration.

    Parameters
    ----------
    config / energy_table:
        Hardware configuration and 28 nm energy constants.
    backend:
        Simulation engine used by :meth:`run_trace` — a registered backend
        name (``"vectorized"``, the default, or ``"reference"``) or an
        already-constructed :class:`SimulationBackend` instance.  The
        unit-level entry points :meth:`run_layer` / :meth:`run_step` always
        execute on the stateful reference controller, which remains exposed
        as :attr:`controller` for per-PE and traffic introspection.

    Both the controller and the backend are constructed lazily: sweeps that
    only call :meth:`run_trace` on the vectorized backend never pay for the
    controller's PE/NoC object graph, and vice versa.
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        energy_table: EnergyTable | None = None,
        backend: "str | SimulationBackend | None" = None,
    ):
        from .backends import resolve_backend_name

        self.config = config
        self.energy_table = energy_table or DEFAULT_ENERGY_TABLE
        # Backend names (including the REPRO_SIM_BACKEND default) are
        # validated here, eagerly, with the full registry in the message.
        self._backend_spec: "str | SimulationBackend" = (
            backend if backend is not None and not isinstance(backend, str)
            else resolve_backend_name(backend)
        )
        self._backend: "SimulationBackend | None" = (
            None if isinstance(self._backend_spec, str) else self._backend_spec
        )
        self._controller: AcceleratorController | None = None
        self._reference_engine = None

    @property
    def controller(self) -> AcceleratorController:
        """The stateful reference controller (created on first use).

        Only :meth:`run_layer` / :meth:`run_step` (and ``run_trace`` on the
        ``reference`` backend) drive this object; after a ``run_trace`` on
        the vectorized backend its detector/traffic counters stay at their
        initial values — read :attr:`detector_stats` for backend-agnostic
        detector activity instead.
        """
        if self._controller is None:
            self._controller = AcceleratorController(self.config, self.energy_table)
        return self._controller

    def _reference(self):
        """A reference engine over the shared controller, for unit-level runs."""
        if self._reference_engine is None:
            from .backends import ReferenceBackend

            self._reference_engine = ReferenceBackend(
                self.config, self.energy_table, controller=self.controller
            )
        return self._reference_engine

    @property
    def backend(self) -> "SimulationBackend":
        """The active simulation engine (created on first use)."""
        if self._backend is None:
            from .backends import ReferenceBackend, get_backend

            if self._backend_spec == ReferenceBackend.name:
                self._backend = self._reference()
            else:
                self._backend = get_backend(self._backend_spec, self.config, self.energy_table)
        return self._backend

    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def detector_stats(self):
        """Detector activity of the most recent :meth:`run_trace` call."""
        return self.backend.detector_stats

    def run_layer(self, workload: ConvLayerWorkload, time_step: int = 0) -> LayerExecutionResult:
        """Execute a single layer workload (unit-level entry point)."""
        return self.controller.execute_layer(workload, time_step)

    def run_step(self, workloads: list[ConvLayerWorkload], time_step: int = 0) -> StepResult:
        """Execute all layers of one time step back to back (reference engine)."""
        return self._reference().run_step(workloads, time_step)

    def run_trace(self, trace: WorkloadTrace) -> SimulationReport:
        """Execute a full multi-time-step workload trace on the active backend."""
        return self.backend.run_trace(trace)

    def run_traces(self, traces: list[WorkloadTrace]) -> list[SimulationReport]:
        """Execute several traces on the active backend, one report per trace.

        The vectorized engine fuses the whole batch into a single NumPy pass
        (cross-trace batching, the fleet-sweep fast path); backends without a
        batched entry point fall back to a per-trace loop.
        """
        run_traces = getattr(self.backend, "run_traces", None)
        if run_traces is not None:
            return run_traces(traces)
        return [self.backend.run_trace(trace) for trace in traces]

    def run_config_traces(
        self, entries: "list[tuple[AcceleratorConfig, list[WorkloadTrace]]]"
    ) -> list[list[SimulationReport]]:
        """Execute a ``(config x trace)`` batch, one report list per entry.

        The cross-config sweep fast path: on the vectorized backend the whole
        batch — every configuration with its traces — is one fused NumPy
        pass, with per-config scalars stacked into entry-aligned arrays.  The
        simulator's own configuration does not constrain the batch (each
        entry carries its config), but all entries share this simulator's
        energy table.  Backends without the batched entry point fall back to
        a per-config loop.
        """
        run_config_traces = getattr(self.backend, "run_config_traces", None)
        if run_config_traces is not None:
            return run_config_traces(entries)
        return [
            AcceleratorSimulator(config, self.energy_table, backend=self.backend.name).run_traces(
                traces
            )
            for config, traces in entries
        ]

    def run_config_traces_columnar(
        self, entries: "list[tuple[AcceleratorConfig, list[WorkloadTrace]]]"
    ):
        """Columnar variant of :meth:`run_config_traces`, or ``None``.

        On backends with a columnar entry point (the vectorized engine) the
        whole ``(config x trace)`` grid comes back as one
        :class:`~repro.core.columnar.ColumnarReportBatch` — contiguous
        arrays, zero report objects built.  Returns ``None`` for backends
        without it (notably the reference oracle), signalling callers to take
        the eager :meth:`run_config_traces` path instead.
        """
        runner = getattr(self.backend, "run_config_traces_columnar", None)
        if runner is None:
            return None
        return runner(entries)


@dataclass(slots=True)
class ComparisonResult:
    """Speed-up and energy saving of one configuration relative to a baseline."""

    baseline: SimulationReport
    candidate: SimulationReport

    @property
    def speedup(self) -> float:
        return safe_speedup(self.baseline.total_cycles, self.candidate.total_cycles)

    @property
    def energy_saving(self) -> float:
        return relative_saving(
            self.baseline.total_energy.total_pj, self.candidate.total_energy.total_pj
        )


def compare_to_dense_baseline(
    trace: WorkloadTrace,
    sqdm: AcceleratorConfig | None = None,
    baseline: AcceleratorConfig | None = None,
    energy_table: EnergyTable | None = None,
    backend: str | None = None,
) -> ComparisonResult:
    """Run a trace on both the SQ-DM accelerator and the dense 2-DPE baseline.

    This is the Fig. 12 (top) comparison: identical multiplier count, the
    only difference being that SQ-DM routes sparse channels through the
    SIGMA-like sparse datapath.
    """
    sqdm = sqdm or sqdm_config()
    baseline = baseline or dense_baseline_config()
    candidate_report = AcceleratorSimulator(sqdm, energy_table, backend=backend).run_trace(trace)
    baseline_report = AcceleratorSimulator(baseline, energy_table, backend=backend).run_trace(trace)
    return ComparisonResult(baseline=baseline_report, candidate=candidate_report)


def retime_trace_precision(trace: WorkloadTrace, weight_bits: int, act_bits: int) -> WorkloadTrace:
    """Copy a trace with every layer's precision replaced (for FP16-vs-4-bit studies)."""
    return [
        [w.replace(weight_bits=weight_bits, act_bits=act_bits) for w in workloads]
        for workloads in trace
    ]
