"""End-to-end accelerator simulation over layers, time steps and full sampling runs.

The simulator consumes *workload traces*: for every diffusion time step, the
list of convolution-layer workloads (geometry, precision, per-channel input
sparsity) the accelerator must execute.  It reports latency (cycles and
milliseconds), energy breakdowns and MAC-skipping statistics, and provides
the comparisons the paper's Fig. 12 reports:

* heterogeneous DPE+SPE vs the dense two-DPE baseline (speed-up and energy
  saving from temporal sparsity), and
* quantized vs FP16 execution (speed-up from 4-bit quantization), which
  compound into the headline 6.91x total speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import AcceleratorConfig, dense_baseline_config, sqdm_config
from .controller import AcceleratorController, LayerExecutionResult
from .energy import DEFAULT_ENERGY_TABLE, EnergyBreakdown, EnergyTable
from .workload import ConvLayerWorkload

#: A workload trace: one list of layer workloads per diffusion time step.
WorkloadTrace = list[list[ConvLayerWorkload]]


@dataclass
class StepResult:
    """Aggregate execution result of one diffusion time step."""

    time_step: int
    cycles: float
    energy: EnergyBreakdown
    layer_results: list[LayerExecutionResult] = field(default_factory=list)

    @property
    def total_macs(self) -> float:
        return sum(r.total_macs for r in self.layer_results)

    @property
    def executed_macs(self) -> float:
        return sum(r.executed_macs for r in self.layer_results)


@dataclass
class SimulationReport:
    """Full simulation result across all time steps."""

    config_name: str
    total_cycles: float
    total_energy: EnergyBreakdown
    step_results: list[StepResult] = field(default_factory=list)
    clock_ghz: float = 1.0

    @property
    def total_time_ms(self) -> float:
        return self.total_cycles / (self.clock_ghz * 1e9) * 1e3

    @property
    def total_macs(self) -> float:
        return sum(s.total_macs for s in self.step_results)

    @property
    def executed_macs(self) -> float:
        return sum(s.executed_macs for s in self.step_results)

    @property
    def mac_skip_fraction(self) -> float:
        total = self.total_macs
        if total == 0:
            return 0.0
        return 1.0 - self.executed_macs / total

    def average_load_imbalance(self) -> float:
        imbalances = [
            layer.load_imbalance
            for step in self.step_results
            for layer in step.layer_results
            if layer.total_macs > 0
        ]
        return sum(imbalances) / len(imbalances) if imbalances else 0.0


class AcceleratorSimulator:
    """Simulates a workload trace on a given accelerator configuration."""

    def __init__(self, config: AcceleratorConfig, energy_table: EnergyTable | None = None):
        self.config = config
        self.energy_table = energy_table or DEFAULT_ENERGY_TABLE
        self.controller = AcceleratorController(config, self.energy_table)

    def run_layer(self, workload: ConvLayerWorkload, time_step: int = 0) -> LayerExecutionResult:
        """Execute a single layer workload (unit-level entry point)."""
        return self.controller.execute_layer(workload, time_step)

    def run_step(self, workloads: list[ConvLayerWorkload], time_step: int = 0) -> StepResult:
        """Execute all layers of one time step back to back."""
        cycles = 0.0
        energy = EnergyBreakdown()
        layer_results = []
        for workload in workloads:
            result = self.controller.execute_layer(workload, time_step)
            cycles += result.cycles
            energy = energy + result.energy
            layer_results.append(result)
        return StepResult(time_step=time_step, cycles=cycles, energy=energy, layer_results=layer_results)

    def run_trace(self, trace: WorkloadTrace) -> SimulationReport:
        """Execute a full multi-time-step workload trace."""
        self.controller.reset()
        step_results = []
        total_cycles = 0.0
        total_energy = EnergyBreakdown()
        for time_step, workloads in enumerate(trace):
            step = self.run_step(workloads, time_step)
            step_results.append(step)
            total_cycles += step.cycles
            total_energy = total_energy + step.energy
        return SimulationReport(
            config_name=self.config.name,
            total_cycles=total_cycles,
            total_energy=total_energy,
            step_results=step_results,
            clock_ghz=self.config.clock_ghz,
        )


@dataclass
class ComparisonResult:
    """Speed-up and energy saving of one configuration relative to a baseline."""

    baseline: SimulationReport
    candidate: SimulationReport

    @property
    def speedup(self) -> float:
        if self.candidate.total_cycles == 0:
            return float("inf")
        return self.baseline.total_cycles / self.candidate.total_cycles

    @property
    def energy_saving(self) -> float:
        baseline_energy = self.baseline.total_energy.total_pj
        if baseline_energy == 0:
            return 0.0
        return 1.0 - self.candidate.total_energy.total_pj / baseline_energy


def compare_to_dense_baseline(
    trace: WorkloadTrace,
    sqdm: AcceleratorConfig | None = None,
    baseline: AcceleratorConfig | None = None,
    energy_table: EnergyTable | None = None,
) -> ComparisonResult:
    """Run a trace on both the SQ-DM accelerator and the dense 2-DPE baseline.

    This is the Fig. 12 (top) comparison: identical multiplier count, the
    only difference being that SQ-DM routes sparse channels through the
    SIGMA-like sparse datapath.
    """
    sqdm = sqdm or sqdm_config()
    baseline = baseline or dense_baseline_config()
    candidate_report = AcceleratorSimulator(sqdm, energy_table).run_trace(trace)
    baseline_report = AcceleratorSimulator(baseline, energy_table).run_trace(trace)
    return ComparisonResult(baseline=baseline_report, candidate=candidate_report)


def retime_trace_precision(trace: WorkloadTrace, weight_bits: int, act_bits: int) -> WorkloadTrace:
    """Copy a trace with every layer's precision replaced (for FP16-vs-4-bit studies)."""
    new_trace: WorkloadTrace = []
    for workloads in trace:
        step = []
        for w in workloads:
            step.append(
                ConvLayerWorkload(
                    name=w.name,
                    in_channels=w.in_channels,
                    out_channels=w.out_channels,
                    kernel_size=w.kernel_size,
                    out_height=w.out_height,
                    out_width=w.out_width,
                    weight_bits=weight_bits,
                    act_bits=act_bits,
                    channel_sparsity=w.channel_sparsity.copy(),
                    block_type=w.block_type,
                )
            )
        new_trace.append(step)
    return new_trace
