"""Layer workload descriptions consumed by the accelerator simulator.

The accelerator does not re-execute the NumPy network; it consumes compact
*workload descriptors*: per-layer convolution geometry, operand precisions
and the per-input-channel activation sparsity observed at a given time step.
These descriptors are produced from the model by
:mod:`repro.core.pipeline` / :mod:`repro.core.sparsity` and can also be
constructed synthetically for unit tests and ablations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np


@dataclass(slots=True)
class ConvLayerWorkload:
    """One convolution layer's execution at one diffusion time step.

    Attributes
    ----------
    name:
        Layer name (e.g. ``enc.16x16_block0.conv0``).
    in_channels / out_channels / kernel_size / out_height / out_width:
        Convolution geometry (stride-1, same-padded convs in EDM).
    weight_bits / act_bits:
        Operand precisions after the SQ-DM quantization policy (4, 8 or 16).
    channel_sparsity:
        Per-input-channel fraction of zero activation values, length
        ``in_channels``; drives the dense/sparse channel grouping.
    block_type:
        The paper's block category, used for cost breakdowns.
    """

    name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    out_height: int
    out_width: int
    weight_bits: int = 16
    act_bits: int = 16
    channel_sparsity: np.ndarray = field(default_factory=lambda: np.zeros(0))
    block_type: str = "Conv+Act"

    def __post_init__(self) -> None:
        self.channel_sparsity = np.asarray(self.channel_sparsity, dtype=np.float64)
        if self.channel_sparsity.size == 0:
            self.channel_sparsity = np.zeros(self.in_channels)
        if self.channel_sparsity.shape != (self.in_channels,):
            raise ValueError(
                f"channel_sparsity must have shape ({self.in_channels},), "
                f"got {self.channel_sparsity.shape}"
            )
        if np.any((self.channel_sparsity < 0) | (self.channel_sparsity > 1)):
            raise ValueError("channel sparsities must lie in [0, 1]")

    def replace(self, **overrides) -> "ConvLayerWorkload":
        """Copy of this workload with selected fields overridden.

        The per-channel sparsity array is copied (not aliased) unless an
        explicit ``channel_sparsity`` override is supplied, so the copy can be
        mutated or re-validated independently of the original.
        """
        overrides.setdefault("channel_sparsity", self.channel_sparsity.copy())
        return dataclasses.replace(self, **overrides)

    # -- derived quantities ---------------------------------------------------

    @property
    def spatial(self) -> int:
        return self.out_height * self.out_width

    @property
    def macs_per_input_channel(self) -> int:
        """MACs contributed by one input channel (all output channels, all pixels)."""
        return self.out_channels * self.kernel_size * self.kernel_size * self.spatial

    @property
    def total_macs(self) -> int:
        return self.in_channels * self.macs_per_input_channel

    @property
    def average_sparsity(self) -> float:
        return float(np.mean(self.channel_sparsity)) if self.in_channels else 0.0

    def weight_bytes(self) -> float:
        """Weight footprint in bytes at the layer's weight precision."""
        elements = self.out_channels * self.in_channels * self.kernel_size * self.kernel_size
        return elements * self.weight_bits / 8.0

    def input_bytes(self, dense_only: bool = True, channel_mask: np.ndarray | None = None) -> float:
        """Input activation footprint in bytes.

        ``channel_mask`` restricts the count to a subset of input channels;
        when ``dense_only`` is false the per-channel sparsity is used to
        count only the nonzero values plus a 1-bit-per-element bitmap
        (the compressed sparse-channel storage of Fig. 10).
        """
        mask = np.ones(self.in_channels, dtype=bool) if channel_mask is None else channel_mask
        per_channel_elems = self.spatial
        if dense_only:
            elements = float(np.count_nonzero(mask)) * per_channel_elems
            return elements * self.act_bits / 8.0
        density = 1.0 - self.channel_sparsity[mask]
        value_bytes = float(np.sum(density)) * per_channel_elems * self.act_bits / 8.0
        bitmap_bytes = float(np.count_nonzero(mask)) * per_channel_elems / 8.0
        return value_bytes + bitmap_bytes

    def output_bytes(self) -> float:
        """Output activation footprint in bytes (stored densely before the PPU)."""
        return self.out_channels * self.spatial * self.act_bits / 8.0


def conv_workload_from_layer(
    name: str,
    conv,
    spatial: tuple[int, int],
    channel_sparsity: np.ndarray | None = None,
    weight_bits: int = 16,
    act_bits: int = 16,
    block_type: str = "Conv+Act",
) -> ConvLayerWorkload:
    """Build a workload descriptor from a :class:`repro.nn.layers.Conv2d` layer."""
    out_h, out_w = spatial
    sparsity = channel_sparsity if channel_sparsity is not None else np.zeros(conv.in_channels)
    return ConvLayerWorkload(
        name=name,
        in_channels=conv.in_channels,
        out_channels=conv.out_channels,
        kernel_size=conv.kernel_size,
        out_height=out_h,
        out_width=out_w,
        weight_bits=weight_bits,
        act_bits=act_bits,
        channel_sparsity=np.asarray(sparsity, dtype=np.float64),
        block_type=block_type,
    )


def random_workload(
    in_channels: int = 64,
    out_channels: int = 64,
    spatial: int = 16,
    kernel_size: int = 3,
    mean_sparsity: float = 0.65,
    sparsity_spread: float = 0.3,
    weight_bits: int = 4,
    act_bits: int = 4,
    seed: int = 0,
    name: str = "synthetic",
) -> ConvLayerWorkload:
    """A synthetic workload with a controllable per-channel sparsity distribution.

    Per-channel sparsities are drawn from a Beta distribution whose mean is
    ``mean_sparsity``; ``sparsity_spread`` widens the distribution so that
    both near-dense and near-empty channels exist, mimicking Fig. 7.
    """
    rng = np.random.default_rng(seed)
    spread = float(np.clip(sparsity_spread, 1e-3, 0.49))
    concentration = (1.0 - spread * 2.0) / (spread * 2.0) + 1e-6
    alpha = max(mean_sparsity * concentration, 1e-3)
    beta = max((1.0 - mean_sparsity) * concentration, 1e-3)
    sparsity = rng.beta(alpha, beta, size=in_channels)
    return ConvLayerWorkload(
        name=name,
        in_channels=in_channels,
        out_channels=out_channels,
        kernel_size=kernel_size,
        out_height=spatial,
        out_width=spatial,
        weight_bits=weight_bits,
        act_bits=act_bits,
        channel_sparsity=sparsity,
    )
