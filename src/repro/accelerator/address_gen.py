"""Sparsity-aware address generation (Fig. 9 / Fig. 10).

The sparsity-aware address generator keeps, for each layer, the channel
classification produced by the temporal sparsity detector (dense vs sparse
plus the channel index), and emits the global-buffer addresses needed to
fetch each channel group: activation channel bursts in channel-last order and
the matching per-input-channel weight bursts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .detector import ChannelClassification
from .memory import ActivationMapping, WeightMapping


@dataclass(slots=True)
class FetchPlan:
    """Address ranges a PE must fetch to process one channel group."""

    channel_order: np.ndarray
    activation_ranges: list[tuple[int, int]]
    weight_ranges: list[tuple[int, int]]

    @property
    def num_channels(self) -> int:
        return int(self.channel_order.size)

    def activation_elements(self) -> int:
        return sum(end - start for start, end in self.activation_ranges)

    def weight_elements(self) -> int:
        return sum(end - start for start, end in self.weight_ranges)

    def is_contiguous_per_channel(self) -> bool:
        """Every per-channel fetch is one contiguous address burst."""
        return all(end > start for start, end in self.activation_ranges)


class SparsityAwareAddressGenerator:
    """Generates per-channel-group fetch plans from a channel classification.

    Parameters
    ----------
    activation_mapping / weight_mapping:
        Channel-last address mappings of the layer's input activations and
        weights.
    """

    def __init__(self, activation_mapping: ActivationMapping, weight_mapping: WeightMapping):
        if activation_mapping.channels != weight_mapping.in_channels:
            raise ValueError(
                "activation and weight mappings disagree on the number of input channels: "
                f"{activation_mapping.channels} vs {weight_mapping.in_channels}"
            )
        self.activation_mapping = activation_mapping
        self.weight_mapping = weight_mapping

    def _plan_for_channels(self, channels: np.ndarray) -> FetchPlan:
        activation_ranges = [self.activation_mapping.channel_slice(int(c)) for c in channels]
        weight_ranges = [self.weight_mapping.channel_slice(int(c)) for c in channels]
        return FetchPlan(
            channel_order=np.asarray(channels, dtype=np.int64),
            activation_ranges=activation_ranges,
            weight_ranges=weight_ranges,
        )

    def dense_plan(self, classification: ChannelClassification) -> FetchPlan:
        """Fetch plan for the dense channel group (processed by the DPE)."""
        return self._plan_for_channels(classification.dense_channels)

    def sparse_plan(self, classification: ChannelClassification) -> FetchPlan:
        """Fetch plan for the sparse channel group (processed by the SPE)."""
        return self._plan_for_channels(classification.sparse_channels)

    def full_plan(self) -> FetchPlan:
        """Fetch plan covering every channel in natural order (dense baseline)."""
        return self._plan_for_channels(np.arange(self.activation_mapping.channels))
