"""Global buffer model and channel-last address mapping (Fig. 10).

The sparsity-aware address generator fetches whole input channels in an
arbitrary (non-contiguous) channel order, because the dense and sparse
channel groups interleave arbitrary channel indices.  To make each such
fetch a contiguous burst, SQ-DM maps activations with the channel index as
the *slowest-varying* (last) address component:

* activations:  address = ((c * H + y) * W + x)      -- W fastest, then H, then C
* weights:      address = ((c * K + k) * R + r) * S + s  -- S fastest, then R, then K, then C

so that all data belonging to input channel ``c`` (for every output channel
``k``) is contiguous.  Sparse channels store only their nonzero values plus a
1-bit-per-element binary indicator, matching the SIGMA-style compressed
operand format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class ActivationMapping:
    """Channel-last address mapping for an activation tensor of shape (C, H, W)."""

    channels: int
    height: int
    width: int

    @property
    def size(self) -> int:
        return self.channels * self.height * self.width

    def address(self, c: int, y: int, x: int) -> int:
        """Linear element address of activation (c, y, x) under channel-last order."""
        self._check(c, y, x)
        return (c * self.height + y) * self.width + x

    def channel_slice(self, c: int) -> tuple[int, int]:
        """(start, end) element-address range occupied by channel ``c``."""
        if not 0 <= c < self.channels:
            raise IndexError(f"channel {c} out of range [0, {self.channels})")
        start = c * self.height * self.width
        return start, start + self.height * self.width

    def _check(self, c: int, y: int, x: int) -> None:
        if not (0 <= c < self.channels and 0 <= y < self.height and 0 <= x < self.width):
            raise IndexError(f"activation index ({c}, {y}, {x}) out of range")

    def linearize(self, tensor: np.ndarray) -> np.ndarray:
        """Flatten a (C, H, W) tensor into channel-last address order."""
        tensor = np.asarray(tensor)
        if tensor.shape != (self.channels, self.height, self.width):
            raise ValueError(
                f"expected shape {(self.channels, self.height, self.width)}, got {tensor.shape}"
            )
        return tensor.reshape(-1)


@dataclass(frozen=True, slots=True)
class WeightMapping:
    """Channel-last address mapping for a weight tensor of shape (K, C, R, S).

    ``K`` is the output channel, ``C`` the input channel, ``R``/``S`` the
    kernel height/width.  The input channel is the slowest-varying index so
    that all weights consuming a given input channel are contiguous and can
    be fetched together with that channel's activations.
    """

    out_channels: int
    in_channels: int
    kernel_h: int
    kernel_w: int

    @property
    def size(self) -> int:
        return self.out_channels * self.in_channels * self.kernel_h * self.kernel_w

    def address(self, k: int, c: int, r: int, s: int) -> int:
        """Linear element address of weight (k, c, r, s) under C-last ordering."""
        if not (
            0 <= k < self.out_channels
            and 0 <= c < self.in_channels
            and 0 <= r < self.kernel_h
            and 0 <= s < self.kernel_w
        ):
            raise IndexError(f"weight index ({k}, {c}, {r}, {s}) out of range")
        return ((c * self.out_channels + k) * self.kernel_h + r) * self.kernel_w + s

    def channel_slice(self, c: int) -> tuple[int, int]:
        """(start, end) element-address range of all weights for input channel ``c``."""
        if not 0 <= c < self.in_channels:
            raise IndexError(f"input channel {c} out of range [0, {self.in_channels})")
        per_channel = self.out_channels * self.kernel_h * self.kernel_w
        start = c * per_channel
        return start, start + per_channel

    def linearize(self, tensor: np.ndarray) -> np.ndarray:
        """Flatten a (K, C, R, S) tensor into channel-last address order."""
        tensor = np.asarray(tensor)
        expected = (self.out_channels, self.in_channels, self.kernel_h, self.kernel_w)
        if tensor.shape != expected:
            raise ValueError(f"expected shape {expected}, got {tensor.shape}")
        return np.transpose(tensor, (1, 0, 2, 3)).reshape(-1)


@dataclass(slots=True)
class SparseChannelRecord:
    """Compressed storage of one sparse activation channel (values + bitmap)."""

    channel: int
    values: np.ndarray
    bitmap: np.ndarray

    @property
    def nonzeros(self) -> int:
        return int(self.values.size)

    def storage_bits(self, value_bits: int) -> int:
        """Total storage of the compressed channel (values + 1-bit indicators)."""
        return self.nonzeros * value_bits + int(self.bitmap.size)

    def decompress(self) -> np.ndarray:
        """Reconstruct the dense channel from values and bitmap."""
        dense = np.zeros(self.bitmap.shape, dtype=np.float64)
        dense[self.bitmap.astype(bool)] = self.values
        return dense


def compress_channel(channel_data: np.ndarray, channel_index: int) -> SparseChannelRecord:
    """Compress one activation channel into (nonzero values, binary indicator)."""
    flat = np.asarray(channel_data, dtype=np.float64).reshape(-1)
    bitmap = (flat != 0.0).astype(np.uint8)
    return SparseChannelRecord(channel=channel_index, values=flat[flat != 0.0], bitmap=bitmap)


@dataclass(slots=True)
class GlobalBuffer:
    """Capacity/traffic model of the shared global buffer.

    Tracks read/write byte counts so the energy model can attribute SRAM
    access energy; raises when a working set exceeds capacity, in which case
    the simulator spills to DRAM.
    """

    capacity_kib: int = 512
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_kib * 1024

    def fits(self, working_set_bytes: float) -> bool:
        return working_set_bytes <= self.capacity_bytes

    def read(self, num_bytes: float) -> None:
        if num_bytes < 0:
            raise ValueError("cannot read a negative number of bytes")
        self.bytes_read += num_bytes

    def write(self, num_bytes: float) -> None:
        if num_bytes < 0:
            raise ValueError("cannot write a negative number of bytes")
        self.bytes_written += num_bytes

    def reset(self) -> None:
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    @property
    def total_traffic_bytes(self) -> float:
        return self.bytes_read + self.bytes_written
