"""Interconnection network between the global buffer and the PEs (Fig. 9).

The accelerator connects the global buffer to the D/S PE array through
configurable routers.  For the small PE counts the paper evaluates (one DPE
plus one SPE, or two DPEs for the baseline) a simple chain/star topology is
sufficient; the model is built on :mod:`networkx` so larger scaled-out
configurations can be explored, and charges per-hop energy and a
bandwidth-limited transfer latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .config import AcceleratorConfig
from .energy import EnergyTable

GLOBAL_BUFFER_NODE = "glb"


@dataclass(slots=True)
class TransferResult:
    """Latency and energy of moving one operand block over the NoC."""

    cycles: float
    energy_pj: float
    hops: int
    bytes_moved: float


class InterconnectNetwork:
    """Router network connecting the global buffer with every PE."""

    def __init__(self, config: AcceleratorConfig, energy_table: EnergyTable):
        self.config = config
        self.energy_table = energy_table
        self.graph = self._build_topology(config)

    @staticmethod
    def _build_topology(config: AcceleratorConfig) -> nx.Graph:
        """Star-of-routers topology: GLB -> router column -> PEs.

        Each PE hangs off its own router; routers form a chain attached to
        the global buffer, mirroring the row of configurable routers (R) in
        Fig. 9.
        """
        graph = nx.Graph()
        graph.add_node(GLOBAL_BUFFER_NODE, kind="buffer")
        previous = GLOBAL_BUFFER_NODE
        pe_names = [f"dpe{i}" for i in range(config.num_dpe)] + [
            f"spe{i}" for i in range(config.num_spe)
        ]
        for index, pe_name in enumerate(pe_names):
            router = f"router{index}"
            graph.add_node(router, kind="router")
            graph.add_edge(previous, router)
            graph.add_node(pe_name, kind="pe")
            graph.add_edge(router, pe_name)
            previous = router
        return graph

    def pe_nodes(self) -> list[str]:
        return [n for n, data in self.graph.nodes(data=True) if data.get("kind") == "pe"]

    def hops_to(self, pe_name: str) -> int:
        """Number of router hops between the global buffer and a PE."""
        if pe_name not in self.graph:
            raise KeyError(f"unknown PE {pe_name!r}; available: {self.pe_nodes()}")
        return nx.shortest_path_length(self.graph, GLOBAL_BUFFER_NODE, pe_name)

    def transfer(self, pe_name: str, num_bytes: float) -> TransferResult:
        """Move ``num_bytes`` between the global buffer and ``pe_name``."""
        if num_bytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        hops = self.hops_to(pe_name)
        cycles = num_bytes / self.config.noc_bandwidth_bytes_per_cycle
        energy = num_bytes * hops * self.energy_table.noc_pj_per_byte_hop
        return TransferResult(cycles=cycles, energy_pj=energy, hops=hops, bytes_moved=num_bytes)

    def broadcast(self, num_bytes: float) -> TransferResult:
        """Broadcast the same data (e.g. shared weights) to every PE."""
        results = [self.transfer(pe, num_bytes) for pe in self.pe_nodes()]
        total_energy = sum(r.energy_pj for r in results)
        max_cycles = max((r.cycles for r in results), default=0.0)
        max_hops = max((r.hops for r in results), default=0)
        return TransferResult(
            cycles=max_cycles,
            energy_pj=total_energy,
            hops=max_hops,
            bytes_moved=num_bytes * len(results),
        )
