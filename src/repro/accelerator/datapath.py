"""Cycle and energy models of the dense (MAERI-like) and sparse (SIGMA-like) datapaths.

Both PE datapaths contain the same number of multiplier lanes.  Lanes operate
on FP16 operands natively and are packed 2x for INT8 and 4x for INT4, the
computational-equivalence assumption stated in Sec. III-A of the paper.

* The **dense datapath** (MAERI-style augmented reduction tree) streams dense
  channel groups through a vector MAC array; every multiplier does useful
  work each cycle apart from pipeline fill/drain on tile boundaries, so it
  handles irregular matrix sizes with high utilization.
* The **sparse datapath** (SIGMA-style flexible distribution + reduction
  network) consumes compressed channels (nonzero values + bitmaps) and only
  spends multiplier cycles on nonzero activations.  Its benefit is
  proportional to the sparsity of the channels routed to it; its cost is a
  modest utilization derating plus per-nonzero bookkeeping overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import PEConfig
from .energy import EnergyBreakdown, EnergyTable


def precision_packing_factor(bits: int) -> float:
    """Operands processed per FP16 lane per cycle at the given precision."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    return max(16.0 / bits, 1.0)


@dataclass(slots=True)
class DatapathResult:
    """Latency and energy of executing one channel-group workload on a datapath."""

    cycles: float
    energy: EnergyBreakdown
    macs_executed: float
    macs_skipped: float

    @property
    def effective_utilization(self) -> float:
        total = self.macs_executed + self.macs_skipped
        return self.macs_executed / total if total > 0 else 0.0


class DenseDatapath:
    """MAERI-like vector MAC datapath processing dense channel groups."""

    def __init__(self, pe_config: PEConfig, energy_table: EnergyTable):
        self.config = pe_config
        self.energy_table = energy_table

    def throughput_macs_per_cycle(self, bits: int) -> float:
        return self.config.multipliers * precision_packing_factor(bits)

    def execute(
        self,
        macs: float,
        weight_bits: int,
        act_bits: int,
        input_bytes: float,
        weight_bytes: float,
        output_bytes: float,
    ) -> DatapathResult:
        """Run ``macs`` dense multiply-accumulates through the array.

        ``input_bytes``/``weight_bytes``/``output_bytes`` are the local
        buffer traffic charged to this group (operands are staged in the PE
        buffers; global-buffer and DRAM traffic are charged by the
        controller).
        """
        op_bits = max(weight_bits, act_bits)
        throughput = self.throughput_macs_per_cycle(op_bits)
        compute_cycles = macs / throughput if macs > 0 else 0.0
        cycles = compute_cycles + (self.config.pipeline_overhead_cycles if macs > 0 else 0.0)

        energy = EnergyBreakdown(
            mac_pj=macs * self.energy_table.mac_energy(op_bits),
            local_buffer_pj=(input_bytes + weight_bytes + output_bytes)
            * self.energy_table.local_buffer_pj_per_byte,
            idle_pj=cycles * self.energy_table.idle_pj_per_cycle_per_pe,
        )
        return DatapathResult(cycles=cycles, energy=energy, macs_executed=macs, macs_skipped=0.0)


class SparseDatapath:
    """SIGMA-like datapath that skips zero-valued activations.

    Only nonzero activation values are multiplied; the bitmap decode and the
    flexible distribution network add a small per-nonzero overhead and a
    utilization derating relative to the dense array.
    """

    def __init__(self, pe_config: PEConfig, energy_table: EnergyTable):
        self.config = pe_config
        self.energy_table = energy_table

    def throughput_macs_per_cycle(self, bits: int) -> float:
        return (
            self.config.multipliers
            * precision_packing_factor(bits)
            * self.config.sparse_utilization
        )

    def execute(
        self,
        total_macs: float,
        nonzero_fraction: float,
        weight_bits: int,
        act_bits: int,
        input_bytes: float,
        weight_bytes: float,
        output_bytes: float,
    ) -> DatapathResult:
        """Run a sparse channel group: only ``nonzero_fraction`` of MACs execute."""
        if not 0.0 <= nonzero_fraction <= 1.0:
            raise ValueError("nonzero_fraction must be in [0, 1]")
        op_bits = max(weight_bits, act_bits)
        effective_macs = total_macs * nonzero_fraction
        skipped = total_macs - effective_macs

        throughput = self.throughput_macs_per_cycle(op_bits)
        compute_cycles = effective_macs / throughput if effective_macs > 0 else 0.0
        overhead_cycles = effective_macs / 1024.0 * self.config.sparse_overhead_per_kmac
        cycles = compute_cycles + overhead_cycles
        if total_macs > 0:
            cycles += self.config.pipeline_overhead_cycles

        energy = EnergyBreakdown(
            mac_pj=effective_macs * self.energy_table.mac_energy(op_bits),
            local_buffer_pj=(input_bytes + weight_bytes + output_bytes)
            * self.energy_table.local_buffer_pj_per_byte,
            idle_pj=cycles * self.energy_table.idle_pj_per_cycle_per_pe,
        )
        return DatapathResult(
            cycles=cycles, energy=energy, macs_executed=effective_macs, macs_skipped=skipped
        )


def balance_point(
    dense_work: float, sparse_work_effective: float
) -> float:
    """Imbalance metric between the dense and sparse PE (0 = perfectly balanced).

    Used by the threshold analysis (Fig. 11, left): the 30% threshold is
    chosen so that the dense PE's work and the sparse PE's effective work are
    roughly equal, which minimizes the makespan ``max(dense, sparse)``.
    """
    total = dense_work + sparse_work_effective
    if total == 0:
        return 0.0
    return abs(dense_work - sparse_work_effective) / total
