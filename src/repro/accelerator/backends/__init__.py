"""Pluggable simulation engines for the SQ-DM accelerator model.

The simulator facade (:class:`repro.accelerator.AcceleratorSimulator`)
delegates trace execution to one of the backends registered here:

``reference``
    The stateful per-layer controller loop — semantic ground truth, exposes
    per-PE results and traffic counters.
``vectorized``
    Whole-trace batched NumPy evaluation — equivalent reports (to
    floating-point round-off), an order of magnitude faster; the default.

Select a backend by name (``AcceleratorSimulator(cfg, backend="reference")``)
or set the ``REPRO_SIM_BACKEND`` environment variable to change the process
default.
"""

from __future__ import annotations

import os

from ..config import AcceleratorConfig
from ..energy import EnergyTable
from .base import DetectorStats, SimulationBackend
from .reference import ReferenceBackend
from .vectorized import VectorizedBackend

_BACKENDS = {
    ReferenceBackend.name: ReferenceBackend,
    VectorizedBackend.name: VectorizedBackend,
}

#: Backend used when no explicit choice is made.
DEFAULT_BACKEND = os.environ.get("REPRO_SIM_BACKEND", VectorizedBackend.name)


def available_backends() -> list[str]:
    """Names of the registered simulation backends."""
    return sorted(_BACKENDS)


def get_backend(
    name: str, config: AcceleratorConfig, energy_table: EnergyTable | None = None
) -> SimulationBackend:
    """Instantiate a registered backend by name."""
    try:
        backend_cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {name!r}; available: {available_backends()}"
        ) from None
    return backend_cls(config, energy_table)


__all__ = [
    "DEFAULT_BACKEND",
    "DetectorStats",
    "ReferenceBackend",
    "SimulationBackend",
    "VectorizedBackend",
    "available_backends",
    "get_backend",
]
