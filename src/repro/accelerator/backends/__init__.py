"""Pluggable simulation engines for the SQ-DM accelerator model.

The simulator facade (:class:`repro.accelerator.AcceleratorSimulator`)
delegates trace execution to one of the backends registered here:

``reference``
    The stateful per-layer controller loop — semantic ground truth, exposes
    per-PE results and traffic counters.
``vectorized``
    Whole-trace batched NumPy evaluation — equivalent reports (to
    floating-point round-off), an order of magnitude faster; the default.

Select a backend by name (``AcceleratorSimulator(cfg, backend="reference")``)
or set the ``REPRO_SIM_BACKEND`` environment variable to change the process
default.
"""

from __future__ import annotations

import os

from ..config import AcceleratorConfig
from ..energy import EnergyTable
from .base import DetectorStats, SimulationBackend
from .reference import ReferenceBackend
from .vectorized import VectorizedBackend

_BACKENDS = {
    ReferenceBackend.name: ReferenceBackend,
    VectorizedBackend.name: VectorizedBackend,
}

#: Environment variable overriding the process-default backend.
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

#: Backend used when no explicit choice is made (import-time snapshot; prefer
#: :func:`resolve_backend_name`, which re-reads the environment and validates).
DEFAULT_BACKEND = os.environ.get(BACKEND_ENV_VAR, VectorizedBackend.name)


def available_backends() -> list[str]:
    """Names of the registered simulation backends."""
    return sorted(_BACKENDS)


def resolve_backend_name(name: str | None = None) -> str:
    """Validate a backend choice eagerly, before any simulation work starts.

    ``name=None`` resolves the process default: the ``REPRO_SIM_BACKEND``
    environment variable if set, else ``"vectorized"``.  Unknown names fail
    here — at simulator/cache construction — with a message naming the origin
    of the bad value and listing the registered backends, instead of
    surfacing later as a lookup failure mid-sweep.
    """
    if name is None:
        requested = os.environ.get(BACKEND_ENV_VAR, "").strip() or VectorizedBackend.name
        origin = f"environment variable {BACKEND_ENV_VAR}"
    else:
        requested = name
        origin = "backend argument"
    if requested not in _BACKENDS:
        raise ValueError(
            f"unknown simulation backend {requested!r} (from {origin}); "
            f"registered backends: {available_backends()}"
        )
    return requested


def get_backend(
    name: str, config: AcceleratorConfig, energy_table: EnergyTable | None = None
) -> SimulationBackend:
    """Instantiate a registered backend by name."""
    try:
        backend_cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {name!r}; available: {available_backends()}"
        ) from None
    return backend_cls(config, energy_table)


__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "DetectorStats",
    "ReferenceBackend",
    "SimulationBackend",
    "VectorizedBackend",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
]
