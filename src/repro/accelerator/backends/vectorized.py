"""Vectorized simulation backend: whole-trace evaluation as batched array ops.

The reference backend pays one Python-level ``execute_layer`` call — dozens
of small NumPy operations, ``EnergyBreakdown`` additions and a networkx
shortest-path query per PE — for every layer of every time step.  On the
paper's evaluation traces that per-layer dispatch dominates the entire
benchmark suite's runtime.

This engine removes it.  A :class:`~repro.accelerator.simulator.WorkloadTrace`
is flattened into ``(num_entries,)`` scalar arrays (one entry per layer per
time step) plus a padded ``(num_entries, max_channels)`` sparsity matrix, and
every quantity of the analytical model — dense/sparse channel grouping with
the temporal detector's update schedule, per-PE channel-chunk sizes, MAC /
cycle / energy tallies, NoC hop costs, global-buffer and DRAM traffic — is
computed for all entries at once.  The resulting
:class:`~repro.accelerator.simulator.SimulationReport` matches the reference
backend's (same structure, per-layer results included) to floating-point
round-off: summation orders differ slightly, so totals agree to ~1e-12
relative rather than bit-for-bit, well inside the 1e-9 equivalence bound the
test suite enforces.

Intentional difference: per-PE :class:`ChannelGroupResult` lists are omitted
(``LayerExecutionResult.pe_results`` stays empty) — use the reference backend
when per-PE introspection is needed.
"""

from __future__ import annotations

import numpy as np

from ..config import AcceleratorConfig
from ..energy import DEFAULT_ENERGY_TABLE, EnergyBreakdown, EnergyTable
from ..noc import InterconnectNetwork
from ..workload import ConvLayerWorkload
from .base import DetectorStats

#: Thresholds replicating the controller's degenerate classifications: a
#: dense-only array treats every channel as dense, a sparse-only array as
#: sparse (see :meth:`AcceleratorController.classify`).
_ALL_DENSE_THRESHOLD = 1.1
_ALL_SPARSE_THRESHOLD = -0.1


def _chunk_counts(totals: np.ndarray, parts: int) -> np.ndarray:
    """Per-chunk sizes of ``np.array_split(range(n), parts)`` for each n in ``totals``.

    ``array_split`` gives the first ``n % parts`` chunks one extra element;
    this reproduces those sizes as a ``(len(totals), parts)`` integer array
    without materializing any index lists.
    """
    base = totals // parts
    remainder = totals % parts
    chunk_index = np.arange(parts)
    return base[:, None] + (chunk_index[None, :] < remainder[:, None])


class VectorizedBackend:
    """Evaluates an entire workload trace with batched NumPy operations."""

    name = "vectorized"

    def __init__(self, config: AcceleratorConfig, energy_table: EnergyTable | None = None):
        self.config = config
        self.energy_table = energy_table or DEFAULT_ENERGY_TABLE
        self.detector_stats = DetectorStats()
        # Hop counts per PE, in controller dispatch order (DPEs then SPEs),
        # taken from the same NoC topology the reference backend charges.
        noc = InterconnectNetwork(config, self.energy_table)
        pe_order = [f"dpe{i}" for i in range(config.num_dpe)] + [
            f"spe{i}" for i in range(config.num_spe)
        ]
        self._hops = np.array([noc.hops_to(name) for name in pe_order], dtype=np.float64)

    def reset(self) -> None:
        self.detector_stats.reset()

    # -- classification schedule ---------------------------------------------------

    def _classification_sources(self, entries: list[tuple[int, int, ConvLayerWorkload]]) -> np.ndarray:
        """For each entry, the entry index whose sparsity sets its dense/sparse split.

        Mirrors :class:`TemporalSparsityDetector`: a layer's classification is
        refreshed when first seen and whenever ``update_period`` time steps
        have elapsed since its last refresh; between refreshes the stale
        channel grouping (computed from the refresh step's sparsity) is reused
        while the *current* sparsity still drives the datapath work.  Each
        trace of a batch carries its own detector state — classifications
        never leak across traces, so batched results match per-trace runs.
        """
        source = np.arange(len(entries), dtype=np.int64)
        period = self.config.sparsity_update_period
        last_update: dict[tuple[int, str], tuple[int, int]] = {}
        updates = 0
        channels_evaluated = 0
        for index, (trace_idx, time_step, workload) in enumerate(entries):
            previous = last_update.get((trace_idx, workload.name))
            if previous is None or time_step - previous[0] >= period:
                last_update[(trace_idx, workload.name)] = (time_step, index)
                updates += 1
                channels_evaluated += workload.in_channels
            else:
                source[index] = previous[1]
        self.detector_stats.updates_performed = updates
        self.detector_stats.channels_evaluated = channels_evaluated
        return source

    # -- trace execution ---------------------------------------------------------

    def run_trace(self, trace: "list[list[ConvLayerWorkload]]"):
        """Execute a full multi-time-step workload trace."""
        return self.run_traces([trace])[0]

    def _zero_report(self, trace: "list[list[ConvLayerWorkload]]"):
        from ..simulator import SimulationReport, StepResult

        return SimulationReport(
            config_name=self.config.name,
            total_cycles=0.0,
            total_energy=EnergyBreakdown(),
            step_results=[
                StepResult(time_step=t, cycles=0.0, energy=EnergyBreakdown())
                for t in range(len(trace))
            ],
            clock_ghz=self.config.clock_ghz,
        )

    def run_traces(
        self, traces: "list[list[list[ConvLayerWorkload]]]"
    ) -> "list":
        """Execute several traces on this configuration in one batched pass.

        The cross-trace entry point behind fleet sweeps: all (trace, time
        step, layer) cells are flattened into one entry axis and every array
        quantity is computed for the whole batch at once, so N queued traces
        sharing an :class:`AcceleratorConfig` cost one NumPy pass instead of
        N.  Per-trace results are bit-identical to ``run_trace`` runs — the
        per-entry math is row-independent and each trace keeps its own
        detector schedule — and :attr:`detector_stats` holds the batch totals.
        """
        from ..controller import LayerExecutionResult
        from ..simulator import SimulationReport, StepResult

        self.reset()
        entries = [
            (trace_idx, t, w)
            for trace_idx, trace in enumerate(traces)
            for t, workloads in enumerate(trace)
            for w in workloads
        ]
        num_entries = len(entries)
        if num_entries == 0:
            return [self._zero_report(trace) for trace in traces]

        config = self.config
        table = self.energy_table
        num_dpe, num_spe = config.num_dpe, config.num_spe

        # --- per-entry scalar arrays ------------------------------------------
        # One pass over the workloads extracts the raw geometry; every derived
        # quantity (footprints, MAC counts) is then computed as array math,
        # reproducing the ConvLayerWorkload formulas exactly (integer-valued
        # float64 products are exact well past these magnitudes).
        workloads = [w for _, _, w in entries]
        raw = np.array(
            [
                (w.in_channels, w.out_channels, w.kernel_size, w.out_height, w.out_width,
                 w.weight_bits, w.act_bits)
                for w in workloads
            ],
            dtype=np.float64,
        )
        in_channels = raw[:, 0].astype(np.int64)
        out_channels = raw[:, 1]
        kernel_sq = raw[:, 2] * raw[:, 2]
        spatial = raw[:, 3] * raw[:, 4]
        weight_bits = raw[:, 5]
        act_bits = raw[:, 6]
        op_bits = np.maximum(weight_bits, act_bits).astype(np.int64)
        macs_per_channel = out_channels * kernel_sq * spatial
        weight_bytes_total = out_channels * raw[:, 0] * kernel_sq * weight_bits / 8.0
        output_bytes = out_channels * spatial * act_bits / 8.0
        input_bytes_full = raw[:, 0] * spatial * act_bits / 8.0
        total_macs = raw[:, 0] * macs_per_channel
        channels_div = np.maximum(raw[:, 0], 1.0)

        # MAC energy and lane packing per entry (few distinct precisions).
        mac_energy = np.empty(num_entries, dtype=np.float64)
        packing = np.empty(num_entries, dtype=np.float64)
        for bits in np.unique(op_bits):
            selected = op_bits == bits
            mac_energy[selected] = table.mac_energy(int(bits))
            packing[selected] = max(16.0 / float(bits), 1.0)
        dense_throughput = config.pe.multipliers * packing
        sparse_throughput = dense_throughput * config.pe.sparse_utilization
        pipeline_overhead = float(config.pe.pipeline_overhead_cycles)

        # --- padded channel-sparsity matrices ---------------------------------
        max_channels = max(1, int(in_channels.max()))
        sparsity_now = np.zeros((num_entries, max_channels), dtype=np.float64)
        for row, workload in enumerate(workloads):
            sparsity_now[row, : workload.in_channels] = workload.channel_sparsity
        valid = np.arange(max_channels)[None, :] < in_channels[:, None]

        if num_spe == 0:
            threshold = _ALL_DENSE_THRESHOLD
            sparsity_src = sparsity_now
        elif num_dpe == 0:
            threshold = _ALL_SPARSE_THRESHOLD
            sparsity_src = sparsity_now
        else:
            threshold = config.sparsity_threshold
            sparsity_src = sparsity_now[self._classification_sources(entries)]

        sparse_mask = (sparsity_src >= threshold) & valid
        dense_mask = valid & ~sparse_mask
        num_dense = dense_mask.sum(axis=1)
        num_sparse = sparse_mask.sum(axis=1)

        # --- dense PE chunks --------------------------------------------------
        if num_dpe:
            dense_counts = _chunk_counts(num_dense, num_dpe).astype(np.float64)
            dense_macs = dense_counts * macs_per_channel[:, None]
            dense_cycles_pe = dense_macs / dense_throughput[:, None] + pipeline_overhead * (
                dense_macs > 0
            )
            dense_input_bytes = dense_counts * spatial[:, None] * act_bits[:, None] / 8.0
            dense_weight_bytes = weight_bytes_total[:, None] * (
                dense_counts / channels_div[:, None]
            )
            dense_cycles = dense_cycles_pe.max(axis=1)
        else:
            dense_counts = np.zeros((num_entries, 0))
            dense_macs = dense_cycles_pe = dense_input_bytes = dense_weight_bytes = dense_counts
            dense_cycles = np.zeros(num_entries)

        # --- sparse PE chunks -------------------------------------------------
        if num_spe:
            # Densities of the sparse channels, compacted to the front of each
            # row in ascending channel order (matching np.flatnonzero), so
            # array_split chunk sums become prefix-sum differences.
            sparse_density = np.where(sparse_mask, 1.0 - sparsity_now, 0.0)
            front_order = np.argsort(~sparse_mask, axis=1, kind="stable")
            compacted = np.take_along_axis(sparse_density, front_order, axis=1)
            prefix = np.zeros((num_entries, max_channels + 1), dtype=np.float64)
            np.cumsum(compacted, axis=1, out=prefix[:, 1:])

            sparse_counts = _chunk_counts(num_sparse, num_spe)
            chunk_ends = np.cumsum(sparse_counts, axis=1)
            chunk_starts = chunk_ends - sparse_counts
            density_sums = np.take_along_axis(prefix, chunk_ends, axis=1) - np.take_along_axis(
                prefix, chunk_starts, axis=1
            )
            sparse_counts = sparse_counts.astype(np.float64)

            sparse_group_macs = sparse_counts * macs_per_channel[:, None]
            nonzero_fraction = np.divide(
                density_sums,
                sparse_counts,
                out=np.zeros_like(density_sums),
                where=sparse_counts > 0,
            )
            effective_macs = sparse_group_macs * nonzero_fraction
            sparse_cycles_pe = (
                effective_macs / sparse_throughput[:, None]
                + effective_macs / 1024.0 * config.pe.sparse_overhead_per_kmac
                + pipeline_overhead * (sparse_group_macs > 0)
            )
            sparse_input_bytes = (
                density_sums * spatial[:, None] * act_bits[:, None] / 8.0
                + sparse_counts * spatial[:, None] / 8.0
            )
            sparse_weight_bytes = weight_bytes_total[:, None] * (
                sparse_counts / channels_div[:, None]
            )
            sparse_cycles = sparse_cycles_pe.max(axis=1)
        else:
            empty = np.zeros((num_entries, 0))
            sparse_group_macs = effective_macs = sparse_cycles_pe = empty
            sparse_input_bytes = sparse_weight_bytes = empty
            sparse_cycles = np.zeros(num_entries)

        # --- per-entry roll-ups -----------------------------------------------
        executed_dense = dense_macs.sum(axis=1)
        executed_sparse = effective_macs.sum(axis=1)
        executed = executed_dense + executed_sparse

        # Per-PE GLB<->PE traffic (operands + partial-sum writeback), in
        # controller dispatch order so NoC hop counts line up.
        pe_bytes = np.concatenate(
            [
                dense_input_bytes + dense_weight_bytes + output_bytes[:, None],
                sparse_input_bytes + sparse_weight_bytes + output_bytes[:, None],
            ],
            axis=1,
        )
        glb_bytes = pe_bytes.sum(axis=1)
        noc_cycles = pe_bytes.max(axis=1) / config.noc_bandwidth_bytes_per_cycle
        noc_pj = (pe_bytes * self._hops[None, :]).sum(axis=1) * table.noc_pj_per_byte_hop

        mac_pj = executed * mac_energy
        local_buffer_pj = glb_bytes * table.local_buffer_pj_per_byte
        global_buffer_pj = glb_bytes * table.global_buffer_pj_per_byte
        idle_pj = (
            dense_cycles_pe.sum(axis=1) + sparse_cycles_pe.sum(axis=1)
        ) * table.idle_pj_per_cycle_per_pe
        detector_pj = (num_dpe + num_spe) * out_channels * table.detector_pj_per_channel

        working_set = weight_bytes_total + input_bytes_full + output_bytes
        capacity = float(config.global_buffer_kib * 1024)
        dram_pj = np.where(working_set > capacity, working_set - capacity, 0.0) * (
            table.dram_pj_per_byte
        )

        compute_cycles = np.maximum(dense_cycles, sparse_cycles)
        layer_cycles = np.maximum(compute_cycles, noc_cycles)

        # --- report assembly --------------------------------------------------
        # Bulk-convert to Python scalars once; per-element float() casts in the
        # construction loop would dominate the backend's runtime.
        energy_columns = [
            mac_pj,
            local_buffer_pj,
            global_buffer_pj,
            dram_pj,
            noc_pj,
            detector_pj,
            idle_pj,
        ]
        per_layer = list(
            zip(
                layer_cycles.tolist(),
                total_macs.tolist(),
                executed.tolist(),
                num_dense.tolist(),
                num_sparse.tolist(),
                dense_cycles.tolist(),
                sparse_cycles.tolist(),
                *[column.tolist() for column in energy_columns],
            )
        )
        layer_results = [
            LayerExecutionResult(
                layer_name=workloads[i].name,
                cycles=row[0],
                energy=EnergyBreakdown(*row[7:]),
                total_macs=row[1],
                executed_macs=row[2],
                dense_channels=row[3],
                sparse_channels=row[4],
                dense_cycles=row[5],
                sparse_cycles=row[6],
            )
            for i, row in enumerate(per_layer)
        ]

        # Step boundaries in the flattened (trace-major) entry order;
        # exclusive-prefix sums handle empty steps without special cases.
        # The cumsum is zero-based per trace segment so every per-step sum is
        # the same float operation sequence as a single-trace run — batched
        # reports are bit-identical, not merely close.
        step_sizes = np.array(
            [len(step) for trace in traces for step in trace], dtype=np.int64
        )
        ends = np.cumsum(step_sizes)
        starts = ends - step_sizes
        stacked = np.column_stack([layer_cycles, *energy_columns])
        per_step: list[list[float]] = []
        step_cursor = 0
        for trace in traces:
            num_steps = len(trace)
            seg_start = int(starts[step_cursor]) if num_steps else 0
            seg_end = int(ends[step_cursor + num_steps - 1]) if num_steps else 0
            segment = stacked[seg_start:seg_end]
            seg_prefix = np.zeros((segment.shape[0] + 1, stacked.shape[1]), dtype=np.float64)
            np.cumsum(segment, axis=0, out=seg_prefix[1:])
            seg_ends = ends[step_cursor : step_cursor + num_steps] - seg_start
            seg_starts = starts[step_cursor : step_cursor + num_steps] - seg_start
            per_step.extend((seg_prefix[seg_ends] - seg_prefix[seg_starts]).tolist())
            step_cursor += num_steps

        reports = []
        global_step = 0
        for trace in traces:
            step_results = []
            total_energy = EnergyBreakdown()
            total_cycles = 0.0
            for time_step in range(len(trace)):
                row = per_step[global_step]
                step = StepResult(
                    time_step=time_step,
                    cycles=row[0],
                    energy=EnergyBreakdown(*row[1:]),
                    layer_results=layer_results[starts[global_step] : ends[global_step]],
                )
                step_results.append(step)
                total_cycles += step.cycles
                total_energy = total_energy + step.energy
                global_step += 1
            reports.append(
                SimulationReport(
                    config_name=config.name,
                    total_cycles=total_cycles,
                    total_energy=total_energy,
                    step_results=step_results,
                    clock_ghz=config.clock_ghz,
                )
            )
        return reports
