"""Vectorized simulation backend: whole-trace evaluation as batched array ops.

The reference backend pays one Python-level ``execute_layer`` call — dozens
of small NumPy operations, ``EnergyBreakdown`` additions and a networkx
shortest-path query per PE — for every layer of every time step.  On the
paper's evaluation traces that per-layer dispatch dominates the entire
benchmark suite's runtime.

This engine removes it.  A :class:`~repro.accelerator.simulator.WorkloadTrace`
is flattened into ``(num_entries,)`` scalar arrays (one entry per layer per
time step) plus a padded ``(num_entries, max_channels)`` sparsity matrix, and
every quantity of the analytical model — dense/sparse channel grouping with
the temporal detector's update schedule, per-PE channel-chunk sizes, MAC /
cycle / energy tallies, NoC hop costs, global-buffer and DRAM traffic — is
computed for all entries at once.  Reports materialized from the result match
the reference backend's (same structure, per-layer results included) to
floating-point round-off: summation orders differ slightly, so totals agree
to ~1e-12 relative rather than bit-for-bit, well inside the 1e-9 equivalence
bound the test suite enforces.

Batching happens on two axes:

* *cross-trace* (PR 2): :meth:`VectorizedBackend.run_traces` fuses N traces
  sharing one configuration into a single pass;
* *cross-config* (PR 6): :func:`run_config_traces` additionally stacks the
  per-config scalar parameters (PE counts, thresholds, multiplier and
  packing factors, clocks, buffer capacities, NoC hop tables) into arrays
  aligned with the flattened entry axis, so a whole design-space sweep —
  many configurations, each over many traces — is one NumPy pass.
  Configurations whose PE counts differ are padded to the widest PE axis in
  the batch and masked; every per-entry quantity stays row-independent, so
  each report is bit-identical to a solo ``run_trace`` of that
  (config, trace) pair.

The kernel's native output is columnar (this revision):
:func:`run_config_traces_columnar` returns a
:class:`~repro.core.columnar.ColumnarReportBatch` — the whole result grid as
contiguous arrays plus offset tables, with **zero** per-entry Python object
construction.  :func:`run_config_traces` is now just the materializing
wrapper (``.report_lists()``), kept for callers that want eager objects.
Two further hot-path savings ride on the same restructure:

* *unique-trace dedup*: a sweep points many configurations at the same
  trace objects, so workload-geometry extraction, the sparsity matrix and
  the detector schedule are computed once per **unique** trace at cell
  granularity and fanned out to (config, trace) entries by fancy-indexed
  gathers — value-copying, hence bit-identical to per-entry extraction.
* *detector schedules per (trace, period)*: the classification-refresh
  schedule depends only on the trace's (step, layer-name) sequence and the
  config's update period, so it is memoized per (unique trace, period)
  instead of re-walked per (config, trace) pair.

Intentional difference: per-PE :class:`ChannelGroupResult` lists are omitted
(``LayerExecutionResult.pe_results`` stays empty) — use the reference backend
when per-PE introspection is needed.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

import numpy as np

from ...core.columnar import ColumnarReportBatch
from ...core.telemetry import COUNT_BUCKETS, get_registry
from ..config import AcceleratorConfig
from ..energy import DEFAULT_ENERGY_TABLE, EnergyTable
from ..noc import InterconnectNetwork
from ..workload import ConvLayerWorkload
from .base import DetectorStats

# Kernel telemetry: how long each batched NumPy pass takes and how it was
# shaped (configs fused per call, flattened entry rows per call).
_KERNEL_SECONDS = get_registry().histogram(
    "repro_kernel_duration_seconds", "Wall time of one batched simulation kernel call."
)
_KERNEL_CONFIGS = get_registry().histogram(
    "repro_kernel_batch_configs",
    "Configurations fused into one kernel call.",
    buckets=COUNT_BUCKETS,
)
_KERNEL_ENTRIES = get_registry().histogram(
    "repro_kernel_batch_entries",
    "Flattened (config, trace, step, layer) rows per kernel call.",
    buckets=COUNT_BUCKETS,
)

#: Thresholds replicating the controller's degenerate classifications: a
#: dense-only array treats every channel as dense, a sparse-only array as
#: sparse (see :meth:`AcceleratorController.classify`).
_ALL_DENSE_THRESHOLD = 1.1
_ALL_SPARSE_THRESHOLD = -0.1


def _chunk_counts(
    totals: np.ndarray, parts: "np.ndarray | int", width: int | None = None
) -> np.ndarray:
    """Per-chunk sizes of ``np.array_split(range(n), p)`` for each (n, p) pair.

    ``array_split`` gives the first ``n % p`` chunks one extra element; this
    reproduces those sizes as a ``(len(totals), width)`` integer array without
    materializing any index lists.  ``parts`` is either one PE count shared by
    every row or a per-row array (the cross-config batch); rows whose count is
    below ``width`` are zero-padded on the right.
    """
    parts = np.asarray(parts, dtype=np.int64)
    per_row = parts.ndim > 0
    if width is None:
        width = int(parts.max(initial=0)) if per_row else int(parts)
    safe = np.maximum(parts, 1)
    base = totals // safe
    remainder = totals % safe
    chunk_index = np.arange(width)
    counts = base[:, None] + (chunk_index[None, :] < remainder[:, None])
    if per_row:
        counts = np.where(chunk_index[None, :] < parts[:, None], counts, 0)
    return counts


def _trace_schedule(
    trace: "list[list[ConvLayerWorkload]]", period: int
) -> "tuple[np.ndarray, int, int]":
    """Per-cell classification sources of one trace under one update period.

    Mirrors :class:`TemporalSparsityDetector`: a layer's classification is
    refreshed when first seen and whenever ``period`` time steps have elapsed
    since its last refresh; between refreshes the stale channel grouping
    (computed from the refresh step's sparsity) is reused while the *current*
    sparsity still drives the datapath work.  The schedule depends only on
    the trace's (time step, layer name, channel count) sequence and the
    period — not on which (config, trace) batch slot replays it — so the
    kernel computes it once per (unique trace, period) and offsets the
    returned trace-relative indices into each pair's entry range.  Every pair
    still carries its *own* detector state; sharing the schedule is pure
    memoization, bit-identical to walking each pair separately.

    Returns ``(source, updates_performed, channels_evaluated)`` with
    ``source[i]`` the trace-relative cell index whose sparsity sets cell
    ``i``'s dense/sparse split.
    """
    num_cells = sum(len(workloads) for workloads in trace)
    source = np.arange(num_cells, dtype=np.int64)
    last_update: dict[str, tuple[int, int]] = {}
    updates = 0
    channels = 0
    index = 0
    for time_step, workloads in enumerate(trace):
        for workload in workloads:
            previous = last_update.get(workload.name)
            if previous is None or time_step - previous[0] >= period:
                last_update[workload.name] = (time_step, index)
                updates += 1
                channels += workload.in_channels
            else:
                source[index] = previous[1]
            index += 1
    return source, updates, channels


#: Hop-count memo keyed by PE-array shape: the chain-of-routers topology (and
#: hence every GLB->PE hop count) is fully determined by (num_dpe, num_spe),
#: so sweeps over other knobs skip the networkx graph build entirely.  LRU
#: with a small cap so adversarial many-shape sweeps can't grow it without
#: bound; the lock only guards the OrderedDict bookkeeping — the networkx
#: build runs outside it, and a racing double-compute stores equal values.
_HOPS_CACHE: "OrderedDict[tuple[int, int], np.ndarray]" = OrderedDict()
_HOPS_CACHE_MAX = 32
_HOPS_CACHE_LOCK = threading.Lock()


def _config_hops(config: AcceleratorConfig, energy_table: EnergyTable) -> np.ndarray:
    """Hop counts per PE in controller dispatch order (DPEs then SPEs)."""
    shape = (config.num_dpe, config.num_spe)
    with _HOPS_CACHE_LOCK:
        cached = _HOPS_CACHE.get(shape)
        if cached is not None:
            _HOPS_CACHE.move_to_end(shape)
            return cached
    noc = InterconnectNetwork(config, energy_table)
    pe_order = [f"dpe{i}" for i in range(config.num_dpe)] + [
        f"spe{i}" for i in range(config.num_spe)
    ]
    hops = np.array([noc.hops_to(name) for name in pe_order], dtype=np.float64)
    hops.setflags(write=False)
    with _HOPS_CACHE_LOCK:
        cached = _HOPS_CACHE.setdefault(shape, hops)
        _HOPS_CACHE.move_to_end(shape)
        while len(_HOPS_CACHE) > _HOPS_CACHE_MAX:
            _HOPS_CACHE.popitem(last=False)
    return cached


def _segment_sums(rows: np.ndarray, starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Per-segment column sums with strictly sequential association.

    Accumulates ``((row0 + row1) + row2)...`` for each segment — the exact
    float operation sequence of the reference backend's per-step loop — by
    adding one row per still-open segment per iteration, vectorized across
    segments.  Because each segment's sum depends only on its own rows and
    length, the result is bit-identical no matter how the surrounding batch
    is shaped (fused sweep, per-config fleet partition, or solo run), which
    ``np.add.reduceat``'s pairwise trees are not.  Empty segments sum to 0.
    The loop runs max(sizes) times — layers per step / steps per trace, both
    small — over fancy-indexed gathers, so it stays O(rows) work overall.
    """
    sums = np.zeros((len(starts), rows.shape[1]), dtype=rows.dtype)
    for offset in range(int(sizes.max()) if len(sizes) else 0):
        open_segments = sizes > offset
        sums[open_segments] += rows[starts[open_segments] + offset]
    return sums


def _zero_batch(
    entries: "list[tuple[AcceleratorConfig, list[list[list[ConvLayerWorkload]]]]]",
) -> ColumnarReportBatch:
    """An all-empty batch (no layer entries anywhere) with the input's shape."""
    trace_steps = np.array(
        [len(trace) for _, traces in entries for trace in traces], dtype=np.int64
    )
    num_traces = len(trace_steps)
    num_steps = int(trace_steps.sum())
    return ColumnarReportBatch(
        config_names=[config.name for config, _ in entries],
        clock_ghz=np.array([config.clock_ghz for config, _ in entries], dtype=np.float64),
        traces_per_config=np.array([len(traces) for _, traces in entries], dtype=np.int64),
        trace_steps=trace_steps,
        step_sizes=np.zeros(num_steps, dtype=np.int64),
        layer_names=[],
        layer_cycles=np.zeros(0),
        layer_energy=np.zeros((0, 7)),
        total_macs=np.zeros(0),
        executed_macs=np.zeros(0),
        dense_channels=np.zeros(0, dtype=np.int64),
        sparse_channels=np.zeros(0, dtype=np.int64),
        dense_cycles=np.zeros(0),
        sparse_cycles=np.zeros(0),
        step_totals=np.zeros((num_steps, 8)),
        trace_totals=np.zeros((num_traces, 8)),
        detector_updates=np.zeros(num_traces, dtype=np.int64),
        detector_channels=np.zeros(num_traces, dtype=np.int64),
    )


def run_config_traces_columnar(
    entries: "list[tuple[AcceleratorConfig, list[list[list[ConvLayerWorkload]]]]]",
    energy_table: EnergyTable | None = None,
    batch_stats: DetectorStats | None = None,
) -> ColumnarReportBatch:
    """Timed wrapper over :func:`_run_config_traces_impl` (the actual kernel):
    records call duration and batch shape into the telemetry registry."""
    began = time.monotonic()
    try:
        return _run_config_traces_impl(entries, energy_table, batch_stats)
    finally:
        _KERNEL_SECONDS.observe(time.monotonic() - began)
        _KERNEL_CONFIGS.observe(len(entries))
        _KERNEL_ENTRIES.observe(
            sum(
                len(workloads)
                for _, traces in entries
                for trace in traces
                for workloads in trace
            )
        )


def run_config_traces(
    entries: "list[tuple[AcceleratorConfig, list[list[list[ConvLayerWorkload]]]]]",
    energy_table: EnergyTable | None = None,
    batch_stats: DetectorStats | None = None,
) -> "list[list]":
    """Eager-object variant of :func:`run_config_traces_columnar`: one list of
    materialized :class:`SimulationReport`\\ s per input entry."""
    return run_config_traces_columnar(entries, energy_table, batch_stats).report_lists()


def _run_config_traces_impl(
    entries: "list[tuple[AcceleratorConfig, list[list[list[ConvLayerWorkload]]]]]",
    energy_table: EnergyTable | None = None,
    batch_stats: DetectorStats | None = None,
) -> ColumnarReportBatch:
    """Execute a ``(config x trace)`` batch in one cross-config NumPy pass.

    ``entries`` pairs each :class:`AcceleratorConfig` with the traces to run
    on it; the result is one :class:`ColumnarReportBatch` covering the whole
    grid — no report objects are built here.  All (config, trace, time step,
    layer) cells are flattened into a single entry axis, per-config scalar
    parameters are gathered into arrays aligned with that axis, and per-PE
    quantities are padded to the widest PE count in the batch — so an entire
    sweep costs one batched pass instead of one per configuration.  Every
    report later materialized from the batch is bit-identical to a solo
    ``run_trace`` of its (config, trace) pair: the per-entry math is
    row-independent, padding columns stay exactly zero, and each
    (config, trace) pair keeps its own detector schedule.

    All configurations in a batch must share ``energy_table``; the scheduler
    guarantees this by grouping requests on the table fingerprint.  When
    ``batch_stats`` is given it receives the whole batch's detector totals.
    """
    table = energy_table or DEFAULT_ENERGY_TABLE
    configs = [config for config, _ in entries]

    # --- unique-trace cell tables ----------------------------------------
    # Sweeps run many configurations over the *same* trace objects, so all
    # config-independent per-layer work (geometry extraction, the sparsity
    # matrix, detector schedules) is done once per unique trace over a
    # "cell" axis — one cell per (step, layer) of each unique trace — and
    # fanned out to the (config, trace) entry axis by gathers below.
    unique_of: dict[int, int] = {}
    unique_traces: list[list[list[ConvLayerWorkload]]] = []
    pairs: list[tuple[int, int]] = []
    for config_idx, (_, traces) in enumerate(entries):
        for trace in traces:
            uidx = unique_of.get(id(trace))
            if uidx is None:
                uidx = unique_of.setdefault(id(trace), len(unique_traces))
                unique_traces.append(trace)
            pairs.append((config_idx, uidx))

    cell_workloads: list[ConvLayerWorkload] = []
    u_starts: list[int] = []
    u_sizes: list[int] = []
    u_step_sizes: list[np.ndarray] = []
    for trace in unique_traces:
        u_starts.append(len(cell_workloads))
        u_step_sizes.append(np.array([len(workloads) for workloads in trace], dtype=np.int64))
        for workloads in trace:
            cell_workloads.extend(workloads)
        u_sizes.append(len(cell_workloads) - u_starts[-1])

    pair_cfg = np.array([config_idx for config_idx, _ in pairs], dtype=np.int64).reshape(-1)
    pair_sizes = np.array([u_sizes[uidx] for _, uidx in pairs], dtype=np.int64).reshape(-1)
    entry_base = np.concatenate(([0], np.cumsum(pair_sizes)))
    num_entries = int(entry_base[-1])
    if num_entries == 0:
        return _zero_batch(entries)

    # Entry axis = concatenation of each pair's cell range, config-major then
    # trace-major (the batch's canonical order).
    cell_idx = np.concatenate(
        [
            np.arange(u_starts[uidx], u_starts[uidx] + u_sizes[uidx], dtype=np.int64)
            for _, uidx in pairs
        ]
    )
    cfg = np.repeat(pair_cfg, pair_sizes)
    step_sizes = (
        np.concatenate([u_step_sizes[uidx] for _, uidx in pairs])
        if pairs
        else np.zeros(0, dtype=np.int64)
    )
    trace_steps = np.array([len(u_step_sizes[uidx]) for _, uidx in pairs], dtype=np.int64)

    # --- per-config parameter rows, gathered onto the entry axis ----------
    num_dpe_c = np.array([c.num_dpe for c in configs], dtype=np.int64)
    num_spe_c = np.array([c.num_spe for c in configs], dtype=np.int64)
    threshold_c = np.array([c.sparsity_threshold for c in configs], dtype=np.float64)
    periods_c = np.array([c.sparsity_update_period for c in configs], dtype=np.int64)
    multipliers_c = np.array([c.pe.multipliers for c in configs], dtype=np.float64)
    sparse_util_c = np.array([c.pe.sparse_utilization for c in configs], dtype=np.float64)
    sparse_kmac_c = np.array([c.pe.sparse_overhead_per_kmac for c in configs], dtype=np.float64)
    overhead_c = np.array([c.pe.pipeline_overhead_cycles for c in configs], dtype=np.float64)
    noc_bw_c = np.array([c.noc_bandwidth_bytes_per_cycle for c in configs], dtype=np.float64)
    capacity_c = np.array([float(c.global_buffer_kib * 1024) for c in configs], dtype=np.float64)
    mixed_c = (num_dpe_c > 0) & (num_spe_c > 0)

    max_dpe = int(num_dpe_c.max())
    max_spe = int(num_spe_c.max())

    # Hop counts per (config, PE slot), slot-aligned with the padded per-PE
    # axes below: dense slots first, then sparse slots, zeros past each
    # config's real PE count (where the padded traffic is zero anyway).
    hops_c = np.zeros((len(configs), max_dpe + max_spe), dtype=np.float64)
    for config_idx, config in enumerate(configs):
        hops = _config_hops(config, table)
        hops_c[config_idx, : config.num_dpe] = hops[: config.num_dpe]
        hops_c[config_idx, max_dpe : max_dpe + config.num_spe] = hops[config.num_dpe :]

    dpe_e = num_dpe_c[cfg]
    spe_e = num_spe_c[cfg]

    # --- per-cell scalar arrays, gathered to entries ----------------------
    # One pass over each unique trace's workloads extracts the raw geometry;
    # every derived quantity (footprints, MAC counts) is then computed as
    # array math, reproducing the ConvLayerWorkload formulas exactly
    # (integer-valued float64 products are exact well past these
    # magnitudes).  The entry-axis gathers copy values verbatim, so entries
    # replaying the same trace under different configs are bit-identical to
    # extracting per entry.
    raw = np.array(
        [
            (w.in_channels, w.out_channels, w.kernel_size, w.out_height, w.out_width,
             w.weight_bits, w.act_bits)
            for w in cell_workloads
        ],
        dtype=np.float64,
    )
    num_cells = len(cell_workloads)
    in_channels_u = raw[:, 0].astype(np.int64)
    kernel_sq_u = raw[:, 2] * raw[:, 2]
    spatial_u = raw[:, 3] * raw[:, 4]
    op_bits_u = np.maximum(raw[:, 5], raw[:, 6]).astype(np.int64)
    macs_per_channel_u = raw[:, 1] * kernel_sq_u * spatial_u
    weight_bytes_total_u = raw[:, 1] * raw[:, 0] * kernel_sq_u * raw[:, 5] / 8.0
    output_bytes_u = raw[:, 1] * spatial_u * raw[:, 6] / 8.0
    input_bytes_full_u = raw[:, 0] * spatial_u * raw[:, 6] / 8.0
    total_macs_u = raw[:, 0] * macs_per_channel_u
    channels_div_u = np.maximum(raw[:, 0], 1.0)

    # MAC energy and lane packing per cell (few distinct precisions).
    mac_energy_u = np.empty(num_cells, dtype=np.float64)
    packing_u = np.empty(num_cells, dtype=np.float64)
    for bits in np.unique(op_bits_u):
        selected = op_bits_u == bits
        mac_energy_u[selected] = table.mac_energy(int(bits))
        packing_u[selected] = max(16.0 / float(bits), 1.0)

    # --- padded channel-sparsity matrix (per cell) ------------------------
    # One concatenate + fancy-index assignment fills every row at once; the
    # values are copied verbatim, so the fill is bit-identical to a per-row
    # Python loop.
    max_channels = max(1, int(in_channels_u.max()))
    sparsity_cell = np.zeros((num_cells, max_channels), dtype=np.float64)
    flat_sparsity = np.concatenate(
        [np.asarray(w.channel_sparsity, dtype=np.float64) for w in cell_workloads]
    )
    rows = np.repeat(np.arange(num_cells), in_channels_u)
    starts_per_row = np.concatenate(([0], np.cumsum(in_channels_u)[:-1]))
    cols = np.arange(flat_sparsity.size) - np.repeat(starts_per_row, in_channels_u)
    sparsity_cell[rows, cols] = flat_sparsity
    valid_cell = np.arange(max_channels)[None, :] < in_channels_u[:, None]

    # Entry-axis views of the cell tables.
    out_channels = raw[cell_idx, 1]
    spatial = spatial_u[cell_idx]
    act_bits = raw[cell_idx, 6]
    macs_per_channel = macs_per_channel_u[cell_idx]
    weight_bytes_total = weight_bytes_total_u[cell_idx]
    output_bytes = output_bytes_u[cell_idx]
    input_bytes_full = input_bytes_full_u[cell_idx]
    total_macs = total_macs_u[cell_idx]
    channels_div = channels_div_u[cell_idx]
    mac_energy = mac_energy_u[cell_idx]
    sparsity_now = sparsity_cell[cell_idx]
    valid = valid_cell[cell_idx]

    dense_throughput = multipliers_c[cfg] * packing_u[cell_idx]
    sparse_throughput = dense_throughput * sparse_util_c[cfg]
    pipeline_overhead = overhead_c[cfg]

    # Per-entry classification thresholds: degenerate configurations force
    # an all-dense / all-sparse split regardless of the detector.
    threshold_e = np.where(
        spe_e == 0,
        _ALL_DENSE_THRESHOLD,
        np.where(dpe_e == 0, _ALL_SPARSE_THRESHOLD, threshold_c[cfg]),
    )

    # --- detector schedules -----------------------------------------------
    # Every (config, trace) pair of a batch carries its own detector state —
    # classifications never leak across traces or configurations, so batched
    # results match solo runs.  Degenerate configurations (all-dense or
    # all-sparse) bypass the detector entirely, exactly like the reference
    # controller.  ``source[i]`` is the entry whose sparsity sets entry
    # ``i``'s dense/sparse split (itself, unless a stale classification is
    # being reused).
    num_pairs = len(pairs)
    source = np.arange(num_entries, dtype=np.int64)
    detector_updates = np.zeros(num_pairs, dtype=np.int64)
    detector_channels = np.zeros(num_pairs, dtype=np.int64)
    schedules: dict[tuple[int, int], tuple[np.ndarray, int, int]] = {}
    detector_active = False
    for pair_idx, (config_idx, uidx) in enumerate(pairs):
        if not mixed_c[config_idx] or not u_sizes[uidx]:
            continue
        period = int(periods_c[config_idx])
        schedule = schedules.get((uidx, period))
        if schedule is None:
            schedule = schedules.setdefault(
                (uidx, period), _trace_schedule(unique_traces[uidx], period)
            )
        relative_source, updates, channels = schedule
        base = int(entry_base[pair_idx])
        source[base : base + relative_source.size] = base + relative_source
        detector_updates[pair_idx] = updates
        detector_channels[pair_idx] = channels
        detector_active = True
    if batch_stats is not None:
        batch_stats.updates_performed = int(detector_updates.sum())
        batch_stats.channels_evaluated = int(detector_channels.sum())

    sparsity_src = sparsity_now[source] if detector_active else sparsity_now
    sparse_mask = (sparsity_src >= threshold_e[:, None]) & valid
    dense_mask = valid & ~sparse_mask
    num_dense = dense_mask.sum(axis=1)
    num_sparse = sparse_mask.sum(axis=1)

    # --- dense PE chunks --------------------------------------------------
    if max_dpe:
        dense_counts = _chunk_counts(num_dense, dpe_e, max_dpe).astype(np.float64)
        dense_macs = dense_counts * macs_per_channel[:, None]
        dense_cycles_pe = dense_macs / dense_throughput[:, None] + pipeline_overhead[:, None] * (
            dense_macs > 0
        )
        dense_input_bytes = dense_counts * spatial[:, None] * act_bits[:, None] / 8.0
        dense_weight_bytes = weight_bytes_total[:, None] * (dense_counts / channels_div[:, None])
        dense_cycles = dense_cycles_pe.max(axis=1)
    else:
        dense_counts = np.zeros((num_entries, 0))
        dense_macs = dense_cycles_pe = dense_input_bytes = dense_weight_bytes = dense_counts
        dense_cycles = np.zeros(num_entries)

    # --- sparse PE chunks -------------------------------------------------
    if max_spe:
        # Densities of the sparse channels, compacted to the front of each
        # row in ascending channel order (matching np.flatnonzero), so
        # array_split chunk sums become prefix-sum differences.
        sparse_density = np.where(sparse_mask, 1.0 - sparsity_now, 0.0)
        front_order = np.argsort(~sparse_mask, axis=1, kind="stable")
        compacted = np.take_along_axis(sparse_density, front_order, axis=1)
        prefix = np.zeros((num_entries, max_channels + 1), dtype=np.float64)
        np.cumsum(compacted, axis=1, out=prefix[:, 1:])

        sparse_counts = _chunk_counts(num_sparse, spe_e, max_spe)
        chunk_ends = np.cumsum(sparse_counts, axis=1)
        chunk_starts = chunk_ends - sparse_counts
        density_sums = np.take_along_axis(prefix, chunk_ends, axis=1) - np.take_along_axis(
            prefix, chunk_starts, axis=1
        )
        sparse_counts = sparse_counts.astype(np.float64)

        sparse_group_macs = sparse_counts * macs_per_channel[:, None]
        nonzero_fraction = np.divide(
            density_sums,
            sparse_counts,
            out=np.zeros_like(density_sums),
            where=sparse_counts > 0,
        )
        effective_macs = sparse_group_macs * nonzero_fraction
        sparse_cycles_pe = (
            effective_macs / sparse_throughput[:, None]
            + effective_macs / 1024.0 * sparse_kmac_c[cfg][:, None]
            + pipeline_overhead[:, None] * (sparse_group_macs > 0)
        )
        sparse_input_bytes = (
            density_sums * spatial[:, None] * act_bits[:, None] / 8.0
            + sparse_counts * spatial[:, None] / 8.0
        )
        sparse_weight_bytes = weight_bytes_total[:, None] * (sparse_counts / channels_div[:, None])
        sparse_cycles = sparse_cycles_pe.max(axis=1)
    else:
        empty = np.zeros((num_entries, 0))
        sparse_group_macs = effective_macs = sparse_cycles_pe = empty
        sparse_input_bytes = sparse_weight_bytes = empty
        sparse_cycles = np.zeros(num_entries)

    # --- per-entry roll-ups -----------------------------------------------
    executed_dense = dense_macs.sum(axis=1)
    executed_sparse = effective_macs.sum(axis=1)
    executed = executed_dense + executed_sparse

    # Per-PE GLB<->PE traffic (operands + partial-sum writeback), slot-padded
    # past each entry's real PE count so hop products and row maxima see
    # exact zeros there.
    valid_dpe = np.arange(max_dpe)[None, :] < dpe_e[:, None]
    valid_spe = np.arange(max_spe)[None, :] < spe_e[:, None]
    pe_bytes = np.concatenate(
        [
            np.where(
                valid_dpe, dense_input_bytes + dense_weight_bytes + output_bytes[:, None], 0.0
            ),
            np.where(
                valid_spe, sparse_input_bytes + sparse_weight_bytes + output_bytes[:, None], 0.0
            ),
        ],
        axis=1,
    )
    glb_bytes = pe_bytes.sum(axis=1)
    noc_cycles = pe_bytes.max(axis=1) / noc_bw_c[cfg]
    noc_pj = (pe_bytes * hops_c[cfg]).sum(axis=1) * table.noc_pj_per_byte_hop

    mac_pj = executed * mac_energy
    local_buffer_pj = glb_bytes * table.local_buffer_pj_per_byte
    global_buffer_pj = glb_bytes * table.global_buffer_pj_per_byte
    idle_pj = (
        dense_cycles_pe.sum(axis=1) + sparse_cycles_pe.sum(axis=1)
    ) * table.idle_pj_per_cycle_per_pe
    detector_pj = (dpe_e + spe_e) * out_channels * table.detector_pj_per_channel

    working_set = weight_bytes_total + input_bytes_full + output_bytes
    capacity = capacity_c[cfg]
    dram_pj = np.where(working_set > capacity, working_set - capacity, 0.0) * (
        table.dram_pj_per_byte
    )

    compute_cycles = np.maximum(dense_cycles, sparse_cycles)
    layer_cycles = np.maximum(compute_cycles, noc_cycles)

    # --- columnar roll-up -------------------------------------------------
    # The kernel's output stays columnar: per-layer columns plus segment-sum
    # totals, no report objects.  Per-step sums must use the reference
    # loop's *sequential* association ((l0 + l1) + l2)... so materialized
    # results are bit-identical to a solo run of the same trace, not merely
    # close.  ``np.add.reduceat`` does NOT guarantee that: it sums segments
    # pairwise, and its implicit final segment runs to the end of the array,
    # so the same step sums over a different tree depending on where it
    # lands in the batch — a one-ulp divergence between a fleet worker's
    # single-config partition and the fused sweep.  :func:`_segment_sums`
    # accumulates one row per segment per iteration instead: sequential
    # association per segment, vectorized across segments, and independent
    # of the surrounding batch shape.  Same shape one level up: per-trace
    # totals are sequential sums of the per-step rows.
    energy_stack = np.column_stack(
        [mac_pj, local_buffer_pj, global_buffer_pj, dram_pj, noc_pj, detector_pj, idle_pj]
    )
    step_ends = np.cumsum(step_sizes)
    step_starts = step_ends - step_sizes
    stacked = np.column_stack([layer_cycles, energy_stack])
    step_totals = _segment_sums(stacked, step_starts, step_sizes)
    trace_ends = np.cumsum(trace_steps)
    trace_starts = trace_ends - trace_steps
    trace_totals = _segment_sums(step_totals, trace_starts, trace_steps)

    cell_names = [w.name for w in cell_workloads]
    return ColumnarReportBatch(
        config_names=[config.name for config in configs],
        clock_ghz=np.array([config.clock_ghz for config in configs], dtype=np.float64),
        traces_per_config=np.array([len(traces) for _, traces in entries], dtype=np.int64),
        trace_steps=trace_steps,
        step_sizes=step_sizes,
        layer_names=[cell_names[j] for j in cell_idx.tolist()],
        layer_cycles=layer_cycles,
        layer_energy=energy_stack,
        total_macs=total_macs,
        executed_macs=executed,
        dense_channels=num_dense,
        sparse_channels=num_sparse,
        dense_cycles=dense_cycles,
        sparse_cycles=sparse_cycles,
        step_totals=step_totals,
        trace_totals=trace_totals,
        detector_updates=detector_updates,
        detector_channels=detector_channels,
    )


class VectorizedBackend:
    """Evaluates an entire workload trace with batched NumPy operations."""

    name = "vectorized"

    def __init__(self, config: AcceleratorConfig, energy_table: EnergyTable | None = None):
        self.config = config
        self.energy_table = energy_table or DEFAULT_ENERGY_TABLE
        self.detector_stats = DetectorStats()

    def reset(self) -> None:
        self.detector_stats.reset()

    def run_trace(self, trace: "list[list[ConvLayerWorkload]]"):
        """Execute a full multi-time-step workload trace."""
        return self.run_traces([trace])[0]

    def run_traces(self, traces: "list[list[list[ConvLayerWorkload]]]") -> "list":
        """Execute several traces on this configuration in one batched pass.

        The cross-trace entry point behind fleet sweeps: all (trace, time
        step, layer) cells are flattened into one entry axis and every array
        quantity is computed for the whole batch at once, so N queued traces
        sharing an :class:`AcceleratorConfig` cost one NumPy pass instead of
        N.  Per-trace results are bit-identical to ``run_trace`` runs — the
        per-entry math is row-independent and each trace keeps its own
        detector schedule — and :attr:`detector_stats` holds the batch totals.
        """
        return self.run_config_traces([(self.config, traces)])[0]

    def run_config_traces(
        self, entries: "list[tuple[AcceleratorConfig, list[list[list[ConvLayerWorkload]]]]]"
    ) -> "list[list]":
        """Execute a ``(config x trace)`` batch in one cross-config pass.

        See the module-level :func:`run_config_traces`; this instance method
        additionally records the whole batch's detector totals on
        :attr:`detector_stats`.  The backend's own configuration does not
        constrain the batch — every entry carries its config — but all
        entries share this backend's energy table.
        """
        return self.run_config_traces_columnar(entries).report_lists()

    def run_config_traces_columnar(
        self, entries: "list[tuple[AcceleratorConfig, list[list[list[ConvLayerWorkload]]]]]"
    ) -> ColumnarReportBatch:
        """Columnar variant of :meth:`run_config_traces`: the whole grid as a
        :class:`~repro.core.columnar.ColumnarReportBatch`, no objects built."""
        self.reset()
        return run_config_traces_columnar(
            entries, self.energy_table, batch_stats=self.detector_stats
        )
