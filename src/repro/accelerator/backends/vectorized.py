"""Vectorized simulation backend: whole-trace evaluation as batched array ops.

The reference backend pays one Python-level ``execute_layer`` call — dozens
of small NumPy operations, ``EnergyBreakdown`` additions and a networkx
shortest-path query per PE — for every layer of every time step.  On the
paper's evaluation traces that per-layer dispatch dominates the entire
benchmark suite's runtime.

This engine removes it.  A :class:`~repro.accelerator.simulator.WorkloadTrace`
is flattened into ``(num_entries,)`` scalar arrays (one entry per layer per
time step) plus a padded ``(num_entries, max_channels)`` sparsity matrix, and
every quantity of the analytical model — dense/sparse channel grouping with
the temporal detector's update schedule, per-PE channel-chunk sizes, MAC /
cycle / energy tallies, NoC hop costs, global-buffer and DRAM traffic — is
computed for all entries at once.  The resulting
:class:`~repro.accelerator.simulator.SimulationReport` matches the reference
backend's (same structure, per-layer results included) to floating-point
round-off: summation orders differ slightly, so totals agree to ~1e-12
relative rather than bit-for-bit, well inside the 1e-9 equivalence bound the
test suite enforces.

Batching happens on two axes:

* *cross-trace* (PR 2): :meth:`VectorizedBackend.run_traces` fuses N traces
  sharing one configuration into a single pass;
* *cross-config* (this revision): :func:`run_config_traces` additionally
  stacks the per-config scalar parameters (PE counts, thresholds, multiplier
  and packing factors, clocks, buffer capacities, NoC hop tables) into
  arrays aligned with the flattened entry axis, so a whole design-space
  sweep — many configurations, each over many traces — is one NumPy pass.
  Configurations whose PE counts differ are padded to the widest PE axis in
  the batch and masked; every per-entry quantity stays row-independent, so
  each report is bit-identical to a solo ``run_trace`` of that
  (config, trace) pair.

Intentional difference: per-PE :class:`ChannelGroupResult` lists are omitted
(``LayerExecutionResult.pe_results`` stays empty) — use the reference backend
when per-PE introspection is needed.
"""

from __future__ import annotations

import time

import numpy as np

from ...core.telemetry import COUNT_BUCKETS, get_registry
from ..config import AcceleratorConfig
from ..energy import DEFAULT_ENERGY_TABLE, EnergyBreakdown, EnergyTable
from ..noc import InterconnectNetwork
from ..workload import ConvLayerWorkload
from .base import DetectorStats

# Kernel telemetry: how long each batched NumPy pass takes and how it was
# shaped (configs fused per call, flattened entry rows per call).
_KERNEL_SECONDS = get_registry().histogram(
    "repro_kernel_duration_seconds", "Wall time of one batched simulation kernel call."
)
_KERNEL_CONFIGS = get_registry().histogram(
    "repro_kernel_batch_configs",
    "Configurations fused into one kernel call.",
    buckets=COUNT_BUCKETS,
)
_KERNEL_ENTRIES = get_registry().histogram(
    "repro_kernel_batch_entries",
    "Flattened (config, trace, step, layer) rows per kernel call.",
    buckets=COUNT_BUCKETS,
)

#: Thresholds replicating the controller's degenerate classifications: a
#: dense-only array treats every channel as dense, a sparse-only array as
#: sparse (see :meth:`AcceleratorController.classify`).
_ALL_DENSE_THRESHOLD = 1.1
_ALL_SPARSE_THRESHOLD = -0.1


def _chunk_counts(
    totals: np.ndarray, parts: "np.ndarray | int", width: int | None = None
) -> np.ndarray:
    """Per-chunk sizes of ``np.array_split(range(n), p)`` for each (n, p) pair.

    ``array_split`` gives the first ``n % p`` chunks one extra element; this
    reproduces those sizes as a ``(len(totals), width)`` integer array without
    materializing any index lists.  ``parts`` is either one PE count shared by
    every row or a per-row array (the cross-config batch); rows whose count is
    below ``width`` are zero-padded on the right.
    """
    parts = np.asarray(parts, dtype=np.int64)
    per_row = parts.ndim > 0
    if width is None:
        width = int(parts.max(initial=0)) if per_row else int(parts)
    safe = np.maximum(parts, 1)
    base = totals // safe
    remainder = totals % safe
    chunk_index = np.arange(width)
    counts = base[:, None] + (chunk_index[None, :] < remainder[:, None])
    if per_row:
        counts = np.where(chunk_index[None, :] < parts[:, None], counts, 0)
    return counts


def _classification_sources(
    entries: "list[tuple[int, int, int, ConvLayerWorkload]]",
    mixed: np.ndarray,
    periods: np.ndarray,
) -> "tuple[np.ndarray, dict[tuple[int, int], DetectorStats]]":
    """For each entry, the entry index whose sparsity sets its dense/sparse split.

    Mirrors :class:`TemporalSparsityDetector`: a layer's classification is
    refreshed when first seen and whenever ``update_period`` time steps have
    elapsed since its last refresh; between refreshes the stale channel
    grouping (computed from the refresh step's sparsity) is reused while the
    *current* sparsity still drives the datapath work.  Every (config, trace)
    pair of a batch carries its own detector state — classifications never
    leak across traces or configurations, so batched results match solo runs.
    Degenerate configurations (``mixed[c]`` False: all-dense or all-sparse)
    bypass the detector entirely, exactly like the reference controller.

    Returns the per-entry source indices plus per-(config, trace) detector
    activity, which the kernel attaches to each report.
    """
    source = np.arange(len(entries), dtype=np.int64)
    last_update: dict[tuple[int, int, str], tuple[int, int]] = {}
    stats: dict[tuple[int, int], DetectorStats] = {}
    for index, (config_idx, trace_idx, time_step, workload) in enumerate(entries):
        if not mixed[config_idx]:
            continue
        key = (config_idx, trace_idx, workload.name)
        previous = last_update.get(key)
        if previous is None or time_step - previous[0] >= periods[config_idx]:
            last_update[key] = (time_step, index)
            pair = stats.setdefault((config_idx, trace_idx), DetectorStats())
            pair.updates_performed += 1
            pair.channels_evaluated += workload.in_channels
        else:
            source[index] = previous[1]
    return source, stats


#: Hop-count memo keyed by PE-array shape: the chain-of-routers topology (and
#: hence every GLB->PE hop count) is fully determined by (num_dpe, num_spe),
#: so sweeps over other knobs skip the networkx graph build entirely.  A
#: racing double-compute stores the same values, so no lock is needed.
_HOPS_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _config_hops(config: AcceleratorConfig, energy_table: EnergyTable) -> np.ndarray:
    """Hop counts per PE in controller dispatch order (DPEs then SPEs)."""
    shape = (config.num_dpe, config.num_spe)
    cached = _HOPS_CACHE.get(shape)
    if cached is None:
        noc = InterconnectNetwork(config, energy_table)
        pe_order = [f"dpe{i}" for i in range(config.num_dpe)] + [
            f"spe{i}" for i in range(config.num_spe)
        ]
        cached = np.array([noc.hops_to(name) for name in pe_order], dtype=np.float64)
        cached.setflags(write=False)
        _HOPS_CACHE[shape] = cached
    return cached


def _segment_sums(rows: np.ndarray, starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Per-segment column sums with strictly sequential association.

    Accumulates ``((row0 + row1) + row2)...`` for each segment — the exact
    float operation sequence of the reference backend's per-step loop — by
    adding one row per still-open segment per iteration, vectorized across
    segments.  Because each segment's sum depends only on its own rows and
    length, the result is bit-identical no matter how the surrounding batch
    is shaped (fused sweep, per-config fleet partition, or solo run), which
    ``np.add.reduceat``'s pairwise trees are not.  Empty segments sum to 0.
    The loop runs max(sizes) times — layers per step / steps per trace, both
    small — over fancy-indexed gathers, so it stays O(rows) work overall.
    """
    sums = np.zeros((len(starts), rows.shape[1]), dtype=rows.dtype)
    for offset in range(int(sizes.max()) if len(sizes) else 0):
        open_segments = sizes > offset
        sums[open_segments] += rows[starts[open_segments] + offset]
    return sums


def _zero_report(config: AcceleratorConfig, trace: "list[list[ConvLayerWorkload]]"):
    from ..simulator import SimulationReport, StepResult

    return SimulationReport(
        config_name=config.name,
        total_cycles=0.0,
        total_energy=EnergyBreakdown(),
        step_results=[
            StepResult(time_step=t, cycles=0.0, energy=EnergyBreakdown())
            for t in range(len(trace))
        ],
        clock_ghz=config.clock_ghz,
        detector_stats=DetectorStats(),
    )


def run_config_traces(
    entries: "list[tuple[AcceleratorConfig, list[list[list[ConvLayerWorkload]]]]]",
    energy_table: EnergyTable | None = None,
    batch_stats: DetectorStats | None = None,
) -> "list[list]":
    """Timed wrapper over :func:`_run_config_traces_impl` (the actual kernel):
    records call duration and batch shape into the telemetry registry."""
    began = time.monotonic()
    try:
        return _run_config_traces_impl(entries, energy_table, batch_stats)
    finally:
        _KERNEL_SECONDS.observe(time.monotonic() - began)
        _KERNEL_CONFIGS.observe(len(entries))
        _KERNEL_ENTRIES.observe(
            sum(
                len(workloads)
                for _, traces in entries
                for trace in traces
                for workloads in trace
            )
        )


def _run_config_traces_impl(
    entries: "list[tuple[AcceleratorConfig, list[list[list[ConvLayerWorkload]]]]]",
    energy_table: EnergyTable | None = None,
    batch_stats: DetectorStats | None = None,
) -> "list[list]":
    """Execute a ``(config x trace)`` batch in one cross-config NumPy pass.

    ``entries`` pairs each :class:`AcceleratorConfig` with the traces to run
    on it; the result is one list of reports per entry, aligned with the
    input.  All (config, trace, time step, layer) cells are flattened into a
    single entry axis, per-config scalar parameters are gathered into arrays
    aligned with that axis, and per-PE quantities are padded to the widest PE
    count in the batch — so an entire sweep costs one batched pass instead of
    one per configuration.  Every report is bit-identical to a solo
    ``run_trace`` of its (config, trace) pair: the per-entry math is
    row-independent, padding columns stay exactly zero, and each
    (config, trace) pair keeps its own detector schedule.

    All configurations in a batch must share ``energy_table``; the scheduler
    guarantees this by grouping requests on the table fingerprint.  When
    ``batch_stats`` is given it receives the whole batch's detector totals.
    """
    from ..controller import LayerExecutionResult
    from ..simulator import SimulationReport, StepResult

    table = energy_table or DEFAULT_ENERGY_TABLE
    configs = [config for config, _ in entries]
    flat = [
        (config_idx, trace_idx, t, w)
        for config_idx, (_, traces) in enumerate(entries)
        for trace_idx, trace in enumerate(traces)
        for t, workloads in enumerate(trace)
        for w in workloads
    ]
    num_entries = len(flat)
    if num_entries == 0:
        return [[_zero_report(config, trace) for trace in traces] for config, traces in entries]

    # --- per-config parameter rows, gathered onto the entry axis ----------
    num_dpe_c = np.array([c.num_dpe for c in configs], dtype=np.int64)
    num_spe_c = np.array([c.num_spe for c in configs], dtype=np.int64)
    threshold_c = np.array([c.sparsity_threshold for c in configs], dtype=np.float64)
    periods_c = np.array([c.sparsity_update_period for c in configs], dtype=np.int64)
    multipliers_c = np.array([c.pe.multipliers for c in configs], dtype=np.float64)
    sparse_util_c = np.array([c.pe.sparse_utilization for c in configs], dtype=np.float64)
    sparse_kmac_c = np.array([c.pe.sparse_overhead_per_kmac for c in configs], dtype=np.float64)
    overhead_c = np.array([c.pe.pipeline_overhead_cycles for c in configs], dtype=np.float64)
    noc_bw_c = np.array([c.noc_bandwidth_bytes_per_cycle for c in configs], dtype=np.float64)
    capacity_c = np.array([float(c.global_buffer_kib * 1024) for c in configs], dtype=np.float64)
    mixed_c = (num_dpe_c > 0) & (num_spe_c > 0)

    max_dpe = int(num_dpe_c.max())
    max_spe = int(num_spe_c.max())

    # Hop counts per (config, PE slot), slot-aligned with the padded per-PE
    # axes below: dense slots first, then sparse slots, zeros past each
    # config's real PE count (where the padded traffic is zero anyway).
    hops_c = np.zeros((len(configs), max_dpe + max_spe), dtype=np.float64)
    for config_idx, config in enumerate(configs):
        hops = _config_hops(config, table)
        hops_c[config_idx, : config.num_dpe] = hops[: config.num_dpe]
        hops_c[config_idx, max_dpe : max_dpe + config.num_spe] = hops[config.num_dpe :]

    cfg = np.array([config_idx for config_idx, _, _, _ in flat], dtype=np.int64)
    dpe_e = num_dpe_c[cfg]
    spe_e = num_spe_c[cfg]

    # --- per-entry scalar arrays ------------------------------------------
    # One pass over the workloads extracts the raw geometry; every derived
    # quantity (footprints, MAC counts) is then computed as array math,
    # reproducing the ConvLayerWorkload formulas exactly (integer-valued
    # float64 products are exact well past these magnitudes).
    workloads = [w for _, _, _, w in flat]
    raw = np.array(
        [
            (w.in_channels, w.out_channels, w.kernel_size, w.out_height, w.out_width,
             w.weight_bits, w.act_bits)
            for w in workloads
        ],
        dtype=np.float64,
    )
    in_channels = raw[:, 0].astype(np.int64)
    out_channels = raw[:, 1]
    kernel_sq = raw[:, 2] * raw[:, 2]
    spatial = raw[:, 3] * raw[:, 4]
    weight_bits = raw[:, 5]
    act_bits = raw[:, 6]
    op_bits = np.maximum(weight_bits, act_bits).astype(np.int64)
    macs_per_channel = out_channels * kernel_sq * spatial
    weight_bytes_total = out_channels * raw[:, 0] * kernel_sq * weight_bits / 8.0
    output_bytes = out_channels * spatial * act_bits / 8.0
    input_bytes_full = raw[:, 0] * spatial * act_bits / 8.0
    total_macs = raw[:, 0] * macs_per_channel
    channels_div = np.maximum(raw[:, 0], 1.0)

    # MAC energy and lane packing per entry (few distinct precisions).
    mac_energy = np.empty(num_entries, dtype=np.float64)
    packing = np.empty(num_entries, dtype=np.float64)
    for bits in np.unique(op_bits):
        selected = op_bits == bits
        mac_energy[selected] = table.mac_energy(int(bits))
        packing[selected] = max(16.0 / float(bits), 1.0)
    dense_throughput = multipliers_c[cfg] * packing
    sparse_throughput = dense_throughput * sparse_util_c[cfg]
    pipeline_overhead = overhead_c[cfg]

    # --- padded channel-sparsity matrices ---------------------------------
    # One concatenate + fancy-index assignment fills every row at once; the
    # values are copied verbatim, so the fill is bit-identical to a per-row
    # Python loop.
    max_channels = max(1, int(in_channels.max()))
    sparsity_now = np.zeros((num_entries, max_channels), dtype=np.float64)
    flat_sparsity = np.concatenate(
        [np.asarray(w.channel_sparsity, dtype=np.float64) for w in workloads]
    )
    rows = np.repeat(np.arange(num_entries), in_channels)
    starts_per_row = np.concatenate(([0], np.cumsum(in_channels)[:-1]))
    cols = np.arange(flat_sparsity.size) - np.repeat(starts_per_row, in_channels)
    sparsity_now[rows, cols] = flat_sparsity
    valid = np.arange(max_channels)[None, :] < in_channels[:, None]

    # Per-entry classification thresholds: degenerate configurations force
    # an all-dense / all-sparse split regardless of the detector.
    threshold_e = np.where(
        spe_e == 0,
        _ALL_DENSE_THRESHOLD,
        np.where(dpe_e == 0, _ALL_SPARSE_THRESHOLD, threshold_c[cfg]),
    )
    source, detector_by_pair = _classification_sources(flat, mixed_c, periods_c)
    if detector_by_pair:
        sparsity_src = sparsity_now[source]
    else:
        sparsity_src = sparsity_now
    if batch_stats is not None:
        batch_stats.updates_performed = sum(s.updates_performed for s in detector_by_pair.values())
        batch_stats.channels_evaluated = sum(
            s.channels_evaluated for s in detector_by_pair.values()
        )

    sparse_mask = (sparsity_src >= threshold_e[:, None]) & valid
    dense_mask = valid & ~sparse_mask
    num_dense = dense_mask.sum(axis=1)
    num_sparse = sparse_mask.sum(axis=1)

    # --- dense PE chunks --------------------------------------------------
    if max_dpe:
        dense_counts = _chunk_counts(num_dense, dpe_e, max_dpe).astype(np.float64)
        dense_macs = dense_counts * macs_per_channel[:, None]
        dense_cycles_pe = dense_macs / dense_throughput[:, None] + pipeline_overhead[:, None] * (
            dense_macs > 0
        )
        dense_input_bytes = dense_counts * spatial[:, None] * act_bits[:, None] / 8.0
        dense_weight_bytes = weight_bytes_total[:, None] * (dense_counts / channels_div[:, None])
        dense_cycles = dense_cycles_pe.max(axis=1)
    else:
        dense_counts = np.zeros((num_entries, 0))
        dense_macs = dense_cycles_pe = dense_input_bytes = dense_weight_bytes = dense_counts
        dense_cycles = np.zeros(num_entries)

    # --- sparse PE chunks -------------------------------------------------
    if max_spe:
        # Densities of the sparse channels, compacted to the front of each
        # row in ascending channel order (matching np.flatnonzero), so
        # array_split chunk sums become prefix-sum differences.
        sparse_density = np.where(sparse_mask, 1.0 - sparsity_now, 0.0)
        front_order = np.argsort(~sparse_mask, axis=1, kind="stable")
        compacted = np.take_along_axis(sparse_density, front_order, axis=1)
        prefix = np.zeros((num_entries, max_channels + 1), dtype=np.float64)
        np.cumsum(compacted, axis=1, out=prefix[:, 1:])

        sparse_counts = _chunk_counts(num_sparse, spe_e, max_spe)
        chunk_ends = np.cumsum(sparse_counts, axis=1)
        chunk_starts = chunk_ends - sparse_counts
        density_sums = np.take_along_axis(prefix, chunk_ends, axis=1) - np.take_along_axis(
            prefix, chunk_starts, axis=1
        )
        sparse_counts = sparse_counts.astype(np.float64)

        sparse_group_macs = sparse_counts * macs_per_channel[:, None]
        nonzero_fraction = np.divide(
            density_sums,
            sparse_counts,
            out=np.zeros_like(density_sums),
            where=sparse_counts > 0,
        )
        effective_macs = sparse_group_macs * nonzero_fraction
        sparse_cycles_pe = (
            effective_macs / sparse_throughput[:, None]
            + effective_macs / 1024.0 * sparse_kmac_c[cfg][:, None]
            + pipeline_overhead[:, None] * (sparse_group_macs > 0)
        )
        sparse_input_bytes = (
            density_sums * spatial[:, None] * act_bits[:, None] / 8.0
            + sparse_counts * spatial[:, None] / 8.0
        )
        sparse_weight_bytes = weight_bytes_total[:, None] * (sparse_counts / channels_div[:, None])
        sparse_cycles = sparse_cycles_pe.max(axis=1)
    else:
        empty = np.zeros((num_entries, 0))
        sparse_group_macs = effective_macs = sparse_cycles_pe = empty
        sparse_input_bytes = sparse_weight_bytes = empty
        sparse_cycles = np.zeros(num_entries)

    # --- per-entry roll-ups -----------------------------------------------
    executed_dense = dense_macs.sum(axis=1)
    executed_sparse = effective_macs.sum(axis=1)
    executed = executed_dense + executed_sparse

    # Per-PE GLB<->PE traffic (operands + partial-sum writeback), slot-padded
    # past each entry's real PE count so hop products and row maxima see
    # exact zeros there.
    valid_dpe = np.arange(max_dpe)[None, :] < dpe_e[:, None]
    valid_spe = np.arange(max_spe)[None, :] < spe_e[:, None]
    pe_bytes = np.concatenate(
        [
            np.where(
                valid_dpe, dense_input_bytes + dense_weight_bytes + output_bytes[:, None], 0.0
            ),
            np.where(
                valid_spe, sparse_input_bytes + sparse_weight_bytes + output_bytes[:, None], 0.0
            ),
        ],
        axis=1,
    )
    glb_bytes = pe_bytes.sum(axis=1)
    noc_cycles = pe_bytes.max(axis=1) / noc_bw_c[cfg]
    noc_pj = (pe_bytes * hops_c[cfg]).sum(axis=1) * table.noc_pj_per_byte_hop

    mac_pj = executed * mac_energy
    local_buffer_pj = glb_bytes * table.local_buffer_pj_per_byte
    global_buffer_pj = glb_bytes * table.global_buffer_pj_per_byte
    idle_pj = (
        dense_cycles_pe.sum(axis=1) + sparse_cycles_pe.sum(axis=1)
    ) * table.idle_pj_per_cycle_per_pe
    detector_pj = (dpe_e + spe_e) * out_channels * table.detector_pj_per_channel

    working_set = weight_bytes_total + input_bytes_full + output_bytes
    capacity = capacity_c[cfg]
    dram_pj = np.where(working_set > capacity, working_set - capacity, 0.0) * (
        table.dram_pj_per_byte
    )

    compute_cycles = np.maximum(dense_cycles, sparse_cycles)
    layer_cycles = np.maximum(compute_cycles, noc_cycles)

    # --- report assembly --------------------------------------------------
    # Bulk-convert to Python scalars once; per-element float() casts in the
    # construction loop would dominate the backend's runtime.
    energy_columns = [
        mac_pj,
        local_buffer_pj,
        global_buffer_pj,
        dram_pj,
        noc_pj,
        detector_pj,
        idle_pj,
    ]
    per_layer = list(
        zip(
            layer_cycles.tolist(),
            total_macs.tolist(),
            executed.tolist(),
            num_dense.tolist(),
            num_sparse.tolist(),
            dense_cycles.tolist(),
            sparse_cycles.tolist(),
            *[column.tolist() for column in energy_columns],
        )
    )
    # Positional construction: this comprehension runs once per flattened
    # entry and keyword-argument binding measurably dominates it on small
    # traces.  Row layout: cycles, total/executed MACs, dense/sparse channel
    # counts, dense/sparse cycles, then the 7 EnergyBreakdown components.
    layer_results = [
        LayerExecutionResult(
            workloads[i].name, row[0], EnergyBreakdown(*row[7:]), row[1], row[2],
            row[3], row[4], [], row[5], row[6],
        )
        for i, row in enumerate(per_layer)
    ]

    # Step boundaries in the flattened (config-major, trace-major) entry
    # order.  Per-step sums must use the reference loop's *sequential*
    # association ((l0 + l1) + l2)... so batched results are bit-identical to
    # a solo run of the same trace, not merely close.  ``np.add.reduceat``
    # does NOT guarantee that: it sums segments pairwise, and its implicit
    # final segment runs to the end of the array, so the same step sums over
    # a different tree depending on where it lands in the batch — a one-ulp
    # divergence between a fleet worker's single-config partition and the
    # fused sweep.  :func:`_segment_sums` accumulates one row per segment
    # per iteration instead: sequential association per segment, vectorized
    # across segments, and independent of the surrounding batch shape.
    step_sizes = np.array(
        [len(step) for _, traces in entries for trace in traces for step in trace],
        dtype=np.int64,
    )
    ends = np.cumsum(step_sizes)
    starts = ends - step_sizes
    stacked = np.column_stack([layer_cycles, *energy_columns])
    trace_steps = np.array(
        [len(trace) for _, traces in entries for trace in traces], dtype=np.int64
    )
    if len(step_sizes):
        sums = _segment_sums(stacked, starts, step_sizes)
        per_step = sums.tolist()
        # Same shape one level up: per-trace totals are sequential sums of
        # the per-step rows, reproducing the reference loop's association
        # (total = ((s0 + s1) + s2)...) bit for bit.
        trace_ends = np.cumsum(trace_steps)
        trace_starts = trace_ends - trace_steps
        totals = _segment_sums(sums, trace_starts, trace_steps)
        per_trace = totals.tolist()
    else:
        per_step = []
        per_trace = [[0.0] * stacked.shape[1] for _ in trace_steps]

    start_list = starts.tolist()
    end_list = ends.tolist()
    results: list[list[SimulationReport]] = []
    global_step = 0
    global_trace = 0
    for config_idx, (config, traces) in enumerate(entries):
        reports = []
        for trace_idx, trace in enumerate(traces):
            num_steps = len(trace)
            seg_starts = start_list[global_step : global_step + num_steps]
            seg_ends = end_list[global_step : global_step + num_steps]
            step_results = [
                StepResult(
                    time_step,
                    row[0],
                    EnergyBreakdown(*row[1:]),
                    layer_results[seg_starts[time_step] : seg_ends[time_step]],
                )
                for time_step, row in enumerate(per_step[global_step : global_step + num_steps])
            ]
            global_step += num_steps
            totals_row = per_trace[global_trace]
            global_trace += 1
            trace_stats = detector_by_pair.get((config_idx, trace_idx))
            reports.append(
                SimulationReport(
                    config_name=config.name,
                    total_cycles=totals_row[0],
                    total_energy=EnergyBreakdown(*totals_row[1:]),
                    step_results=step_results,
                    clock_ghz=config.clock_ghz,
                    detector_stats=trace_stats if trace_stats is not None else DetectorStats(),
                )
            )
        results.append(reports)
    return results


class VectorizedBackend:
    """Evaluates an entire workload trace with batched NumPy operations."""

    name = "vectorized"

    def __init__(self, config: AcceleratorConfig, energy_table: EnergyTable | None = None):
        self.config = config
        self.energy_table = energy_table or DEFAULT_ENERGY_TABLE
        self.detector_stats = DetectorStats()

    def reset(self) -> None:
        self.detector_stats.reset()

    def run_trace(self, trace: "list[list[ConvLayerWorkload]]"):
        """Execute a full multi-time-step workload trace."""
        return self.run_traces([trace])[0]

    def run_traces(self, traces: "list[list[list[ConvLayerWorkload]]]") -> "list":
        """Execute several traces on this configuration in one batched pass.

        The cross-trace entry point behind fleet sweeps: all (trace, time
        step, layer) cells are flattened into one entry axis and every array
        quantity is computed for the whole batch at once, so N queued traces
        sharing an :class:`AcceleratorConfig` cost one NumPy pass instead of
        N.  Per-trace results are bit-identical to ``run_trace`` runs — the
        per-entry math is row-independent and each trace keeps its own
        detector schedule — and :attr:`detector_stats` holds the batch totals.
        """
        return self.run_config_traces([(self.config, traces)])[0]

    def run_config_traces(
        self, entries: "list[tuple[AcceleratorConfig, list[list[list[ConvLayerWorkload]]]]]"
    ) -> "list[list]":
        """Execute a ``(config x trace)`` batch in one cross-config pass.

        See the module-level :func:`run_config_traces`; this instance method
        additionally records the whole batch's detector totals on
        :attr:`detector_stats`.  The backend's own configuration does not
        constrain the batch — every entry carries its config — but all
        entries share this backend's energy table.
        """
        self.reset()
        return run_config_traces(entries, self.energy_table, batch_stats=self.detector_stats)
