"""Simulation-backend protocol shared by the reference and vectorized engines.

A backend turns a :data:`~repro.accelerator.simulator.WorkloadTrace` into a
:class:`~repro.accelerator.simulator.SimulationReport`.  Two implementations
ship with the package:

* :class:`~repro.accelerator.backends.reference.ReferenceBackend` drives the
  stateful controller / PE / NoC / memory objects layer by layer — the
  original, easily-inspectable model;
* :class:`~repro.accelerator.backends.vectorized.VectorizedBackend` flattens
  the whole trace into NumPy arrays and evaluates every (time step, layer,
  PE) cell with batched array operations, producing equivalent reports at a
  fraction of the cost.

Both expose the same interface so :class:`AcceleratorSimulator` (and any
sweep tooling) can switch between them via ``backend="reference"`` /
``backend="vectorized"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..config import AcceleratorConfig
    from ..simulator import SimulationReport, WorkloadTrace


@dataclass(slots=True)
class DetectorStats:
    """Temporal-sparsity-detector activity observed during the last run."""

    updates_performed: int = 0
    channels_evaluated: int = 0

    def reset(self) -> None:
        self.updates_performed = 0
        self.channels_evaluated = 0


@runtime_checkable
class SimulationBackend(Protocol):
    """Protocol every simulation engine implements."""

    #: Registry name of the backend ("reference", "vectorized", ...).
    name: str

    #: Detector activity of the most recent :meth:`run_trace` call.
    detector_stats: DetectorStats

    def run_trace(self, trace: "WorkloadTrace") -> "SimulationReport":
        """Execute a full multi-time-step workload trace."""
        ...

    def run_traces(self, traces: "list[WorkloadTrace]") -> "list[SimulationReport]":
        """Execute several traces on this configuration, one report each.

        Engines that can batch across traces (the vectorized backend) fuse
        the whole list into a single pass; others run a plain loop.  Either
        way, each trace's report must be identical to a ``run_trace`` run,
        and ``detector_stats`` afterwards reflects the whole batch.
        """
        ...

    def run_config_traces(
        self, entries: "list[tuple[AcceleratorConfig, list[WorkloadTrace]]]"
    ) -> "list[list[SimulationReport]]":
        """Execute a ``(config x trace)`` batch, one report list per entry.

        The cross-config generalization of :meth:`run_traces`: every entry
        pairs a configuration with the traces to run on it, and the result is
        aligned with the input.  The vectorized engine fuses the whole batch
        (all configs, all traces) into one NumPy pass; the reference engine
        loops.  All entries share this backend's energy table, and every
        report must be identical to a solo ``run_trace`` of its
        (config, trace) pair.
        """
        ...

    def reset(self) -> None:
        """Clear any cross-run state (detector classifications, counters)."""
        ...
