"""Reference simulation backend: the stateful per-layer controller loop.

This is the original execution model of the simulator: one
:class:`~repro.accelerator.controller.AcceleratorController` call per layer
per time step, each of which exercises the detector, PE, NoC and memory
models as distinct Python objects.  It is the semantic ground truth the
vectorized engine is validated against, and remains the right tool for
unit-level inspection (per-PE results, buffer traffic counters).
"""

from __future__ import annotations

from ..config import AcceleratorConfig
from ..controller import AcceleratorController
from ..energy import DEFAULT_ENERGY_TABLE, EnergyBreakdown, EnergyTable
from ..workload import ConvLayerWorkload
from .base import DetectorStats


class ReferenceBackend:
    """Executes traces through the stateful controller, layer by layer."""

    name = "reference"

    def __init__(
        self,
        config: AcceleratorConfig,
        energy_table: EnergyTable | None = None,
        controller: AcceleratorController | None = None,
    ):
        self.config = config
        self.energy_table = energy_table or DEFAULT_ENERGY_TABLE
        self.controller = controller or AcceleratorController(config, self.energy_table)

    @property
    def detector_stats(self) -> DetectorStats:
        detector = self.controller.detector
        return DetectorStats(
            updates_performed=detector.updates_performed,
            channels_evaluated=detector.channels_evaluated,
        )

    def reset(self) -> None:
        self.controller.reset()

    def run_step(self, workloads: list[ConvLayerWorkload], time_step: int = 0):
        """Execute all layers of one time step back to back."""
        from ..simulator import StepResult

        cycles = 0.0
        energy = EnergyBreakdown()
        layer_results = []
        for workload in workloads:
            result = self.controller.execute_layer(workload, time_step)
            cycles += result.cycles
            energy = energy + result.energy
            layer_results.append(result)
        return StepResult(
            time_step=time_step, cycles=cycles, energy=energy, layer_results=layer_results
        )

    def run_traces(self, traces: "list[list[list[ConvLayerWorkload]]]") -> "list":
        """Execute several traces back to back (no cross-trace batching).

        Provided for interface parity with the vectorized engine's batched
        entry point; the reference model is inherently sequential, so this is
        a plain loop with the usual per-trace controller reset.
        """
        return [self.run_trace(trace) for trace in traces]

    def run_config_traces(
        self, entries: "list[tuple[AcceleratorConfig, list[list[list[ConvLayerWorkload]]]]]"
    ) -> "list[list]":
        """Execute a ``(config x trace)`` batch, looping one controller per config.

        Interface parity with the vectorized engine's cross-config kernel:
        each entry's configuration gets a fresh :class:`ReferenceBackend`
        sharing this backend's energy table, so results are exactly what solo
        ``run_trace`` calls would produce.
        """
        results = []
        for config, traces in entries:
            backend = self if config is self.config else ReferenceBackend(config, self.energy_table)
            results.append(backend.run_traces(traces))
        return results

    def run_trace(self, trace: "list[list[ConvLayerWorkload]]"):
        """Execute a full multi-time-step workload trace."""
        from ..simulator import SimulationReport

        self.controller.reset()
        step_results = []
        total_cycles = 0.0
        total_energy = EnergyBreakdown()
        for time_step, workloads in enumerate(trace):
            step = self.run_step(workloads, time_step)
            step_results.append(step)
            total_cycles += step.cycles
            total_energy = total_energy + step.energy
        return SimulationReport(
            config_name=self.config.name,
            total_cycles=total_cycles,
            total_energy=total_energy,
            step_results=step_results,
            clock_ghz=self.config.clock_ghz,
            # The controller was reset at trace start, so the detector's
            # counters at this point are exactly this trace's activity.
            detector_stats=self.detector_stats,
        )
