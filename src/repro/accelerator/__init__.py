"""Accelerator substrate: cycle-approximate model of the SQ-DM dense/sparse architecture."""

from .address_gen import FetchPlan, SparsityAwareAddressGenerator
from .backends import (
    DEFAULT_BACKEND,
    DetectorStats,
    ReferenceBackend,
    SimulationBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
)
from .config import AcceleratorConfig, PEConfig, dense_baseline_config, sqdm_config
from .controller import AcceleratorController, LayerExecutionResult
from .datapath import DenseDatapath, SparseDatapath, balance_point, precision_packing_factor
from .detector import (
    ChannelClassification,
    TemporalSparsityDetector,
    classify_channels,
    measure_channel_sparsity,
)
from .energy import DEFAULT_ENERGY_TABLE, EnergyBreakdown, EnergyTable
from .memory import (
    ActivationMapping,
    GlobalBuffer,
    SparseChannelRecord,
    WeightMapping,
    compress_channel,
)
from .noc import GLOBAL_BUFFER_NODE, InterconnectNetwork, TransferResult
from .pe import ChannelGroupResult, ProcessingElement
from .simulator import (
    AcceleratorSimulator,
    ComparisonResult,
    SimulationReport,
    StepResult,
    WorkloadTrace,
    compare_to_dense_baseline,
    relative_saving,
    retime_trace_precision,
    safe_speedup,
)
from .workload import ConvLayerWorkload, conv_workload_from_layer, random_workload

__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_ENERGY_TABLE",
    "GLOBAL_BUFFER_NODE",
    "AcceleratorConfig",
    "AcceleratorController",
    "AcceleratorSimulator",
    "ActivationMapping",
    "ChannelClassification",
    "ChannelGroupResult",
    "ComparisonResult",
    "ConvLayerWorkload",
    "DenseDatapath",
    "DetectorStats",
    "EnergyBreakdown",
    "EnergyTable",
    "FetchPlan",
    "GlobalBuffer",
    "InterconnectNetwork",
    "LayerExecutionResult",
    "PEConfig",
    "ProcessingElement",
    "ReferenceBackend",
    "SimulationBackend",
    "SimulationReport",
    "SparseChannelRecord",
    "SparseDatapath",
    "SparsityAwareAddressGenerator",
    "StepResult",
    "TemporalSparsityDetector",
    "TransferResult",
    "VectorizedBackend",
    "WeightMapping",
    "WorkloadTrace",
    "available_backends",
    "balance_point",
    "classify_channels",
    "compare_to_dense_baseline",
    "compress_channel",
    "conv_workload_from_layer",
    "dense_baseline_config",
    "get_backend",
    "measure_channel_sparsity",
    "precision_packing_factor",
    "random_workload",
    "relative_saving",
    "retime_trace_precision",
    "safe_speedup",
    "sqdm_config",
]
