"""Temporal sparsity detector and channel classification (Sec. IV-C).

The detector lives in each PE's post-processing unit.  As output activations
stream out, it counts zeros per channel, compares the zero fraction against a
threshold (30% in the paper) and records each channel as *dense* or *sparse*
for the next layer's sparsity-aware address generator.  Because per-channel
sparsity evolves across diffusion time steps (Fig. 7), the classification is
refreshed on a configurable schedule; the paper chooses every time step since
the detection cost is negligible and hidden behind compute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(slots=True)
class ChannelClassification:
    """Dense/sparse split of a layer's input channels at one time step."""

    dense_channels: np.ndarray
    sparse_channels: np.ndarray
    sparsity: np.ndarray
    threshold: float

    @property
    def num_channels(self) -> int:
        return int(self.sparsity.size)

    @property
    def sparse_fraction(self) -> float:
        """Fraction of channels routed to the sparse PE."""
        if self.num_channels == 0:
            return 0.0
        return self.sparse_channels.size / self.num_channels

    @property
    def sparse_group_sparsity(self) -> float:
        """Average sparsity inside the sparse group (the paper reports ~70%)."""
        if self.sparse_channels.size == 0:
            return 0.0
        return float(np.mean(self.sparsity[self.sparse_channels]))

    @property
    def dense_group_sparsity(self) -> float:
        if self.dense_channels.size == 0:
            return 0.0
        return float(np.mean(self.sparsity[self.dense_channels]))


def classify_channels(channel_sparsity: np.ndarray, threshold: float) -> ChannelClassification:
    """Split channels into dense (< threshold zeros) and sparse (>= threshold)."""
    sparsity = np.asarray(channel_sparsity, dtype=np.float64)
    if np.any((sparsity < 0) | (sparsity > 1)):
        raise ValueError("channel sparsities must lie in [0, 1]")
    sparse_mask = sparsity >= threshold
    return ChannelClassification(
        dense_channels=np.flatnonzero(~sparse_mask),
        sparse_channels=np.flatnonzero(sparse_mask),
        sparsity=sparsity,
        threshold=float(threshold),
    )


def measure_channel_sparsity(activation: np.ndarray, zero_tolerance: float = 0.0) -> np.ndarray:
    """Per-channel zero fraction of an activation tensor (C, H, W) or (B, C, H, W)."""
    activation = np.asarray(activation)
    if activation.ndim == 4:
        channel_axis = 1
    elif activation.ndim == 3:
        channel_axis = 0
    else:
        raise ValueError(f"expected a 3-D or 4-D activation tensor, got ndim={activation.ndim}")
    moved = np.moveaxis(activation, channel_axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    zeros = np.count_nonzero(np.abs(flat) <= zero_tolerance, axis=1)
    return zeros / flat.shape[1]


class TemporalSparsityDetector:
    """Stateful detector that tracks per-layer channel classifications over time.

    Parameters
    ----------
    threshold:
        Zero-fraction threshold above which a channel is classified sparse.
    update_period:
        Number of diffusion time steps between classification refreshes.
        Between updates, the *stale* classification from the last update is
        reused — channels that changed character are then mis-categorized,
        which is precisely the speed-up loss analysed in Fig. 11 (right).
    """

    def __init__(self, threshold: float = 0.30, update_period: int = 1):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if update_period < 1:
            raise ValueError("update_period must be >= 1")
        self.threshold = float(threshold)
        self.update_period = int(update_period)
        self._classifications: dict[str, ChannelClassification] = {}
        self._last_update_step: dict[str, int] = {}
        self.updates_performed = 0
        self.channels_evaluated = 0

    def reset(self) -> None:
        self._classifications.clear()
        self._last_update_step.clear()
        self.updates_performed = 0
        self.channels_evaluated = 0

    def should_update(self, layer_name: str, time_step: int) -> bool:
        """Whether the classification for ``layer_name`` is refreshed at this step."""
        if layer_name not in self._classifications:
            return True
        last = self._last_update_step[layer_name]
        return (time_step - last) >= self.update_period

    def observe(
        self, layer_name: str, time_step: int, channel_sparsity: np.ndarray
    ) -> ChannelClassification:
        """Feed the measured per-channel sparsity for a layer at a time step.

        Returns the classification the hardware will use for this layer at
        this time step: freshly computed if the update schedule says so,
        otherwise the stale one from the most recent update.
        """
        if self.should_update(layer_name, time_step):
            classification = classify_channels(channel_sparsity, self.threshold)
            self._classifications[layer_name] = classification
            self._last_update_step[layer_name] = time_step
            self.updates_performed += 1
            self.channels_evaluated += int(np.asarray(channel_sparsity).size)
            return classification
        stale = self._classifications[layer_name]
        # The hardware reuses the stale dense/sparse split but the actual data
        # has the *current* sparsity; reflect that in the returned object so the
        # datapath model charges the true nonzero work.
        return ChannelClassification(
            dense_channels=stale.dense_channels,
            sparse_channels=stale.sparse_channels,
            sparsity=np.asarray(channel_sparsity, dtype=np.float64),
            threshold=self.threshold,
        )

    def classification_for(self, layer_name: str) -> ChannelClassification | None:
        """The most recent classification for a layer, if any."""
        return self._classifications.get(layer_name)
