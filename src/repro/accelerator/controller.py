"""Accelerator controller: per-layer channel grouping, PE dispatch and accounting.

The controller (Fig. 9) manages time-step information, obtains the
dense/sparse channel classification from the temporal sparsity detector,
dispatches the dense channel group to the DPE(s) and the sparse group to the
SPE(s), waits for both (the layer's latency is the *maximum* of the two,
since they operate concurrently on disjoint input channels), accumulates the
partial sums, and charges global-buffer / NoC / DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import AcceleratorConfig
from .detector import ChannelClassification, TemporalSparsityDetector, classify_channels
from .energy import DEFAULT_ENERGY_TABLE, EnergyBreakdown, EnergyTable
from .memory import GlobalBuffer
from .noc import InterconnectNetwork
from .pe import ChannelGroupResult, ProcessingElement
from .workload import ConvLayerWorkload


@dataclass(slots=True)
class LayerExecutionResult:
    """Latency/energy of one convolution layer at one diffusion time step."""

    layer_name: str
    cycles: float
    energy: EnergyBreakdown
    total_macs: float
    executed_macs: float
    dense_channels: int
    sparse_channels: int
    pe_results: list[ChannelGroupResult] = field(default_factory=list)
    dense_cycles: float = 0.0
    sparse_cycles: float = 0.0

    @property
    def skipped_fraction(self) -> float:
        if self.total_macs == 0:
            return 0.0
        return 1.0 - self.executed_macs / self.total_macs

    @property
    def load_imbalance(self) -> float:
        """Relative idle time of the less-loaded PE class (0 = perfectly balanced)."""
        longest = max(self.dense_cycles, self.sparse_cycles)
        if longest == 0:
            return 0.0
        return abs(self.dense_cycles - self.sparse_cycles) / longest


def _split_evenly(channels: np.ndarray, num_parts: int) -> list[np.ndarray]:
    """Split a channel list into ``num_parts`` nearly equal chunks."""
    if num_parts <= 0:
        return []
    return [np.asarray(part, dtype=np.int64) for part in np.array_split(channels, num_parts)]


class AcceleratorController:
    """Executes layer workloads on the configured dense/sparse PE array."""

    def __init__(self, config: AcceleratorConfig, energy_table: EnergyTable | None = None):
        self.config = config
        self.energy_table = energy_table or DEFAULT_ENERGY_TABLE
        self.detector = TemporalSparsityDetector(
            threshold=config.sparsity_threshold, update_period=config.sparsity_update_period
        )
        self.global_buffer = GlobalBuffer(capacity_kib=config.global_buffer_kib)
        self.noc = InterconnectNetwork(config, self.energy_table)
        self.dense_pes = [
            ProcessingElement(f"dpe{i}", "dense", config.pe, self.energy_table)
            for i in range(config.num_dpe)
        ]
        self.sparse_pes = [
            ProcessingElement(f"spe{i}", "sparse", config.pe, self.energy_table)
            for i in range(config.num_spe)
        ]

    # -- channel grouping ------------------------------------------------------

    def classify(self, workload: ConvLayerWorkload, time_step: int) -> ChannelClassification:
        """Dense/sparse channel classification for this layer at this time step.

        A purely dense configuration (no SPEs) treats every channel as dense
        regardless of the detector output, which is exactly the baseline
        architecture of Sec. IV-D.
        """
        if not self.sparse_pes:
            return classify_channels(workload.channel_sparsity, threshold=1.1)
        if not self.dense_pes:
            return classify_channels(workload.channel_sparsity, threshold=-0.1)
        return self.detector.observe(workload.name, time_step, workload.channel_sparsity)

    # -- execution ---------------------------------------------------------------

    def execute_layer(
        self, workload: ConvLayerWorkload, time_step: int = 0
    ) -> LayerExecutionResult:
        """Execute one convolution layer, returning its latency and energy."""
        classification = self.classify(workload, time_step)

        pe_results: list[ChannelGroupResult] = []
        dense_cycles = 0.0
        sparse_cycles = 0.0
        energy = EnergyBreakdown()

        # Dense group split across DPEs; sparse group split across SPEs.
        if self.dense_pes:
            for pe, chans in zip(
                self.dense_pes, _split_evenly(classification.dense_channels, len(self.dense_pes))
            ):
                result = pe.process_channel_group(workload, chans)
                pe_results.append(result)
                dense_cycles = max(dense_cycles, result.cycles)
                energy = energy + result.energy
        if self.sparse_pes:
            for pe, chans in zip(
                self.sparse_pes, _split_evenly(classification.sparse_channels, len(self.sparse_pes))
            ):
                result = pe.process_channel_group(workload, chans)
                pe_results.append(result)
                sparse_cycles = max(sparse_cycles, result.cycles)
                energy = energy + result.energy

        # Global buffer and NoC traffic: every PE's operand fetches come from the
        # GLB; each PE writes back its partial sums which the PPU accumulates.
        glb_bytes = 0.0
        noc_cycles = 0.0
        for result in pe_results:
            operand_bytes = result.input_bytes + result.weight_bytes
            writeback_bytes = result.output_bytes
            self.global_buffer.read(operand_bytes)
            self.global_buffer.write(writeback_bytes)
            glb_bytes += operand_bytes + writeback_bytes
            transfer = self.noc.transfer(result.pe_name, operand_bytes + writeback_bytes)
            noc_cycles = max(noc_cycles, transfer.cycles)
            energy = energy + EnergyBreakdown(noc_pj=transfer.energy_pj)
        energy = energy + EnergyBreakdown(
            global_buffer_pj=glb_bytes * self.energy_table.global_buffer_pj_per_byte
        )

        # DRAM traffic for working sets that exceed the global buffer.
        working_set = workload.weight_bytes() + workload.input_bytes() + workload.output_bytes()
        if not self.global_buffer.fits(working_set):
            spill_bytes = working_set - self.global_buffer.capacity_bytes
            energy = energy + EnergyBreakdown(
                dram_pj=spill_bytes * self.energy_table.dram_pj_per_byte
            )

        # Compute/communication overlap: operand streaming is double-buffered, so
        # the layer latency is dominated by the slower of compute and NoC.
        compute_cycles = max(dense_cycles, sparse_cycles)
        cycles = max(compute_cycles, noc_cycles)

        executed = sum(r.macs_executed for r in pe_results)
        return LayerExecutionResult(
            layer_name=workload.name,
            cycles=cycles,
            energy=energy,
            total_macs=float(workload.total_macs),
            executed_macs=executed,
            dense_channels=int(classification.dense_channels.size),
            sparse_channels=int(classification.sparse_channels.size),
            pe_results=pe_results,
            dense_cycles=dense_cycles,
            sparse_cycles=sparse_cycles,
        )

    def reset(self) -> None:
        """Clear detector state and traffic counters between simulations."""
        self.detector.reset()
        self.global_buffer.reset()
