"""28 nm energy model.

Per-operation energy constants in picojoules, in line with published 28 nm
figures (Horowitz ISSCC'14 scaling, MAGNet / Simba-style accelerator
publications).  Absolute values are approximate; the paper's claims
(51.5% system energy saving from temporal sparsity, Fig. 12) depend on the
*ratios* between MAC energy at different precisions and between datapath and
memory energy, which these constants preserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class EnergyTable:
    """Per-operation energies in picojoules at 28 nm, 1 V nominal."""

    #: Multiply-accumulate energy per operation, keyed by operand bit width.
    mac_pj: dict[int, float] = field(
        default_factory=lambda: {4: 0.06, 8: 0.2, 16: 1.1, 32: 3.7}
    )
    #: Local PE buffer (register-file / small SRAM) access energy per byte.
    local_buffer_pj_per_byte: float = 0.12
    #: Global buffer (large SRAM) access energy per byte.
    global_buffer_pj_per_byte: float = 1.2
    #: Off-chip DRAM access energy per byte.
    dram_pj_per_byte: float = 20.0
    #: NoC router traversal energy per byte per hop.
    noc_pj_per_byte_hop: float = 0.08
    #: Energy of one sparsity-detector comparison (popcount + compare) per channel.
    detector_pj_per_channel: float = 0.5
    #: Static/leakage + control power expressed as pJ per cycle per PE.
    idle_pj_per_cycle_per_pe: float = 2.0

    def mac_energy(self, bits: int) -> float:
        """MAC energy for the given operand width, interpolating if needed."""
        if bits in self.mac_pj:
            return self.mac_pj[bits]
        known = sorted(self.mac_pj)
        if bits <= known[0]:
            return self.mac_pj[known[0]]
        if bits >= known[-1]:
            return self.mac_pj[known[-1]]
        for low, high in zip(known, known[1:]):
            if low < bits < high:
                frac = (bits - low) / (high - low)
                return self.mac_pj[low] * (1 - frac) + self.mac_pj[high] * frac
        raise AssertionError("unreachable")


@dataclass(slots=True)
class EnergyBreakdown:
    """Energy totals (picojoules) by component, summable across layers/steps."""

    mac_pj: float = 0.0
    local_buffer_pj: float = 0.0
    global_buffer_pj: float = 0.0
    dram_pj: float = 0.0
    noc_pj: float = 0.0
    detector_pj: float = 0.0
    idle_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.mac_pj
            + self.local_buffer_pj
            + self.global_buffer_pj
            + self.dram_pj
            + self.noc_pj
            + self.detector_pj
            + self.idle_pj
        )

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            mac_pj=self.mac_pj + other.mac_pj,
            local_buffer_pj=self.local_buffer_pj + other.local_buffer_pj,
            global_buffer_pj=self.global_buffer_pj + other.global_buffer_pj,
            dram_pj=self.dram_pj + other.dram_pj,
            noc_pj=self.noc_pj + other.noc_pj,
            detector_pj=self.detector_pj + other.detector_pj,
            idle_pj=self.idle_pj + other.idle_pj,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Breakdown with every component multiplied by ``factor``."""
        return EnergyBreakdown(
            mac_pj=self.mac_pj * factor,
            local_buffer_pj=self.local_buffer_pj * factor,
            global_buffer_pj=self.global_buffer_pj * factor,
            dram_pj=self.dram_pj * factor,
            noc_pj=self.noc_pj * factor,
            detector_pj=self.detector_pj * factor,
            idle_pj=self.idle_pj * factor,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "mac_pj": self.mac_pj,
            "local_buffer_pj": self.local_buffer_pj,
            "global_buffer_pj": self.global_buffer_pj,
            "dram_pj": self.dram_pj,
            "noc_pj": self.noc_pj,
            "detector_pj": self.detector_pj,
            "idle_pj": self.idle_pj,
            "total_pj": self.total_pj,
        }


DEFAULT_ENERGY_TABLE = EnergyTable()
