"""Hardware configuration for the SQ-DM accelerator and the dense baseline.

The paper's evaluation (Sec. IV-D) assumes one Dense Processing Element (DPE)
and one Sparse Processing Element (SPE), each containing 128 multipliers,
simulated in 28 nm.  The baseline for comparison is a purely dense
architecture with two DPEs — i.e. the same total multiplier count, so any
speed-up comes from exploiting sparsity rather than from extra silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class PEConfig:
    """Configuration of a single processing element.

    ``multipliers`` counts FP16-capable multiplier lanes; lower-precision
    operands are packed, giving ``2x`` throughput for INT8 and ``4x`` for
    INT4 per the paper's computational-equivalence assumption (Sec. III-A).
    """

    multipliers: int = 128
    weight_buffer_kib: int = 32
    input_buffer_kib: int = 32
    accum_buffer_kib: int = 16
    #: Pipeline fill/drain overhead charged once per (output-channel tile x layer).
    pipeline_overhead_cycles: int = 8
    #: Relative utilization of the sparse datapath's multipliers; SIGMA-style
    #: distribution/reduction networks cannot keep every lane busy on
    #: irregular sparsity, so effective throughput is derated.
    sparse_utilization: float = 0.85
    #: Per-nonzero bookkeeping overhead (bitmap decode, index match) of the
    #: sparse datapath, expressed as extra cycles per 1024 nonzero MACs.
    sparse_overhead_per_kmac: float = 0.5

    def __post_init__(self) -> None:
        if self.multipliers <= 0:
            raise ValueError("multipliers must be positive")
        if not 0.0 < self.sparse_utilization <= 1.0:
            raise ValueError("sparse_utilization must be in (0, 1]")


@dataclass(frozen=True, slots=True)
class AcceleratorConfig:
    """Top-level accelerator configuration (Fig. 9).

    ``num_dpe`` dense PEs and ``num_spe`` sparse PEs share a global buffer
    through a configurable router network.  The temporal sparsity detector
    lives in each PE's post-processing unit and re-classifies output
    channels every ``sparsity_update_period`` time steps (the paper selects
    1, i.e. every step, because the detection overhead is hidden behind
    compute).
    """

    name: str = "sqdm"
    num_dpe: int = 1
    num_spe: int = 1
    pe: PEConfig = field(default_factory=PEConfig)
    clock_ghz: float = 1.0
    technology_nm: int = 28
    global_buffer_kib: int = 512
    dram_bandwidth_gbps: float = 64.0
    noc_bandwidth_bytes_per_cycle: int = 64
    sparsity_threshold: float = 0.30
    sparsity_update_period: int = 1

    def __post_init__(self) -> None:
        if self.num_dpe < 0 or self.num_spe < 0 or self.num_dpe + self.num_spe == 0:
            raise ValueError("need at least one PE")
        if not 0.0 <= self.sparsity_threshold <= 1.0:
            raise ValueError("sparsity_threshold must be in [0, 1]")
        if self.sparsity_update_period < 1:
            raise ValueError("sparsity_update_period must be >= 1")

    @property
    def total_pes(self) -> int:
        return self.num_dpe + self.num_spe

    @property
    def cycle_time_ns(self) -> float:
        return 1.0 / self.clock_ghz

    def with_update_period(self, period: int) -> "AcceleratorConfig":
        """Copy of this config with a different sparsity update period."""
        return AcceleratorConfig(
            name=self.name,
            num_dpe=self.num_dpe,
            num_spe=self.num_spe,
            pe=self.pe,
            clock_ghz=self.clock_ghz,
            technology_nm=self.technology_nm,
            global_buffer_kib=self.global_buffer_kib,
            dram_bandwidth_gbps=self.dram_bandwidth_gbps,
            noc_bandwidth_bytes_per_cycle=self.noc_bandwidth_bytes_per_cycle,
            sparsity_threshold=self.sparsity_threshold,
            sparsity_update_period=period,
        )

    def with_threshold(self, threshold: float) -> "AcceleratorConfig":
        """Copy of this config with a different dense/sparse channel threshold."""
        return AcceleratorConfig(
            name=self.name,
            num_dpe=self.num_dpe,
            num_spe=self.num_spe,
            pe=self.pe,
            clock_ghz=self.clock_ghz,
            technology_nm=self.technology_nm,
            global_buffer_kib=self.global_buffer_kib,
            dram_bandwidth_gbps=self.dram_bandwidth_gbps,
            noc_bandwidth_bytes_per_cycle=self.noc_bandwidth_bytes_per_cycle,
            sparsity_threshold=threshold,
            sparsity_update_period=self.sparsity_update_period,
        )


def sqdm_config(**overrides) -> AcceleratorConfig:
    """The paper's heterogeneous configuration: 1 DPE + 1 SPE, 128 multipliers each."""
    return AcceleratorConfig(name="sqdm", num_dpe=1, num_spe=1, **overrides)


def dense_baseline_config(**overrides) -> AcceleratorConfig:
    """The paper's baseline: a purely dense architecture with two DPEs."""
    return AcceleratorConfig(name="dense_baseline", num_dpe=2, num_spe=0, **overrides)
