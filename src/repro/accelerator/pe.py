"""Processing-element model: a dense or sparse datapath plus local buffers and PPU.

Each D/S PE (Fig. 9) contains a sparsity-aware address generator,
weight/input/accumulation buffers, a dense or sparse vector-MAC datapath and
a post-processing unit with the temporal sparsity detector.  The PE model
computes the latency and energy of processing one *channel group* of one
convolution layer — the unit of work the controller assigns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import PEConfig
from .datapath import DatapathResult, DenseDatapath, SparseDatapath
from .energy import EnergyBreakdown, EnergyTable
from .workload import ConvLayerWorkload


@dataclass(slots=True)
class ChannelGroupResult:
    """Outcome of one PE processing one channel group of one layer."""

    pe_name: str
    mode: str  # "dense" or "sparse"
    cycles: float
    energy: EnergyBreakdown
    macs_executed: float
    macs_skipped: float
    input_bytes: float
    weight_bytes: float
    output_bytes: float
    num_channels: int


class ProcessingElement:
    """One PE configured as either a dense or a sparse engine.

    The configuration bit corresponds to the paper's statement that "each PE
    can be configured to either the dense or sparse datapath, depending on
    the computation type".
    """

    def __init__(self, name: str, mode: str, pe_config: PEConfig, energy_table: EnergyTable):
        if mode not in ("dense", "sparse"):
            raise ValueError(f"mode must be 'dense' or 'sparse', got {mode!r}")
        self.name = name
        self.mode = mode
        self.config = pe_config
        self.energy_table = energy_table
        self.dense_datapath = DenseDatapath(pe_config, energy_table)
        self.sparse_datapath = SparseDatapath(pe_config, energy_table)

    def process_channel_group(
        self, workload: ConvLayerWorkload, channels: np.ndarray
    ) -> ChannelGroupResult:
        """Process the subset ``channels`` of the layer's input channels.

        Dense PEs fetch the full channel data and execute every MAC.  Sparse
        PEs fetch compressed channels (values + bitmap) and only execute
        MACs for nonzero activations.
        """
        channels = np.asarray(channels, dtype=np.int64)
        num_channels = int(channels.size)
        mask = np.zeros(workload.in_channels, dtype=bool)
        mask[channels] = True

        group_macs = float(num_channels * workload.macs_per_input_channel)
        weight_bytes = workload.weight_bytes() * (num_channels / max(workload.in_channels, 1))
        output_bytes = workload.output_bytes()  # each PE produces full partial sums

        if self.mode == "dense":
            input_bytes = workload.input_bytes(dense_only=True, channel_mask=mask)
            result = self.dense_datapath.execute(
                macs=group_macs,
                weight_bits=workload.weight_bits,
                act_bits=workload.act_bits,
                input_bytes=input_bytes,
                weight_bytes=weight_bytes,
                output_bytes=output_bytes,
            )
        else:
            input_bytes = workload.input_bytes(dense_only=False, channel_mask=mask)
            if num_channels > 0:
                nonzero_fraction = float(np.mean(1.0 - workload.channel_sparsity[channels]))
            else:
                nonzero_fraction = 0.0
            result = self.sparse_datapath.execute(
                total_macs=group_macs,
                nonzero_fraction=nonzero_fraction,
                weight_bits=workload.weight_bits,
                act_bits=workload.act_bits,
                input_bytes=input_bytes,
                weight_bytes=weight_bytes,
                output_bytes=output_bytes,
            )

        energy = self._add_ppu_energy(result, workload)
        return ChannelGroupResult(
            pe_name=self.name,
            mode=self.mode,
            cycles=result.cycles,
            energy=energy,
            macs_executed=result.macs_executed,
            macs_skipped=result.macs_skipped,
            input_bytes=input_bytes,
            weight_bytes=weight_bytes,
            output_bytes=output_bytes,
            num_channels=num_channels,
        )

    def _add_ppu_energy(
        self, result: DatapathResult, workload: ConvLayerWorkload
    ) -> EnergyBreakdown:
        """Charge the PPU's temporal sparsity detector for scanning the output channels."""
        detector_energy = workload.out_channels * self.energy_table.detector_pj_per_channel
        return result.energy + EnergyBreakdown(detector_pj=detector_energy)

    def buffer_fits(self, workload: ConvLayerWorkload, channels: np.ndarray) -> bool:
        """Check whether the channel group's working set fits in the PE buffers."""
        channels = np.asarray(channels, dtype=np.int64)
        mask = np.zeros(workload.in_channels, dtype=bool)
        mask[channels] = True
        input_bytes = workload.input_bytes(dense_only=self.mode == "dense", channel_mask=mask)
        weight_bytes = workload.weight_bytes() * (channels.size / max(workload.in_channels, 1))
        fits_input = input_bytes <= self.config.input_buffer_kib * 1024
        fits_weight = weight_bytes <= self.config.weight_buffer_kib * 1024
        return fits_input and fits_weight
