"""SQ-DM reproduction: diffusion models under aggressive quantization and temporal sparsity.

The package is organized by subsystem:

* :mod:`repro.quant` -- quantization data formats (INT4/UINT4/INT8, MXINT8,
  INT4-VSQ, the paper's INT4+FP8-scale format) and error metrics.
* :mod:`repro.nn` -- a NumPy DNN substrate with an EDM-style U-Net.
* :mod:`repro.diffusion` -- EDM preconditioning, samplers, synthetic
  datasets, proxy FID, and SiLU-to-ReLU adaptation.
* :mod:`repro.accelerator` -- a cycle-approximate model of the heterogeneous
  dense/sparse accelerator (DPE/SPE, channel-last memory mapping, temporal
  sparsity detector, 28 nm energy model).
* :mod:`repro.core` -- the SQ-DM co-design itself: mixed-precision policies,
  temporal sparsity traces, update scheduling, and the end-to-end pipeline.
* :mod:`repro.analysis` / :mod:`repro.workloads` -- experiment support and
  the four paper workloads.

Quick start::

    from repro.core import SQDMPipeline, PipelineConfig

    pipeline = SQDMPipeline("cifar10", PipelineConfig(num_fid_samples=16))
    quality = pipeline.evaluate_mixed_precision(relu=True)
    hardware = pipeline.evaluate_hardware()
    print(quality.fid, hardware.total_speedup)
"""

from . import accelerator, analysis, core, diffusion, nn, quant, workloads

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "accelerator",
    "analysis",
    "core",
    "diffusion",
    "nn",
    "quant",
    "workloads",
]
