"""Simulation-report cache keyed by (config, energy table, trace) fingerprints.

Parameter sweeps — Tables I/II, Fig. 3, Fig. 11, threshold/update-period
studies — repeatedly simulate the *same* FP16 or dense-baseline trace while
varying an orthogonal knob.  This module fingerprints every ingredient that
determines a :class:`~repro.accelerator.simulator.SimulationReport` (the
frozen hardware config, the energy table constants, and the full workload
trace including per-channel sparsity arrays) and memoizes reports in an LRU
cache, so shared baselines are simulated once per process.

Reports returned from the cache are shared objects: treat them as read-only,
as all existing analysis code already does.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..accelerator.config import AcceleratorConfig
from ..accelerator.energy import DEFAULT_ENERGY_TABLE, EnergyTable
from ..accelerator.simulator import AcceleratorSimulator, SimulationReport, WorkloadTrace


def fingerprint_config(config: AcceleratorConfig) -> str:
    """Stable digest of every field of an accelerator configuration."""
    payload = repr(
        (
            config.name,
            config.num_dpe,
            config.num_spe,
            config.pe,
            config.clock_ghz,
            config.technology_nm,
            config.global_buffer_kib,
            config.dram_bandwidth_gbps,
            config.noc_bandwidth_bytes_per_cycle,
            config.sparsity_threshold,
            config.sparsity_update_period,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def fingerprint_energy_table(table: EnergyTable) -> str:
    """Stable digest of the per-operation energy constants."""
    payload = repr(
        (
            sorted(table.mac_pj.items()),
            table.local_buffer_pj_per_byte,
            table.global_buffer_pj_per_byte,
            table.dram_pj_per_byte,
            table.noc_pj_per_byte_hop,
            table.detector_pj_per_channel,
            table.idle_pj_per_cycle_per_pe,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def fingerprint_trace(trace: WorkloadTrace) -> str:
    """Stable digest of a workload trace, including per-channel sparsity data."""
    digest = hashlib.sha256()
    for workloads in trace:
        digest.update(b"step")
        for w in workloads:
            digest.update(
                repr(
                    (
                        w.name,
                        w.in_channels,
                        w.out_channels,
                        w.kernel_size,
                        w.out_height,
                        w.out_width,
                        w.weight_bits,
                        w.act_bits,
                        w.block_type,
                    )
                ).encode()
            )
            digest.update(np.ascontiguousarray(w.channel_sparsity, dtype=np.float64).tobytes())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one report cache."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ReportCache:
    """LRU cache of simulation reports keyed by input fingerprints."""

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple[str, str, str, str], SimulationReport] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    @staticmethod
    def key(
        config: AcceleratorConfig,
        trace: WorkloadTrace,
        energy_table: EnergyTable | None = None,
        backend: str | None = None,
    ) -> tuple[str, str, str, str]:
        from ..accelerator.backends import DEFAULT_BACKEND

        return (
            fingerprint_config(config),
            fingerprint_energy_table(energy_table or DEFAULT_ENERGY_TABLE),
            fingerprint_trace(trace),
            backend or DEFAULT_BACKEND,
        )

    def get_or_run(
        self,
        config: AcceleratorConfig,
        trace: WorkloadTrace,
        energy_table: EnergyTable | None = None,
        backend: str | None = None,
    ) -> SimulationReport:
        """Return the cached report for these inputs, simulating on a miss.

        Thread-safe: concurrent sweep workers may look up and insert reports
        simultaneously.  The simulation itself runs outside the lock, so two
        threads missing on the same key race benignly (one result wins).
        """
        key = self.key(config, trace, energy_table, backend)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
        report = AcceleratorSimulator(config, energy_table, backend=backend).run_trace(trace)
        with self._lock:
            self._entries.setdefault(key, report)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return self._entries[key]


#: Process-wide cache used by the pipeline and sweep helpers.
DEFAULT_REPORT_CACHE = ReportCache()


def simulate_cached(
    config: AcceleratorConfig,
    trace: WorkloadTrace,
    energy_table: EnergyTable | None = None,
    backend: str | None = None,
    cache: ReportCache | None = None,
) -> SimulationReport:
    """Run a trace through the (default) report cache."""
    cache = cache or DEFAULT_REPORT_CACHE
    return cache.get_or_run(config, trace, energy_table, backend)
