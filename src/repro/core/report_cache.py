"""Two-tier simulation-report cache keyed by (config, energy table, trace) fingerprints.

Parameter sweeps — Tables I/II, Fig. 3, Fig. 11, threshold/update-period
studies — repeatedly simulate the *same* FP16 or dense-baseline trace while
varying an orthogonal knob.  This module fingerprints every ingredient that
determines a :class:`~repro.accelerator.simulator.SimulationReport` (the
frozen hardware config, the energy table constants, and the full workload
trace including per-channel sparsity arrays) and memoizes reports in two
tiers:

1. an in-process LRU (``OrderedDict``), shared by all sweep threads, and
2. optionally a persistent :class:`~repro.core.artifacts.ArtifactStore`, so a
   second process re-running the same sweep — another worker, a CI job, a
   fresh CLI invocation — loads reports from disk instead of re-simulating.

Reports returned from the cache are shared objects: treat them as read-only,
as all existing analysis code already does.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..accelerator.config import AcceleratorConfig
from ..accelerator.energy import DEFAULT_ENERGY_TABLE, EnergyTable
from ..accelerator.simulator import AcceleratorSimulator, SimulationReport, WorkloadTrace
from .artifacts import ArtifactStore, default_artifact_store
from .columnar import ColumnarReportBatch, ensure_report
from .telemetry import get_registry

# Process-wide tier counters (flat, not labeled, so the CI reconcile step and
# `repro top` can read them without label arithmetic).  Per-cache counts stay
# on each instance's ``CacheStats``; these aggregate across all caches.
_MEMORY_HITS = get_registry().counter(
    "repro_cache_memory_hits_total", "Report-cache lookups served from process memory."
)
_DISK_HITS = get_registry().counter(
    "repro_cache_disk_hits_total",
    "Report-cache lookups served from the artifact tier (then promoted to memory).",
)
_MISSES = get_registry().counter(
    "repro_cache_misses_total", "Report-cache lookups that required a simulation."
)

#: Artifact-store namespace used for persisted simulation reports.
REPORT_ARTIFACT_KIND = "report"

#: Cache keys are 4-tuples of fingerprints: (config, energy table, trace, backend).
CacheKey = tuple[str, str, str, str]


def fingerprint_config(config: AcceleratorConfig) -> str:
    """Stable digest of every field of an accelerator configuration."""
    payload = repr(
        (
            config.name,
            config.num_dpe,
            config.num_spe,
            config.pe,
            config.clock_ghz,
            config.technology_nm,
            config.global_buffer_kib,
            config.dram_bandwidth_gbps,
            config.noc_bandwidth_bytes_per_cycle,
            config.sparsity_threshold,
            config.sparsity_update_period,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def fingerprint_energy_table(table: EnergyTable) -> str:
    """Stable digest of the per-operation energy constants."""
    payload = repr(
        (
            sorted(table.mac_pj.items()),
            table.local_buffer_pj_per_byte,
            table.global_buffer_pj_per_byte,
            table.dram_pj_per_byte,
            table.noc_pj_per_byte_hop,
            table.detector_pj_per_channel,
            table.idle_pj_per_cycle_per_pe,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def fingerprint_trace(trace: WorkloadTrace) -> str:
    """Stable digest of a workload trace, including per-channel sparsity data."""
    digest = hashlib.sha256()
    for workloads in trace:
        digest.update(b"step")
        for w in workloads:
            digest.update(
                repr(
                    (
                        w.name,
                        w.in_channels,
                        w.out_channels,
                        w.kernel_size,
                        w.out_height,
                        w.out_width,
                        w.weight_bits,
                        w.act_bits,
                        w.block_type,
                    )
                ).encode()
            )
            digest.update(np.ascontiguousarray(w.channel_sparsity, dtype=np.float64).tobytes())
    return digest.hexdigest()


#: Identity-keyed memo of trace fingerprints: ``id(trace) -> (trace, digest)``.
#: Server-planned sweeps build one :class:`SimulationRequest` per grid point,
#: all sharing the *same* trace object — without the memo each request
#: re-hashes the identical trace (sha256 over every sparsity array).  Traces
#: are plain lists (not weakref-able), so the memo holds strong references in
#: a small LRU; the stored trace doubles as the id-reuse guard (a hit only
#: counts when the stored object *is* the argument).
_TRACE_FP_MEMO: OrderedDict[int, tuple[WorkloadTrace, str]] = OrderedDict()
_TRACE_FP_MEMO_MAX = 64
_TRACE_FP_MEMO_LOCK = threading.Lock()


def memoized_fingerprint_trace(trace: WorkloadTrace) -> str:
    """``fingerprint_trace`` with an identity-keyed memo for repeated objects.

    Correct only under the simulator's existing contract that traces are not
    mutated after submission (the report cache already relies on this).
    """
    memo_key = id(trace)
    with _TRACE_FP_MEMO_LOCK:
        entry = _TRACE_FP_MEMO.get(memo_key)
        if entry is not None and entry[0] is trace:
            _TRACE_FP_MEMO.move_to_end(memo_key)
            return entry[1]
    digest = fingerprint_trace(trace)
    with _TRACE_FP_MEMO_LOCK:
        _TRACE_FP_MEMO[memo_key] = (trace, digest)
        _TRACE_FP_MEMO.move_to_end(memo_key)
        while len(_TRACE_FP_MEMO) > _TRACE_FP_MEMO_MAX:
            _TRACE_FP_MEMO.popitem(last=False)
    return digest


def artifact_key_for(key: CacheKey) -> str:
    """Content-address of one cache key in the persistent artifact store."""
    return ArtifactStore.key_for(*key)


@dataclass
class CacheStats:
    """Hit/miss counters of one report cache.

    ``hits`` are served from process memory, ``disk_hits`` from the
    persistent artifact tier (then promoted to memory); ``misses`` required a
    simulation.
    """

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return (self.hits + self.disk_hits) / self.requests if self.requests else 0.0


class ReportCache:
    """Two-tier LRU cache of simulation reports keyed by input fingerprints.

    Parameters
    ----------
    max_entries:
        Capacity of the in-memory tier.
    store:
        The persistent tier: an :class:`ArtifactStore`, None (memory only,
        the default for explicitly constructed caches), or the string
        ``"auto"`` to resolve the store named by ``REPRO_ARTIFACT_DIR`` on
        each access (used by the process-wide default cache, so setting the
        environment variable enables persistence without code changes).
    """

    def __init__(self, max_entries: int = 128, store: "ArtifactStore | None | str" = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if isinstance(store, str) and store != "auto":
            raise ValueError(f"store must be an ArtifactStore, None or 'auto', got {store!r}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._store_spec = store
        self._entries: "OrderedDict[CacheKey, SimulationReport | ColumnarReportBatch]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def store(self) -> ArtifactStore | None:
        """The active persistent tier, if any."""
        if self._store_spec == "auto":
            return default_artifact_store()
        return self._store_spec

    def clear(self) -> None:
        """Drop the in-memory tier and reset counters (the disk tier survives;
        wipe it explicitly via ``cache.store.wipe()`` / ``repro cache wipe``)."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    @staticmethod
    def key(
        config: AcceleratorConfig,
        trace: WorkloadTrace,
        energy_table: EnergyTable | None = None,
        backend: str | None = None,
    ) -> CacheKey:
        from ..accelerator.backends import resolve_backend_name

        return (
            fingerprint_config(config),
            fingerprint_energy_table(energy_table or DEFAULT_ENERGY_TABLE),
            memoized_fingerprint_trace(trace),
            resolve_backend_name(backend),
        )

    # -- tier plumbing ---------------------------------------------------------

    @staticmethod
    def _acceptable(obj: object) -> bool:
        """Is a decoded artifact a valid cache entry?  Reports always; columnar
        batches only in single-trace form (one cache key is one trace)."""
        if isinstance(obj, SimulationReport):
            return True
        return isinstance(obj, ColumnarReportBatch) and obj.num_traces == 1

    def lookup_key(self, key: CacheKey, *, materialize: bool = True):
        """Two-tier lookup by precomputed key; None (and a counted miss) if absent.

        A disk hit is promoted into the in-memory tier so subsequent lookups
        in this process stay off the filesystem.  Entries are stored in
        whatever form they were computed — eager ``SimulationReport`` or
        single-trace ``ColumnarReportBatch``.  With ``materialize=True`` (the
        default) a columnar hit is returned as its materialized report (the
        batch memoizes it, so the object tax is paid once per key no matter
        how many lookups follow); ``materialize=False`` returns the raw entry
        for callers that keep results columnar, e.g. sweep aggregation and
        the worker wire.
        """
        hit = None
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                _MEMORY_HITS.inc()
                hit = cached
        if hit is None:
            store = self.store
            if store is not None:
                report = store.get(REPORT_ARTIFACT_KIND, artifact_key_for(key))
                if self._acceptable(report):
                    with self._lock:
                        self.stats.disk_hits += 1
                        _DISK_HITS.inc()
                        hit = self._insert_memory(key, report)
        if hit is not None:
            return ensure_report(hit) if materialize else hit
        with self._lock:
            self.stats.misses += 1
            _MISSES.inc()
        return None

    def insert_key(self, key: CacheKey, report):
        """Insert a computed result into both tiers; first writer wins in memory.

        ``report`` may be an eager ``SimulationReport`` or a single-trace
        ``ColumnarReportBatch``; the stored (and returned) entry keeps that
        form.
        """
        if not self._acceptable(report):
            raise TypeError(
                "cache entries must be SimulationReport or single-trace "
                f"ColumnarReportBatch, got {type(report).__name__}"
            )
        store = self.store
        if store is not None:
            artifact_key = artifact_key_for(key)
            if not store.contains(REPORT_ARTIFACT_KIND, artifact_key):
                store.put(REPORT_ARTIFACT_KIND, artifact_key, report)
        with self._lock:
            return self._insert_memory(key, report)

    def _insert_memory(self, key: CacheKey, report):
        """Insert under the held lock, evicting LRU entries beyond capacity."""
        self._entries.setdefault(key, report)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return self._entries[key]

    def summary(self) -> dict:
        """JSON-friendly two-tier snapshot (``service_stats()["cache"]``)."""
        with self._lock:
            stats = self.stats
            memory = {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": stats.hits,
                "disk_hits": stats.disk_hits,
                "misses": stats.misses,
                "requests": stats.requests,
                "hit_rate": stats.hit_rate,
            }
        store = self.store
        if store is None:
            return {"memory": memory, "artifacts": None}
        # Counter snapshot only — store.summary() walks the whole directory
        # tree, too heavy for a stats endpoint polled by `repro top`.
        artifact_stats = store.stats
        return {
            "memory": memory,
            "artifacts": {
                "root": str(store.root),
                "hits": artifact_stats.hits,
                "misses": artifact_stats.misses,
                "writes": artifact_stats.writes,
                "corrupt_discarded": artifact_stats.corrupt_discarded,
                "evicted": artifact_stats.evicted,
                "hit_rate": artifact_stats.hit_rate,
            },
        }

    # -- public API ------------------------------------------------------------

    def lookup(
        self,
        config: AcceleratorConfig,
        trace: WorkloadTrace,
        energy_table: EnergyTable | None = None,
        backend: str | None = None,
    ) -> SimulationReport | None:
        """Cached report for these inputs, or None (used by the batch scheduler)."""
        return self.lookup_key(self.key(config, trace, energy_table, backend))

    def insert(
        self,
        config: AcceleratorConfig,
        trace: WorkloadTrace,
        report: SimulationReport,
        energy_table: EnergyTable | None = None,
        backend: str | None = None,
    ) -> SimulationReport:
        """Insert an externally computed report (used by the batch scheduler)."""
        return self.insert_key(self.key(config, trace, energy_table, backend), report)

    def get_or_run(
        self,
        config: AcceleratorConfig,
        trace: WorkloadTrace,
        energy_table: EnergyTable | None = None,
        backend: str | None = None,
    ) -> SimulationReport:
        """Return the cached report for these inputs, simulating on a miss.

        Thread-safe: concurrent sweep workers may look up and insert reports
        simultaneously.  The simulation itself runs outside the lock, so two
        threads missing on the same key race benignly (one result wins).
        """
        key = self.key(config, trace, energy_table, backend)
        cached = self.lookup_key(key)
        if cached is not None:
            return cached
        report = AcceleratorSimulator(config, energy_table, backend=backend).run_trace(trace)
        return self.insert_key(key, report)


#: Process-wide cache used by the pipeline and sweep helpers.  Its persistent
#: tier follows the ``REPRO_ARTIFACT_DIR`` environment variable.
DEFAULT_REPORT_CACHE = ReportCache(store="auto")


def simulate_cached(
    config: AcceleratorConfig,
    trace: WorkloadTrace,
    energy_table: EnergyTable | None = None,
    backend: str | None = None,
    cache: ReportCache | None = None,
) -> SimulationReport:
    """Run a trace through the (default) report cache."""
    # Explicit None check: an empty ReportCache is falsy (it has __len__).
    cache = DEFAULT_REPORT_CACHE if cache is None else cache
    return cache.get_or_run(config, trace, energy_table, backend)
